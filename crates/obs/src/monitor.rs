//! Continuous monitoring: time-series metric history and a health/alert
//! rules engine over the [`Registry`].
//!
//! A [`Monitor`] owns a background **sampler thread** that snapshots the
//! registry every [`MonitorConfig::interval`] into bounded per-series
//! [`Ring`] buffers. Each [`SamplePoint`] carries the raw value, a
//! derived per-second rate (for counters and histogram observation
//! counts), and the p50/p99 latency estimate for histograms — enough to
//! answer "what has this metric done lately" without an external
//! time-series database.
//!
//! On top of the same samples sits a declarative **rules engine**: a
//! [`Rule`] compares a metric's value, rate, or rate-fraction against a
//! threshold and must breach for [`Rule::for_samples`] consecutive
//! samples before the alert transitions *pending → firing* — and must
//! then stay healthy for the same count before it clears (hysteresis,
//! so a flapping metric does not flap the health endpoint). A firing
//! [`Severity::Critical`] rule flips [`Monitor::health`] unhealthy,
//! which the HTTP `/healthz` endpoint maps to 503 for load balancers
//! and replica failover.
//!
//! Cost model: when no monitor is constructed nothing changes anywhere
//! (metrics stay plain relaxed atomics). When sampling is on, the whole
//! cost is one registry snapshot + ring push per interval on a dedicated
//! thread — the hot paths are untouched, which is how `repro obs-bench`
//! self-validates the ≤2% overhead bound.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Counter;
use crate::process::ProcessGauges;
use crate::registry::{push_json_string, MetricValue, Registry, Snapshot};

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Interval between samples. [`Duration::ZERO`] disables the
    /// background thread; samples are then taken only on demand
    /// (`$metrics`, `\health`, `/healthz` each take one when stale).
    pub interval: Duration,
    /// Points retained per series; older points are overwritten.
    pub ring_capacity: usize,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            interval: Duration::from_secs(1),
            ring_capacity: 256,
        }
    }
}

impl MonitorConfig {
    /// A config with the background sampler disabled (on-demand only).
    pub fn disabled() -> MonitorConfig {
        MonitorConfig {
            interval: Duration::ZERO,
            ..MonitorConfig::default()
        }
    }
}

/// One sample of one metric series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Monotonic microseconds since the monitor was created.
    pub at_micros: u64,
    /// Raw reading: counter total, gauge level, or histogram count.
    pub value: f64,
    /// Per-second derivative over the last window (0 on the first
    /// sample). Gauges report the level change per second.
    pub rate: f64,
    /// Histogram p50 estimate (0 for counters/gauges).
    pub p50: f64,
    /// Histogram p99 estimate (0 for counters/gauges).
    pub p99: f64,
}

/// A bounded ring of [`SamplePoint`]s. Pushing past capacity overwrites
/// the oldest point; `total_pushed` keeps the true count so tests can
/// prove no sample was lost even after wraparound.
#[derive(Debug, Clone)]
pub struct Ring {
    cap: usize,
    buf: Vec<SamplePoint>,
    head: usize, // next write position
    len: usize,
    total_pushed: u64,
}

impl Ring {
    /// An empty ring holding at most `capacity` points (min 1).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.max(1);
        Ring {
            cap,
            buf: Vec::with_capacity(cap),
            head: 0,
            len: 0,
            total_pushed: 0,
        }
    }

    /// Appends a point, overwriting the oldest once full.
    pub fn push(&mut self, p: SamplePoint) {
        if self.buf.len() < self.cap {
            self.buf.push(p);
        } else {
            self.buf[self.head] = p;
        }
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
        self.total_pushed += 1;
    }

    /// Points in arrival order, oldest first.
    pub fn points(&self) -> Vec<SamplePoint> {
        let mut out = Vec::with_capacity(self.len);
        if self.buf.len() < self.cap {
            out.extend_from_slice(&self.buf);
        } else {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        }
        out
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<SamplePoint> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.head + self.buf.len() - 1) % self.buf.len();
        Some(self.buf[idx])
    }

    /// Points currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no point has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total points ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

/// What a [`Rule`] reads from its metric each sample.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleInput {
    /// The raw reading (counter total / gauge level / histogram count).
    Value,
    /// Per-second rate over the last sampling window.
    RatePerSec,
    /// `rate(metric) / (rate(metric) + rate(other))` — e.g. the pool
    /// miss fraction with `metric = misses, other = hits`. Evaluates to
    /// no-breach while the window saw no events at all.
    RateFraction {
        /// The companion metric forming the denominator.
        other: String,
    },
}

/// Comparison direction for a [`Rule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Breaches when the observed value is strictly above the threshold.
    Above,
    /// Breaches when the observed value is strictly below the threshold.
    Below,
}

/// How a firing rule affects [`Monitor::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported in `/statusz` and `$alerts` but keeps `/healthz` at 200.
    Warning,
    /// A firing critical rule turns `/healthz` into 503.
    Critical,
}

/// A declarative health rule over one registered metric.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Unique rule name (e.g. `repl_lag_bytes_high`).
    pub name: String,
    /// Metric family the rule reads (summed across label sets for
    /// counters).
    pub metric: String,
    /// What to read from the metric.
    pub input: RuleInput,
    /// Comparison direction.
    pub cmp: Cmp,
    /// Threshold compared against.
    pub threshold: f64,
    /// Consecutive breaching samples before *pending* becomes *firing*
    /// (and consecutive healthy samples before firing clears).
    pub for_samples: u32,
    /// Health impact while firing.
    pub severity: Severity,
}

impl Rule {
    /// A critical `metric > threshold for N samples` rule.
    pub fn above(name: &str, metric: &str, threshold: f64, for_samples: u32) -> Rule {
        Rule {
            name: name.to_string(),
            metric: metric.to_string(),
            input: RuleInput::Value,
            cmp: Cmp::Above,
            threshold,
            for_samples: for_samples.max(1),
            severity: Severity::Critical,
        }
    }

    /// Downgrades the rule to [`Severity::Warning`].
    pub fn warning(mut self) -> Rule {
        self.severity = Severity::Warning;
        self
    }

    /// Switches the rule to read the per-second rate.
    pub fn rate(mut self) -> Rule {
        self.input = RuleInput::RatePerSec;
        self
    }
}

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition currently holds.
    Ok,
    /// Breaching, but for fewer than `for_samples` consecutive samples.
    Pending,
    /// Breached long enough; clears only after `for_samples` healthy
    /// samples in a row.
    Firing,
}

impl AlertState {
    /// Lower-case name used in JSON and shell output.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One rule's state at health-report time.
#[derive(Debug, Clone)]
pub struct AlertSnap {
    /// Rule name.
    pub rule: String,
    /// Metric the rule reads.
    pub metric: String,
    /// Current lifecycle state.
    pub state: AlertState,
    /// Severity while firing.
    pub severity: Severity,
    /// Last observed input value (0 before the first sample).
    pub value: f64,
    /// Rule threshold.
    pub threshold: f64,
    /// Comparison direction.
    pub cmp: Cmp,
    /// Microseconds (monitor clock) when the current breach streak
    /// started; 0 while Ok.
    pub since_micros: u64,
}

/// The rules engine's verdict plus per-rule detail.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// False iff any critical rule is firing.
    pub healthy: bool,
    /// Rules currently firing (any severity).
    pub firing: usize,
    /// Every rule's state.
    pub alerts: Vec<AlertSnap>,
}

impl HealthReport {
    /// Serializes the report as the JSON document served by `/healthz`
    /// and returned over the wire for `\health`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"healthy\":{},\"firing\":{},\"alerts\":[",
            self.healthy, self.firing
        );
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            push_json_string(&mut out, &a.rule);
            out.push_str(",\"metric\":");
            push_json_string(&mut out, &a.metric);
            let _ = write!(
                out,
                ",\"state\":\"{}\",\"severity\":\"{}\",\"value\":{},\"threshold\":{},\
                 \"cmp\":\"{}\",\"since_micros\":{}}}",
                a.state.as_str(),
                match a.severity {
                    Severity::Warning => "warning",
                    Severity::Critical => "critical",
                },
                fmt_f64(a.value),
                fmt_f64(a.threshold),
                match a.cmp {
                    Cmp::Above => "above",
                    Cmp::Below => "below",
                },
                a.since_micros
            );
        }
        out.push_str("]}");
        out
    }
}

/// Formats an f64 as JSON (finite, no exponent surprises for the small
/// magnitudes metrics produce).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

struct RuleRuntime {
    rule: Rule,
    state: AlertState,
    streak: u32, // consecutive breaches (Ok/Pending) or clears (Firing)
    since_micros: u64,
    last_value: f64,
}

struct MonitorState {
    series: BTreeMap<String, Ring>,
    prev: Option<(u64, Snapshot)>,
    rules: Vec<RuleRuntime>,
    samples: u64,
}

struct Shared {
    registry: Registry,
    cfg: MonitorConfig,
    /// Live sampling interval in micros (0 = on-demand only). Kept
    /// apart from `cfg` so [`Monitor::enable_sampling`] can turn a
    /// passive monitor into a sampling one after open.
    interval_micros: AtomicU64,
    /// Bumped whenever `interval_micros` changes, so a sampler parked
    /// on the condvar can tell a reconfiguration wakeup from a spurious
    /// one and re-arm its wait with the new interval.
    interval_gen: AtomicU64,
    epoch: Instant,
    state: Mutex<MonitorState>,
    stop: Mutex<bool>,
    cv: Condvar,
    running: AtomicBool,
    samples_total: Arc<Counter>,
    process: ProcessGauges,
}

/// The monitoring subsystem: sampler thread + rings + rules engine.
///
/// Construct with [`Monitor::start`] (spawns the sampler) or with
/// [`MonitorConfig::disabled`] (on-demand sampling only — `$metrics`,
/// `\health`, and `/healthz` each trigger a sample when none exists).
/// Dropping the monitor (or calling [`Monitor::stop`]) joins the
/// sampler thread; shutdown is prompt, not interval-quantized.
pub struct Monitor {
    shared: Arc<Shared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("interval", &self.shared.cfg.interval)
            .field("running", &self.is_running())
            .finish()
    }
}

impl Monitor {
    /// Creates a monitor over `registry` and, unless
    /// `config.interval` is zero, spawns the sampler thread.
    pub fn start(registry: Registry, config: MonitorConfig) -> Arc<Monitor> {
        let process = ProcessGauges::register(&registry);
        let samples_total = registry.counter(
            "mdm_monitor_samples_total",
            "registry samples taken by the monitor",
        );
        let interval_micros = config.interval.as_micros() as u64;
        let shared = Arc::new(Shared {
            registry,
            cfg: config,
            interval_micros: AtomicU64::new(interval_micros),
            interval_gen: AtomicU64::new(0),
            epoch: Instant::now(),
            state: Mutex::new(MonitorState {
                series: BTreeMap::new(),
                prev: None,
                rules: Vec::new(),
                samples: 0,
            }),
            stop: Mutex::new(false),
            cv: Condvar::new(),
            running: AtomicBool::new(false),
            samples_total,
            process,
        });
        let monitor = Arc::new(Monitor {
            shared: Arc::clone(&shared),
            thread: Mutex::new(None),
        });
        if !shared.cfg.interval.is_zero() {
            monitor.spawn_sampler();
        }
        monitor
    }

    fn spawn_sampler(&self) {
        let mut thread = self.thread.lock().unwrap();
        if thread.is_some() {
            return;
        }
        *self.shared.stop.lock().unwrap() = false;
        self.shared.running.store(true, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        *thread = Some(
            std::thread::Builder::new()
                .name("mdm-monitor".to_string())
                .spawn(move || sampler_loop(shared))
                .expect("spawn monitor sampler"),
        );
    }

    /// Turns a passive (on-demand) monitor into a sampling one: sets the
    /// interval and starts the background thread if it is not already
    /// running. Servers call this at start so embedded opens stay free
    /// of background threads. A zero `interval` is ignored.
    pub fn enable_sampling(&self, interval: Duration) {
        if interval.is_zero() {
            return;
        }
        self.shared
            .interval_micros
            .store(interval.as_micros() as u64, Ordering::SeqCst);
        self.shared.interval_gen.fetch_add(1, Ordering::SeqCst);
        self.spawn_sampler();
        // Wake a sampler already parked on the old interval; the bumped
        // generation makes it re-arm with the new one immediately. The
        // notify happens under the wait's mutex so it cannot land in the
        // window between the sampler's predicate check and its sleep.
        let _guard = self.shared.stop.lock().unwrap();
        self.shared.cv.notify_all();
    }

    /// True while the background sampler thread is alive.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// The live sampling interval (zero = on-demand only).
    pub fn interval(&self) -> Duration {
        Duration::from_micros(self.shared.interval_micros.load(Ordering::SeqCst))
    }

    /// Stops and joins the sampler thread. Idempotent; also run on drop.
    pub fn stop(&self) {
        {
            let mut stop = self.shared.stop.lock().unwrap();
            *stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(t) = self.thread.lock().unwrap().take() {
            let _ = t.join();
        }
        self.shared.running.store(false, Ordering::SeqCst);
    }

    /// Takes one sample right now: refreshes process gauges, snapshots
    /// the registry, appends to every series ring, and advances the
    /// rules engine. Public so tests and on-demand readers can drive
    /// the monitor deterministically without a thread.
    pub fn sample_now(&self) {
        sample(&self.shared);
    }

    /// Samples on demand when no sample exists yet, or when no
    /// background thread is running and the last sample is over a
    /// second stale — keeps `$metrics`/`\health` meaningful in embedded
    /// sessions that never started the sampler, without perturbing
    /// rule streaks on back-to-back reads.
    fn ensure_sampled(&self) {
        let need = {
            let st = self.shared.state.lock().unwrap();
            match st.prev {
                None => true,
                Some((at, _)) => {
                    !self.is_running()
                        && self.shared.epoch.elapsed().as_micros() as u64 - at > 1_000_000
                }
            }
        };
        if need {
            self.sample_now();
        }
    }

    /// Registers a rule. Rules added after start are evaluated from the
    /// next sample on.
    pub fn add_rule(&self, rule: Rule) {
        let mut st = self.shared.state.lock().unwrap();
        if st.rules.iter().any(|r| r.rule.name == rule.name) {
            return;
        }
        st.rules.push(RuleRuntime {
            rule,
            state: AlertState::Ok,
            streak: 0,
            since_micros: 0,
            last_value: 0.0,
        });
    }

    /// Seeds the default engine-level rules every node should carry.
    pub fn seed_default_rules(&self) {
        // A poisoned WAL means commits are refused until reopen: the
        // node is not serving its purpose — critical immediately.
        self.add_rule(Rule::above("wal_poisoned", "mdm_wal_poisoned", 0.5, 1));
        // Any fsync failure rate is a disk-level emergency.
        self.add_rule(
            Rule::above("wal_fsync_failures", "mdm_wal_fsync_failures_total", 0.0, 1).rate(),
        );
        // Pool miss fraction above 90% over a window: the working set
        // fell out of cache. Advisory, not failover-worthy.
        self.add_rule(Rule {
            name: "pool_miss_fraction_high".to_string(),
            metric: "mdm_pool_misses_total".to_string(),
            input: RuleInput::RateFraction {
                other: "mdm_pool_hits_total".to_string(),
            },
            cmp: Cmp::Above,
            threshold: 0.9,
            for_samples: 3,
            severity: Severity::Warning,
        });
        // Wait-die aborting more than 10/s sustained: lock storm.
        self.add_rule(
            Rule::above(
                "wait_die_abort_rate",
                "mdm_lock_wait_die_aborts_total",
                10.0,
                3,
            )
            .rate()
            .warning(),
        );
    }

    /// Seeds the replica-side lag rules (`lag_bytes` capped at
    /// `max_lag_bytes`, `lag_seconds` at `max_lag_seconds`), each
    /// needing 3 consecutive breaching samples — the ISSUE's
    /// `mdm_repl_lag_bytes > N for 3 samples` example.
    pub fn seed_replica_rules(&self, max_lag_bytes: f64, max_lag_seconds: f64) {
        self.add_rule(Rule::above(
            "repl_lag_bytes_high",
            "mdm_repl_lag_bytes",
            max_lag_bytes,
            3,
        ));
        self.add_rule(Rule::above(
            "repl_lag_seconds_high",
            "mdm_repl_lag_seconds",
            max_lag_seconds,
            3,
        ));
    }

    /// The rules engine's current verdict (sampling first if nothing
    /// has been sampled yet).
    pub fn health(&self) -> HealthReport {
        self.ensure_sampled();
        let st = self.shared.state.lock().unwrap();
        let alerts: Vec<AlertSnap> = st
            .rules
            .iter()
            .map(|r| AlertSnap {
                rule: r.rule.name.clone(),
                metric: r.rule.metric.clone(),
                state: r.state,
                severity: r.rule.severity,
                value: r.last_value,
                threshold: r.rule.threshold,
                cmp: r.rule.cmp,
                since_micros: r.since_micros,
            })
            .collect();
        let firing = alerts
            .iter()
            .filter(|a| a.state == AlertState::Firing)
            .count();
        let healthy = !alerts
            .iter()
            .any(|a| a.state == AlertState::Firing && a.severity == Severity::Critical);
        HealthReport {
            healthy,
            firing,
            alerts,
        }
    }

    /// Latest point per series, keyed by `name{labels}` — the `$metrics`
    /// virtual entity and `\watch` read this.
    pub fn latest(&self) -> Vec<(String, SamplePoint)> {
        self.ensure_sampled();
        let st = self.shared.state.lock().unwrap();
        st.series
            .iter()
            .filter_map(|(k, ring)| ring.latest().map(|p| (k.clone(), p)))
            .collect()
    }

    /// Full history for every series whose key starts with `prefix`.
    pub fn series(&self, prefix: &str) -> Vec<(String, Vec<SamplePoint>)> {
        self.ensure_sampled();
        let st = self.shared.state.lock().unwrap();
        st.series
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, ring)| (k.clone(), ring.points()))
            .collect()
    }

    /// Samples taken so far (background + on-demand).
    pub fn samples_taken(&self) -> u64 {
        self.shared.state.lock().unwrap().samples
    }

    /// Microseconds since the monitor was created.
    pub fn uptime_micros(&self) -> u64 {
        self.shared.epoch.elapsed().as_micros() as u64
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn sampler_loop(shared: Arc<Shared>) {
    loop {
        let interval =
            Duration::from_micros(shared.interval_micros.load(Ordering::SeqCst).max(1_000));
        let gen = shared.interval_gen.load(Ordering::SeqCst);
        let timed_out = {
            let stop = shared.stop.lock().unwrap();
            let (stop, wait) = shared
                .cv
                .wait_timeout_while(stop, interval, |s| {
                    !*s && shared.interval_gen.load(Ordering::SeqCst) == gen
                })
                .unwrap();
            if *stop {
                break;
            }
            wait.timed_out()
        };
        // A reconfiguration wakeup (generation bumped) skips the sample
        // and re-arms with the freshly stored interval.
        if timed_out {
            sample(&shared);
        }
    }
    shared.running.store(false, Ordering::SeqCst);
}

/// Renders a snapshot entry's series key: `name` or `name{k=v,…}`.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}={v}");
    }
    out.push('}');
    out
}

fn sample(shared: &Shared) {
    shared.process.refresh();
    let snap = shared.registry.snapshot();
    let at = shared.epoch.elapsed().as_micros() as u64;
    let mut st = shared.state.lock().unwrap();
    let window = st
        .prev
        .as_ref()
        .map(|(prev_at, _)| (at.saturating_sub(*prev_at)) as f64 / 1e6);
    for e in &snap.entries {
        let key = series_key(&e.name, &e.labels);
        let prev_value = st.prev.as_ref().and_then(|(_, p)| {
            p.entries
                .iter()
                .find(|b| b.name == e.name && b.labels == e.labels)
                .map(metric_scalar)
        });
        let value = metric_scalar(e);
        let rate = match (prev_value, window) {
            (Some(prev), Some(dt)) if dt > 0.0 => (value - prev) / dt,
            _ => 0.0,
        };
        let (p50, p99) = match &e.value {
            MetricValue::Histogram(h) => (
                h.quantile(0.5).unwrap_or(0.0),
                h.quantile(0.99).unwrap_or(0.0),
            ),
            _ => (0.0, 0.0),
        };
        let cap = shared.cfg.ring_capacity;
        st.series
            .entry(key)
            .or_insert_with(|| Ring::new(cap))
            .push(SamplePoint {
                at_micros: at,
                value,
                rate,
                p50,
                p99,
            });
    }
    evaluate_rules(&mut st, &snap, at, window);
    st.prev = Some((at, snap));
    st.samples += 1;
    shared.samples_total.inc();
}

/// The scalar a series tracks: counter total, gauge level, or histogram
/// observation count.
fn metric_scalar(e: &crate::registry::MetricSnap) -> f64 {
    match &e.value {
        MetricValue::Counter(v) => *v as f64,
        MetricValue::Gauge(v) => *v as f64,
        MetricValue::Histogram(h) => h.count as f64,
    }
}

/// Sum of a metric family across label sets, as a scalar.
fn family_scalar(snap: &Snapshot, name: &str) -> Option<f64> {
    let mut found = false;
    let mut total = 0.0;
    for e in snap.entries.iter().filter(|e| e.name == name) {
        found = true;
        total += metric_scalar(e);
    }
    found.then_some(total)
}

fn evaluate_rules(st: &mut MonitorState, snap: &Snapshot, at: u64, window: Option<f64>) {
    // Per-family rate over the last window, shared by RatePerSec and
    // RateFraction inputs.
    let rate_of = |name: &str| -> Option<f64> {
        let now = family_scalar(snap, name)?;
        let (_, prev_snap) = st.prev.as_ref()?;
        let prev = family_scalar(prev_snap, name)?;
        let dt = window?;
        (dt > 0.0).then(|| (now - prev) / dt)
    };
    let mut observations: Vec<Option<f64>> = Vec::with_capacity(st.rules.len());
    for r in &st.rules {
        let observed = match &r.rule.input {
            RuleInput::Value => family_scalar(snap, &r.rule.metric),
            RuleInput::RatePerSec => rate_of(&r.rule.metric),
            RuleInput::RateFraction { other } => {
                match (rate_of(&r.rule.metric), rate_of(other)) {
                    (Some(a), Some(b)) if a + b > 0.0 => Some(a / (a + b)),
                    // No events in the window: no signal, no breach.
                    _ => None,
                }
            }
        };
        observations.push(observed);
    }
    for (r, observed) in st.rules.iter_mut().zip(observations) {
        let Some(value) = observed else {
            // Metric not registered (yet) or no rate signal: leave the
            // rule untouched rather than flapping on absence.
            continue;
        };
        r.last_value = value;
        let breach = match r.rule.cmp {
            Cmp::Above => value > r.rule.threshold,
            Cmp::Below => value < r.rule.threshold,
        };
        match (r.state, breach) {
            (AlertState::Ok, true) => {
                r.since_micros = at;
                if r.rule.for_samples <= 1 {
                    r.state = AlertState::Firing;
                    r.streak = 0; // streak now counts clears
                } else {
                    r.state = AlertState::Pending;
                    r.streak = 1;
                }
            }
            (AlertState::Pending, true) => {
                r.streak += 1;
                if r.streak >= r.rule.for_samples {
                    r.state = AlertState::Firing;
                    r.streak = 0; // streak now counts clears
                }
            }
            (AlertState::Pending, false) => {
                r.state = AlertState::Ok;
                r.streak = 0;
                r.since_micros = 0;
            }
            (AlertState::Firing, true) => {
                r.streak = 0; // reset the clear streak
            }
            (AlertState::Firing, false) => {
                r.streak += 1;
                if r.streak >= r.rule.for_samples {
                    r.state = AlertState::Ok;
                    r.streak = 0;
                    r.since_micros = 0;
                }
            }
            (AlertState::Ok, false) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_monitor(registry: &Registry) -> Arc<Monitor> {
        Monitor::start(registry.clone(), MonitorConfig::disabled())
    }

    #[test]
    fn ring_wraparound_is_exact() {
        let mut ring = Ring::new(4);
        for i in 0..11u64 {
            ring.push(SamplePoint {
                at_micros: i,
                value: i as f64,
                rate: 0.0,
                p50: 0.0,
                p99: 0.0,
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_pushed(), 11);
        let pts: Vec<u64> = ring.points().iter().map(|p| p.at_micros).collect();
        assert_eq!(
            pts,
            vec![7, 8, 9, 10],
            "exactly the last capacity points, in order"
        );
        assert_eq!(ring.latest().unwrap().at_micros, 10);
    }

    #[test]
    fn ring_partial_fill_keeps_order() {
        let mut ring = Ring::new(8);
        for i in 0..3u64 {
            ring.push(SamplePoint {
                at_micros: i,
                value: 0.0,
                rate: 0.0,
                p50: 0.0,
                p99: 0.0,
            });
        }
        let pts: Vec<u64> = ring.points().iter().map(|p| p.at_micros).collect();
        assert_eq!(pts, vec![0, 1, 2]);
    }

    #[test]
    fn sampler_records_values_rates_and_quantiles() {
        let r = Registry::new();
        let c = r.counter("mdm_x_total", "x");
        let g = r.gauge("mdm_g", "g");
        let h = r.histogram("mdm_h_micros", "h", &[10, 100, 1000]);
        let m = manual_monitor(&r);
        c.add(5);
        g.set(3);
        for _ in 0..10 {
            h.observe(60);
        }
        m.sample_now();
        std::thread::sleep(Duration::from_millis(5));
        c.add(10);
        m.sample_now();
        let latest: BTreeMap<String, SamplePoint> = m.latest().into_iter().collect();
        let x = latest["mdm_x_total"];
        assert_eq!(x.value, 15.0);
        assert!(
            x.rate > 0.0,
            "counter rate derived across samples: {}",
            x.rate
        );
        assert_eq!(latest["mdm_g"].value, 3.0);
        let hs = latest["mdm_h_micros"];
        assert_eq!(hs.value, 10.0);
        assert!(
            hs.p50 > 10.0 && hs.p50 <= 100.0,
            "p50 in (10,100]: {}",
            hs.p50
        );
        assert!(m.samples_taken() >= 2);
    }

    #[test]
    fn labeled_series_keys_are_distinct() {
        let r = Registry::new();
        r.counter_labeled("mdm_x_total", "x", &[("shard", "0")])
            .add(1);
        r.counter_labeled("mdm_x_total", "x", &[("shard", "1")])
            .add(2);
        let m = manual_monitor(&r);
        m.sample_now();
        let keys: Vec<String> = m.latest().into_iter().map(|(k, _)| k).collect();
        assert!(
            keys.contains(&"mdm_x_total{shard=0}".to_string()),
            "{keys:?}"
        );
        assert!(
            keys.contains(&"mdm_x_total{shard=1}".to_string()),
            "{keys:?}"
        );
    }

    #[test]
    fn background_sampler_shuts_down_cleanly() {
        let r = Registry::new();
        let m = Monitor::start(
            r.clone(),
            MonitorConfig {
                interval: Duration::from_millis(5),
                ring_capacity: 16,
            },
        );
        assert!(m.is_running());
        let deadline = Instant::now() + Duration::from_secs(5);
        while m.samples_taken() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(m.samples_taken() >= 3, "sampler ticked");
        let before_stop = Instant::now();
        m.stop();
        assert!(
            before_stop.elapsed() < Duration::from_secs(1),
            "stop joins promptly, not interval-quantized"
        );
        assert!(!m.is_running());
        let n = m.samples_taken();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(m.samples_taken(), n, "no samples after stop");
        m.stop(); // idempotent
    }

    #[test]
    fn no_sample_loss_under_concurrent_registration() {
        let r = Registry::new();
        let m = Monitor::start(
            r.clone(),
            MonitorConfig {
                interval: Duration::from_millis(1),
                ring_capacity: 64,
            },
        );
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let name = format!("mdm_dyn_{t}_{i}_total");
                    reg.counter(&name, "dynamically registered").add(1);
                    std::thread::sleep(Duration::from_micros(100));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // One final deterministic sample sees every registered metric.
        m.stop();
        m.sample_now();
        let latest = m.latest();
        let dyn_series = latest
            .iter()
            .filter(|(k, _)| k.starts_with("mdm_dyn_"))
            .count();
        assert_eq!(
            dyn_series, 200,
            "all concurrently-registered series sampled"
        );
        for (k, p) in latest.iter().filter(|(k, _)| k.starts_with("mdm_dyn_")) {
            assert_eq!(p.value, 1.0, "{k} lost its increment");
        }
    }

    #[test]
    fn enable_sampling_upgrades_a_passive_monitor() {
        let r = Registry::new();
        let m = manual_monitor(&r);
        assert!(!m.is_running(), "disabled config spawns no thread");
        m.enable_sampling(Duration::ZERO);
        assert!(!m.is_running(), "zero interval is ignored");
        m.enable_sampling(Duration::from_millis(2));
        assert!(m.is_running());
        let deadline = Instant::now() + Duration::from_secs(5);
        while m.samples_taken() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(m.samples_taken() >= 2);
        m.stop();
        assert!(!m.is_running());
    }

    #[test]
    fn enable_sampling_shortens_a_running_interval_immediately() {
        let r = Registry::new();
        let m = Monitor::start(
            r.clone(),
            MonitorConfig {
                interval: Duration::from_secs(3600),
                ring_capacity: 16,
            },
        );
        assert!(m.is_running());
        // Let the sampler park on the hour-long wait, then shorten it:
        // the wakeup must re-arm the wait, not be treated as spurious.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(m.samples_taken(), 0);
        m.enable_sampling(Duration::from_millis(2));
        let deadline = Instant::now() + Duration::from_secs(5);
        while m.samples_taken() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            m.samples_taken() >= 2,
            "shorter interval took effect without waiting out the old one"
        );
        m.stop();
    }

    #[test]
    fn rule_pending_firing_hysteresis() {
        let r = Registry::new();
        let g = r.gauge("mdm_repl_lag_bytes", "lag");
        let m = manual_monitor(&r);
        m.add_rule(Rule::above("lag_high", "mdm_repl_lag_bytes", 100.0, 3));
        let state = |m: &Monitor| m.health().alerts[0].state;
        g.set(50);
        m.sample_now();
        assert_eq!(state(&m), AlertState::Ok);
        g.set(500);
        m.sample_now();
        assert_eq!(state(&m), AlertState::Pending, "one breach is pending");
        m.sample_now();
        assert_eq!(state(&m), AlertState::Pending);
        m.sample_now();
        assert_eq!(state(&m), AlertState::Firing, "three breaches fire");
        assert!(!m.health().healthy, "critical firing flips health");
        // One healthy sample does not clear a firing alert…
        g.set(10);
        m.sample_now();
        assert_eq!(state(&m), AlertState::Firing, "hysteresis holds");
        m.sample_now();
        m.sample_now();
        assert_eq!(state(&m), AlertState::Ok, "three healthy samples clear");
        assert!(m.health().healthy);
    }

    #[test]
    fn pending_resets_on_single_recovery() {
        let r = Registry::new();
        let g = r.gauge("mdm_x", "x");
        let m = manual_monitor(&r);
        m.add_rule(Rule::above("x_high", "mdm_x", 10.0, 3));
        g.set(20);
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Pending);
        g.set(5);
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Ok);
        // Streak restarts from scratch on the next breach.
        g.set(20);
        m.sample_now();
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Pending);
    }

    #[test]
    fn warning_rules_do_not_flip_health() {
        let r = Registry::new();
        let g = r.gauge("mdm_w", "w");
        let m = manual_monitor(&r);
        m.add_rule(Rule::above("w_high", "mdm_w", 1.0, 1).warning());
        g.set(5);
        m.sample_now();
        let h = m.health();
        assert_eq!(h.alerts[0].state, AlertState::Firing);
        assert_eq!(h.firing, 1);
        assert!(h.healthy, "warnings report but stay 200");
    }

    #[test]
    fn rate_rule_fires_on_derivative() {
        let r = Registry::new();
        let c = r.counter("mdm_errs_total", "errors");
        let m = manual_monitor(&r);
        m.add_rule(Rule::above("err_rate", "mdm_errs_total", 0.0, 1).rate());
        m.sample_now();
        assert_eq!(
            m.health().alerts[0].state,
            AlertState::Ok,
            "no rate on first sample"
        );
        std::thread::sleep(Duration::from_millis(5));
        c.add(100);
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Firing);
        // Rate falls back to zero when the counter stops moving.
        std::thread::sleep(Duration::from_millis(5));
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Ok);
    }

    #[test]
    fn rate_fraction_rule_needs_signal() {
        let r = Registry::new();
        let miss = r.counter("mdm_pool_misses_total", "m");
        let hit = r.counter("mdm_pool_hits_total", "h");
        let m = manual_monitor(&r);
        m.add_rule(Rule {
            name: "miss_frac".to_string(),
            metric: "mdm_pool_misses_total".to_string(),
            input: RuleInput::RateFraction {
                other: "mdm_pool_hits_total".to_string(),
            },
            cmp: Cmp::Above,
            threshold: 0.9,
            for_samples: 1,
            severity: Severity::Warning,
        });
        m.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        m.sample_now();
        assert_eq!(
            m.health().alerts[0].state,
            AlertState::Ok,
            "no traffic, no breach"
        );
        std::thread::sleep(Duration::from_millis(2));
        miss.add(99);
        hit.add(1);
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Firing, "99% misses");
        std::thread::sleep(Duration::from_millis(2));
        hit.add(1000);
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Ok);
    }

    #[test]
    fn absent_metric_leaves_rule_untouched() {
        let r = Registry::new();
        let m = manual_monitor(&r);
        m.add_rule(Rule::above("ghost", "mdm_not_registered", 1.0, 1));
        m.sample_now();
        assert_eq!(m.health().alerts[0].state, AlertState::Ok);
    }

    #[test]
    fn default_rules_seed_once() {
        let r = Registry::new();
        let m = manual_monitor(&r);
        m.seed_default_rules();
        m.seed_default_rules();
        m.seed_replica_rules(1e6, 30.0);
        let h = m.health();
        assert_eq!(
            h.alerts.len(),
            6,
            "4 engine rules + 2 replica rules, deduped: {:?}",
            h.alerts.iter().map(|a| a.rule.clone()).collect::<Vec<_>>()
        );
        assert!(h.healthy);
    }

    #[test]
    fn health_report_serializes_as_json() {
        let r = Registry::new();
        let g = r.gauge("mdm_x", "x");
        g.set(3);
        let m = manual_monitor(&r);
        m.add_rule(Rule::above("x_high", "mdm_x", 1.0, 1));
        m.sample_now();
        let json = m.health().to_json();
        let doc = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("healthy").unwrap().as_bool(), Some(false));
        let alerts = doc.get("alerts").unwrap().as_array().unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("state").unwrap().as_str(), Some("firing"));
        assert_eq!(alerts[0].get("value").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn series_history_is_queryable_by_prefix() {
        let r = Registry::new();
        r.counter("mdm_a_total", "a").add(1);
        r.counter("mdm_b_total", "b").add(1);
        let m = manual_monitor(&r);
        m.sample_now();
        m.sample_now();
        let hist = m.series("mdm_a_");
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].0, "mdm_a_total");
        assert_eq!(hist[0].1.len(), 2);
        assert!(m.series("mdm_").len() >= 2);
    }
}
