//! # mdm-obs
//!
//! Zero-dependency observability for the music data manager. The build
//! environment is offline, so this crate hand-rolls the pieces that
//! `metrics`/`tracing` would otherwise provide:
//!
//! * [`metrics`] — [`Counter`], [`Gauge`], and fixed-bucket [`Histogram`]
//!   on relaxed atomics, plus the [`SpanTimer`] scope guard that records
//!   elapsed wall time into a histogram on drop.
//! * [`registry`] — a [`Registry`] of named, labelled metric handles with
//!   consistent [`Snapshot`] export as JSON and Prometheus text format.
//! * [`events`] — [`EventLog`], a bounded ring buffer of timestamped
//!   diagnostic events (recoveries, checkpoints, DDL).
//! * [`json`] — a minimal JSON parser used by tests and by the bench
//!   smoke-mode validator; the exporters in [`registry`] emit JSON this
//!   parser round-trips.
//! * [`monitor`] — the continuous-monitoring subsystem: a [`Monitor`]
//!   whose background sampler records every metric into bounded
//!   time-series [`Ring`]s (value, rate, histogram quantiles) and a
//!   declarative health [`Rule`] engine with pending→firing hysteresis
//!   backing `/healthz`.
//! * [`process`] — [`ProcessGauges`], `mdm_process_*` gauges (RSS,
//!   open fds, threads) read from `/proc/self`; zeros off-Linux.
//! * [`stats`] — the [`StatementStore`], a bounded LRU of
//!   per-fingerprint statement statistics (pg_stat_statements for QUEL)
//!   with a binary image for checkpoint persistence.
//! * [`trace`] — per-request span trees: a [`Tracer`] with sampling, a
//!   bounded ring of completed traces, a slow-query log, and export as
//!   Chrome trace-event JSON or a plain-text tree.
//!
//! Everything is `Send + Sync` and cheap enough for hot paths: counters
//! are one relaxed `fetch_add`, histograms one short linear bucket scan
//! plus three relaxed adds. Nothing here allocates after registration.
//!
//! ```
//! use mdm_obs::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("mdm_pool_hits_total", "cache hits");
//! hits.inc();
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("mdm_pool_hits_total"), Some(1));
//! assert!(snap.to_prometheus().contains("mdm_pool_hits_total 1"));
//! ```

pub mod events;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod process;
pub mod registry;
pub mod stats;
pub mod trace;

pub use events::{Event, EventLog};
pub use metrics::{
    Counter, Gauge, Histogram, SpanTimer, LATENCY_MICROS_BOUNDS, SMALL_COUNT_BOUNDS,
};
pub use monitor::{
    AlertSnap, AlertState, Cmp, HealthReport, Monitor, MonitorConfig, Ring, Rule, RuleInput,
    SamplePoint, Severity,
};
pub use process::ProcessGauges;
pub use registry::{HistogramSnap, MetricSnap, MetricValue, Registry, Snapshot};
pub use stats::{PathMix, StatementStats, StatementStore, DEFAULT_STATEMENT_CAPACITY};
pub use trace::{chrome_trace_json, SpanRecord, Trace, TraceContext, Tracer, DEFAULT_SAMPLE_EVERY};
