//! Metric primitives: counters, gauges, fixed-bucket histograms, and the
//! scoped span timer.
//!
//! All primitives use relaxed atomics: the registry's snapshot is a
//! statistical read, not a synchronization point, so no ordering stronger
//! than `Relaxed` is needed and updates cost one uncontended atomic RMW.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default bucket bounds (inclusive upper edges, in microseconds) for
/// latency histograms: 10 µs .. 1 s, roughly logarithmic.
pub const LATENCY_MICROS_BOUNDS: &[u64] = &[
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    1_000_000,
];

/// Default bucket bounds for small-count histograms (e.g. group-commit
/// batch sizes): powers of two up to 256.
pub const SMALL_COUNT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero (unregistered; see
    /// [`Registry::counter`](crate::Registry::counter) for the registered
    /// path).
    pub fn new() -> Arc<Counter> {
        Arc::new(Counter(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Arc<Gauge> {
        Arc::new(Gauge(AtomicI64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Bucket bounds are inclusive upper edges in
/// ascending order; observations above the last bound land in an implicit
/// overflow (`+Inf`) bucket. `sum` and `count` track totals so exporters
/// can derive a mean.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // len = bounds.len() + 1 (overflow last)
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A fresh histogram over `bounds` (must be non-empty and ascending).
    pub fn new(bounds: &[u64]) -> Arc<Histogram> {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Arc::new(Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        })
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Starts a scope timer that records into this histogram when dropped.
    pub fn time(self: &Arc<Histogram>) -> SpanTimer {
        SpanTimer {
            histogram: Arc::clone(self),
            started: Instant::now(),
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (overflow bucket last). A concurrent reader may
    /// see a count mid-update; totals reconcile once writers quiesce.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// A scope guard that measures wall time from its creation and records
/// the elapsed microseconds into a [`Histogram`] on drop.
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    started: Instant,
}

impl SpanTimer {
    /// Stops the timer early, recording now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 101 + 5_000);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new(LATENCY_MICROS_BOUNDS);
        {
            let _t = h.time();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000, "slept ≥1 ms, recorded {} µs", h.sum());
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[10, 5]);
    }
}
