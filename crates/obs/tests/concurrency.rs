//! Multi-threaded exactness and export-format tests for `mdm-obs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use mdm_obs::{json, Registry, SMALL_COUNT_BOUNDS};

const THREADS: usize = 8;
const INCREMENTS: u64 = 10_000;

/// N threads × M increments must sum exactly — counters lose nothing
/// under contention even with relaxed ordering (fetch_add is atomic).
#[test]
fn counter_exact_under_contention() {
    let registry = Registry::new();
    let counter = registry.counter("mdm_test_total", "contended counter");
    thread::scope(|s| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * INCREMENTS);
    assert_eq!(
        registry.snapshot().counter("mdm_test_total"),
        Some(THREADS as u64 * INCREMENTS)
    );
}

/// Histogram bucket counts, total count, and sum are all exact once
/// writers quiesce: every observation lands in exactly one bucket.
#[test]
fn histogram_exact_under_contention() {
    let registry = Registry::new();
    let hist = registry.histogram("mdm_test_micros", "contended histogram", SMALL_COUNT_BOUNDS);
    thread::scope(|s| {
        for t in 0..THREADS {
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for i in 0..INCREMENTS {
                    // Deterministic spread across buckets, including overflow.
                    hist.observe((t as u64 + i) % 300);
                }
            });
        }
    });
    let total = THREADS as u64 * INCREMENTS;
    assert_eq!(hist.count(), total);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), total);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..INCREMENTS).map(|i| (t + i) % 300).sum::<u64>())
        .sum();
    assert_eq!(hist.sum(), expected_sum);
}

/// Snapshots taken while writers are running must always be sane:
/// monotone non-decreasing counters and histogram invariants that never
/// go backwards from the reader's point of view.
#[test]
fn snapshot_under_load_is_consistent() {
    let registry = Registry::new();
    let counter = registry.counter("mdm_load_total", "writer progress");
    let hist = registry.histogram("mdm_load_micros", "writer latencies", &[1, 10, 100]);
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut v = 0;
                while !stop.load(Ordering::Relaxed) {
                    counter.inc();
                    hist.observe(v % 200);
                    v += 1;
                }
            });
        }
        let mut last_counter = 0;
        for _ in 0..200 {
            let snap = registry.snapshot();
            let c = snap.counter("mdm_load_total").unwrap();
            assert!(
                c >= last_counter,
                "counter went backwards: {c} < {last_counter}"
            );
            last_counter = c;
            let h = snap.histogram("mdm_load_micros").unwrap();
            // Bucket updates may race count updates, but no bucket can
            // ever exceed the number of observations started so far,
            // which a later counter read bounds from above.
            let bucket_total: u64 = h.counts.iter().sum();
            let upper = registry
                .snapshot()
                .histogram("mdm_load_micros")
                .unwrap()
                .count;
            assert!(
                bucket_total <= upper + 4,
                "bucket total {bucket_total} exceeds observation upper bound {upper} + writers"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced: everything reconciles exactly.
    let snap = registry.snapshot();
    let c = snap.counter("mdm_load_total").unwrap();
    let h = snap.histogram("mdm_load_micros").unwrap();
    assert_eq!(h.count, c, "one observation per increment");
    assert_eq!(h.counts.iter().sum::<u64>(), h.count);
}

/// Golden test: the Prometheus text output parses line-by-line against
/// the exposition-format grammar we emit (# HELP / # TYPE / samples with
/// cumulative le buckets, _sum, _count).
#[test]
fn prometheus_text_parses_line_by_line() {
    let registry = Registry::new();
    registry
        .counter_labeled("mdm_pool_hits_total", "buffer pool hits", &[("shard", "0")])
        .add(5);
    registry
        .counter_labeled("mdm_pool_hits_total", "buffer pool hits", &[("shard", "1")])
        .add(7);
    registry.gauge("mdm_txn_active", "live transactions").set(2);
    let h = registry.histogram("mdm_fsync_micros", "fsync latency", &[100, 1_000]);
    h.observe(50);
    h.observe(500);
    h.observe(5_000);

    let text = registry.snapshot().to_prometheus();
    let mut help_seen = 0;
    let mut type_seen = 0;
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            assert!(rest.starts_with("mdm_"), "HELP names our metric: {line}");
            help_seen += 1;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(name.starts_with("mdm_"));
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            type_seen += 1;
        } else {
            // Sample line: name[{labels}] value
            let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().expect("sample value is numeric");
            let name = name_labels.split('{').next().unwrap();
            assert!(name.starts_with("mdm_"), "sample names our metric: {line}");
            if let Some(open) = name_labels.find('{') {
                let labels = &name_labels[open..];
                assert!(labels.ends_with('}'), "label set closes: {line}");
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("label is k=\"v\"");
                    assert!(!k.is_empty());
                    assert!(v.starts_with('"') && v.ends_with('"'), "quoted: {line}");
                }
            }
            samples.push((name_labels.to_string(), value.to_string()));
        }
    }
    assert_eq!(help_seen, 3, "one HELP per family");
    assert_eq!(type_seen, 3, "one TYPE per family");

    let sample = |key: &str| -> &str {
        &samples
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing sample {key}"))
            .1
    };
    assert_eq!(sample("mdm_pool_hits_total{shard=\"0\"}"), "5");
    assert_eq!(sample("mdm_pool_hits_total{shard=\"1\"}"), "7");
    assert_eq!(sample("mdm_txn_active"), "2");
    // Histogram buckets are cumulative and capped by _count.
    assert_eq!(sample("mdm_fsync_micros_bucket{le=\"100\"}"), "1");
    assert_eq!(sample("mdm_fsync_micros_bucket{le=\"1000\"}"), "2");
    assert_eq!(sample("mdm_fsync_micros_bucket{le=\"+Inf\"}"), "3");
    assert_eq!(sample("mdm_fsync_micros_sum"), "5550");
    assert_eq!(sample("mdm_fsync_micros_count"), "3");
}

/// The JSON export round-trips through the bundled parser and exposes
/// the cumulative bucket structure smoke mode validates in CI.
#[test]
fn json_export_round_trips() {
    let registry = Registry::new();
    registry.counter("mdm_a_total", "a").add(9);
    let h = registry.histogram("mdm_b_micros", "b", &[10, 100]);
    h.observe(5);
    h.observe(50);
    h.observe(500);

    let doc = json::parse(&registry.snapshot().to_json()).expect("export is valid JSON");
    let metrics = doc.get("metrics").unwrap().as_array().unwrap();
    assert_eq!(metrics.len(), 2);
    let hist = &metrics[1];
    assert_eq!(hist.get("type").unwrap().as_str(), Some("histogram"));
    let buckets = hist.get("buckets").unwrap().as_array().unwrap();
    // Cumulative: le=10 → 1, le=100 → 2, +Inf → 3.
    assert_eq!(buckets[0].get("count").unwrap().as_u64(), Some(1));
    assert_eq!(buckets[1].get("count").unwrap().as_u64(), Some(2));
    assert_eq!(buckets[2].get("le").unwrap().as_str(), Some("+Inf"));
    assert_eq!(buckets[2].get("count").unwrap().as_u64(), Some(3));
}

/// Byte-exact golden for a labelled histogram family: the Prometheus
/// convention requires *cumulative* `le` buckets ending in `+Inf`, then
/// `_sum` and `_count` series — exactly one HELP/TYPE header per family.
#[test]
fn prometheus_histogram_golden_text() {
    let registry = Registry::new();
    let h = registry.histogram_labeled(
        "mdm_req_micros",
        "request latency",
        &[10, 100, 1_000],
        &[("op", "query")],
    );
    h.observe(5); // le=10
    h.observe(7); // le=10
    h.observe(50); // le=100
    h.observe(20_000); // +Inf overflow
    let text = registry.snapshot().to_prometheus();
    let expected = concat!(
        "# HELP mdm_req_micros request latency\n",
        "# TYPE mdm_req_micros histogram\n",
        "mdm_req_micros_bucket{op=\"query\",le=\"10\"} 2\n",
        "mdm_req_micros_bucket{op=\"query\",le=\"100\"} 3\n",
        "mdm_req_micros_bucket{op=\"query\",le=\"1000\"} 3\n",
        "mdm_req_micros_bucket{op=\"query\",le=\"+Inf\"} 4\n",
        "mdm_req_micros_sum{op=\"query\"} 20062\n",
        "mdm_req_micros_count{op=\"query\"} 4\n",
    );
    assert_eq!(text, expected);
}
