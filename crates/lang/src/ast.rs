//! Abstract syntax for the DDL and QUEL.

use mdm_model::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `define entity NAME (attr = type, …)`
    DefineEntity {
        /// Entity type name.
        name: String,
        /// `(attribute, type-name)` pairs; a type name naming an entity
        /// type makes the attribute an entity reference.
        attrs: Vec<(String, String)>,
    },
    /// `define relationship NAME (member = type, …)` — entity-typed
    /// members are roles, value-typed members are attributes.
    DefineRelationship {
        /// Relationship name.
        name: String,
        /// `(member, type-name)` pairs.
        members: Vec<(String, String)>,
    },
    /// `define ordering [name] (CHILD, …) [under PARENT]`
    DefineOrdering {
        /// Optional ordering name.
        name: Option<String>,
        /// Child entity type names.
        children: Vec<String>,
        /// Optional parent entity type name.
        parent: Option<String>,
    },
    /// `define index NAME on ENTITY (attr)`
    DefineIndex {
        /// Index name.
        name: String,
        /// Entity type name the index covers.
        entity: String,
        /// Indexed attribute name.
        attr: String,
    },
    /// `destroy index NAME`
    DestroyIndex {
        /// Index name.
        name: String,
    },
    /// `range of v1, v2 is TYPE`
    RangeOf {
        /// Variable names.
        vars: Vec<String>,
        /// Entity or relationship type name.
        target: String,
    },
    /// `retrieve [unique] (target, …) [where qual] [sort by col [asc|desc], …]`
    Retrieve {
        /// Deduplicate result rows.
        unique: bool,
        /// Projected expressions.
        targets: Vec<Target>,
        /// Optional qualification.
        qual: Option<Expr>,
        /// Result ordering: output column names with ascending flags.
        sort: Vec<(String, bool)>,
    },
    /// `append to TYPE (attr = expr, …)`
    AppendTo {
        /// Entity type name.
        entity: String,
        /// Attribute assignments.
        assignments: Vec<(String, Expr)>,
    },
    /// `replace VAR (attr = expr, …) [where qual]`
    Replace {
        /// Range variable to update.
        var: String,
        /// Attribute assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional qualification.
        qual: Option<Expr>,
    },
    /// `delete VAR [where qual]`
    Delete {
        /// Range variable to delete.
        var: String,
        /// Optional qualification.
        qual: Option<Expr>,
    },
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Optional output label (`label = expr`); defaults to the expression's
    /// textual form.
    pub label: Option<String>,
    /// The projected expression.
    pub expr: Expr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `and`
    And,
    /// `or`
    Or,
}

/// The ordering operators of §5.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrdOp {
    /// `a before b [in o]`
    Before,
    /// `a after b [in o]`
    After,
    /// `a under p [in o]`
    Under,
}

/// Aggregate functions (the \[Han84\] extension the paper found "directly
/// applicable": aggregates over QUEL targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(e)` — non-null values.
    Count,
    /// `sum(e)`
    Sum,
    /// `avg(e)`
    Avg,
    /// `min(e)`
    Min,
    /// `max(e)`
    Max,
}

impl AggFunc {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }

    /// The canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Expressions (targets and qualifications).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Bare range variable (entity-valued, for `is` and ordering ops).
    Var(String),
    /// `var.attr` — attribute of an entity variable or member of a
    /// relationship variable.
    Attr {
        /// Range variable.
        var: String,
        /// Attribute or role name.
        attr: String,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `not e`
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `a is b` — entity identity (GEM's operator).
    Is {
        /// Left entity-valued expression.
        lhs: Box<Expr>,
        /// Right entity-valued expression.
        rhs: Box<Expr>,
    },
    /// `count(e)` / `sum(e)` / … — only legal in retrieve targets; when
    /// present, plain targets become grouping keys.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Its argument.
        arg: Box<Expr>,
    },
    /// `a before|after|under b [in ordering]`.
    Ord {
        /// Which operator.
        op: OrdOp,
        /// Left range variable.
        lhs: String,
        /// Right range variable.
        rhs: String,
        /// Optional explicit ordering name.
        ordering: Option<String>,
    },
}
