//! # mdm-lang
//!
//! The data languages of the music data manager:
//!
//! * the **DDL** of §5.4 — `define entity`, `define relationship`, and
//!   `define ordering [name] (CHILD, …) [under PARENT]`;
//! * **QUEL** (`range of`, `retrieve`, `append to`, `replace`, `delete`)
//!   extended per §5.6 with the entity operators `is` (from GEM) and the
//!   hierarchical-ordering operators `before`, `after`, and
//!   `under … [in order_name]`.
//!
//! Execution is INGRES-style tuple calculus: range variables (explicit or
//! implicit — a variable named like its type, footnote 6) range over
//! instances, qualifications filter the cross product.
//!
//! ```
//! use mdm_lang::{Session, StmtResult};
//! use mdm_model::Database;
//!
//! let mut db = Database::new();
//! let mut session = Session::new();
//! session.execute(&mut db, r#"
//!     define entity CHORD (name = integer)
//!     define entity NOTE (name = integer, pitch = string)
//!     define ordering note_in_chord (NOTE) under CHORD
//!     append to NOTE (name = 1, pitch = "C4")
//! "#).unwrap();
//! let results = session.execute(&mut db, r#"
//!     range of n is NOTE
//!     retrieve (n.pitch) where n.name = 1
//! "#).unwrap();
//! let StmtResult::Rows(table) = &results[1] else { panic!() };
//! assert_eq!(table.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod fingerprint;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, Expr, OrdOp, Stmt, Target};
pub use error::{LangError, Result};
pub use exec::{
    PlanExplain, QuelMetrics, RangeTarget, Session, StmtResult, Table, VarPlan, VirtualEntity,
};
pub use fingerprint::fingerprint;
pub use parser::{parse, parse_tokens};
