//! Statement execution: tuple-calculus evaluation over the instance store.
//!
//! QUEL statements are evaluated INGRES-style: every range variable used by
//! a statement ranges over the instances of its entity (or relationship)
//! type, the cross product is enumerated with nested loops, the
//! qualification filters combinations, and targets/assignments are
//! evaluated per surviving combination. As in GEM and later INGRES
//! versions, a range variable named exactly like an entity or relationship
//! type is implicitly declared (paper, footnote 6).
//!
//! A small cost-aware planner shrinks each variable's domain before the
//! cross product is enumerated (see [`Plan::restrictions`]): equality and
//! inequality conjuncts over indexed attributes become index probes and
//! index range scans, and `before` / `after` / `under` clauses against a
//! pinned peer variable become sibling-slice or child-list lookups in the
//! ordering structures. The resulting access paths are reported through
//! [`PlanExplain`] (the `\plan` EXPLAIN output).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mdm_model::encode::encode_value;
use mdm_model::{Database, EntityId, RelTypeId, TypeId, Value};
use mdm_obs::{
    trace, Counter, Histogram, MetricValue, Monitor, PathMix, Registry, Severity, StatementStore,
    LATENCY_MICROS_BOUNDS,
};

use crate::ast::{BinOp, Expr, OrdOp, Stmt, Target};
use crate::error::{LangError, Result};

/// Observability handles for the QUEL pipeline: phase latencies
/// (lex / parse / per-statement execution), executor row traffic, and
/// ordering-operator evaluation counts. Created against a registry with
/// [`QuelMetrics::register`] and attached to a session via
/// [`Session::with_metrics`]; sessions without metrics pay nothing.
#[derive(Debug)]
pub struct QuelMetrics {
    lex_micros: Arc<Histogram>,
    parse_micros: Arc<Histogram>,
    exec_micros: Arc<Histogram>,
    rows_scanned: Arc<Counter>,
    rows_returned: Arc<Counter>,
    ord_before: Arc<Counter>,
    ord_after: Arc<Counter>,
    ord_under: Arc<Counter>,
    plan_scan: Arc<Counter>,
    plan_index_eq: Arc<Counter>,
    plan_index_range: Arc<Counter>,
    plan_ord: Arc<Counter>,
}

impl QuelMetrics {
    /// Registers (or retrieves) the QUEL pipeline metrics in `registry`.
    pub fn register(registry: &Registry) -> Arc<QuelMetrics> {
        let ord = |op| {
            registry.counter_labeled(
                "mdm_quel_ord_ops_total",
                "hierarchical-ordering operator evaluations",
                &[("op", op)],
            )
        };
        let plan = |path| {
            registry.counter_labeled(
                "mdm_quel_plan_total",
                "access paths chosen by the QUEL planner, per range variable",
                &[("path", path)],
            )
        };
        Arc::new(QuelMetrics {
            lex_micros: registry.histogram(
                "mdm_quel_lex_micros",
                "QUEL program lexing latency",
                LATENCY_MICROS_BOUNDS,
            ),
            parse_micros: registry.histogram(
                "mdm_quel_parse_micros",
                "QUEL program parsing latency",
                LATENCY_MICROS_BOUNDS,
            ),
            exec_micros: registry.histogram(
                "mdm_quel_exec_micros",
                "QUEL statement execution latency",
                LATENCY_MICROS_BOUNDS,
            ),
            rows_scanned: registry.counter(
                "mdm_quel_rows_scanned_total",
                "tuples fetched from the instance store by the executor \
                 (each variable counts at most once per candidate binding)",
            ),
            rows_returned: registry.counter(
                "mdm_quel_rows_returned_total",
                "rows returned by retrieve statements",
            ),
            ord_before: ord("before"),
            ord_after: ord("after"),
            ord_under: ord("under"),
            plan_scan: plan("scan"),
            plan_index_eq: plan("index_eq"),
            plan_index_range: plan("index_range"),
            plan_ord: plan("ord"),
        })
    }
}

/// A system entity: a virtual table over the engine's own statistics,
/// addressable from QUEL by its `$`-prefixed name (`range of s is
/// $statements`, or implicitly via a variable named like the entity).
/// Rows are materialized per statement, so a retrieve sees a consistent
/// point-in-time picture; mutating statements reject virtual targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtualEntity {
    /// Per-fingerprint statement statistics (the statement store).
    Statements,
    /// Per-entity-type access statistics.
    Tables,
    /// Per-named-index access statistics.
    Indexes,
    /// Lock and transaction counters from the attached registry.
    Locks,
    /// Current value, last-window rate, and latency quantiles of every
    /// metric series, from the attached monitor.
    Metrics,
    /// Health-rule states from the attached monitor's alert engine.
    Alerts,
}

impl VirtualEntity {
    /// The `$`-prefixed QUEL name.
    pub fn name(&self) -> &'static str {
        match self {
            VirtualEntity::Statements => "$statements",
            VirtualEntity::Tables => "$tables",
            VirtualEntity::Indexes => "$indexes",
            VirtualEntity::Locks => "$locks",
            VirtualEntity::Metrics => "$metrics",
            VirtualEntity::Alerts => "$alerts",
        }
    }

    /// Parses a `$`-prefixed name.
    pub fn from_name(name: &str) -> Option<VirtualEntity> {
        Some(match name {
            "$statements" => VirtualEntity::Statements,
            "$tables" => VirtualEntity::Tables,
            "$indexes" => VirtualEntity::Indexes,
            "$locks" => VirtualEntity::Locks,
            "$metrics" => VirtualEntity::Metrics,
            "$alerts" => VirtualEntity::Alerts,
            _ => return None,
        })
    }
}

/// A materialized virtual table: one system entity's rows at the moment
/// the statement's plan was built.
#[derive(Debug, Clone)]
struct VirtTable {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

/// Per-statement accumulator for what the store records: tuples fetched
/// and the planner's access-path mix, flushed into the statement store
/// when the program finishes. Shared between the session and its plans
/// through an `Arc` because plans only hold `&self`.
#[derive(Debug, Default)]
struct StmtAccum {
    scanned: AtomicU64,
    scan: AtomicU64,
    index_eq: AtomicU64,
    index_range: AtomicU64,
    ord: AtomicU64,
}

impl StmtAccum {
    fn note_scanned(&self, n: u64) {
        self.scanned.fetch_add(n, Ordering::Relaxed);
    }

    fn note_paths(&self, mix: &PathMix) {
        self.scan.fetch_add(mix.scan, Ordering::Relaxed);
        self.index_eq.fetch_add(mix.index_eq, Ordering::Relaxed);
        self.index_range
            .fetch_add(mix.index_range, Ordering::Relaxed);
        self.ord.fetch_add(mix.ord, Ordering::Relaxed);
    }

    /// Drains the accumulator, returning (rows scanned, path mix).
    fn take(&self) -> (u64, PathMix) {
        (
            self.scanned.swap(0, Ordering::Relaxed),
            PathMix {
                scan: self.scan.swap(0, Ordering::Relaxed),
                index_eq: self.index_eq.swap(0, Ordering::Relaxed),
                index_range: self.index_range.swap(0, Ordering::Relaxed),
                ord: self.ord.swap(0, Ordering::Relaxed),
            },
        )
    }
}

/// What a range variable ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeTarget {
    /// Instances of an entity type.
    Entity(TypeId),
    /// Instances of a relationship.
    Relationship(RelTypeId),
    /// Rows of a system entity (`$statements`, `$tables`, …).
    Virtual(VirtualEntity),
}

/// A result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 result, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => None,
        }
    }

    /// Values of the named column.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let line = |f: &mut fmt::Formatter<'_>| {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "|")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, " {c:<w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)?;
        writeln!(
            f,
            "({} row{})",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" }
        )
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtResult {
    /// A `define …` took effect; the payload names what was defined.
    Defined(String),
    /// A `range of` declaration took effect.
    RangeDeclared,
    /// Rows from a `retrieve`.
    Rows(Table),
    /// Number of entities appended.
    Appended(usize),
    /// Number of entities updated.
    Replaced(usize),
    /// Number of entities deleted.
    Deleted(usize),
}

/// A QUEL session: executes statements against a [`Database`], carrying
/// `range of` declarations across statements (INGRES semantics).
#[derive(Debug, Clone, Default)]
pub struct Session {
    ranges: HashMap<String, String>, // var -> type name (resolved lazily)
    metrics: Option<Arc<QuelMetrics>>,
    stmt_store: Option<Arc<StatementStore>>,
    lock_registry: Option<Registry>,
    monitor: Option<Arc<Monitor>>,
    accum: Arc<StmtAccum>,
}

impl Session {
    /// Creates a session with no declared range variables.
    pub fn new() -> Session {
        Session::default()
    }

    /// Creates a session whose pipeline phases record into `metrics`.
    pub fn with_metrics(metrics: Arc<QuelMetrics>) -> Session {
        Session {
            metrics: Some(metrics),
            ..Session::default()
        }
    }

    /// Attaches a statement store: every program executed from here on
    /// is fingerprinted and recorded (latency, rows, access-path mix),
    /// and `$statements` retrieves read the store's contents.
    pub fn set_statement_store(&mut self, store: Arc<StatementStore>) {
        // Drop anything accumulated while unattached so the first
        // recorded program does not inherit stale counts.
        let _ = self.accum.take();
        self.stmt_store = Some(store);
    }

    /// The attached statement store, if any.
    pub fn statement_store(&self) -> Option<Arc<StatementStore>> {
        self.stmt_store.clone()
    }

    /// Attaches the metrics registry that `$locks` retrieves read their
    /// lock and transaction counters from.
    pub fn set_lock_registry(&mut self, registry: Registry) {
        self.lock_registry = Some(registry);
    }

    /// Attaches the monitor that `$metrics` and `$alerts` retrieves read
    /// their time-series points and alert states from.
    pub fn set_monitor(&mut self, monitor: Arc<Monitor>) {
        self.monitor = Some(monitor);
    }

    /// Lexes and parses a program, timing each phase when instrumented
    /// and recording `quel.lex` / `quel.parse` spans into any active
    /// request trace.
    fn parse_timed(&self, text: &str) -> Result<Vec<Stmt>> {
        let tokens = {
            let _s = trace::span("quel.lex");
            let _t = self.metrics.as_ref().map(|m| m.lex_micros.time());
            crate::lexer::lex(text)?
        };
        let _s = trace::span("quel.parse");
        let _t = self.metrics.as_ref().map(|m| m.parse_micros.time());
        crate::parser::parse_tokens(tokens)
    }

    /// Records a finished program into the attached statement store:
    /// fingerprint, wall time, rows returned, and whatever the plans
    /// accumulated (tuples scanned, access-path mix). Failed programs
    /// are recorded too — a repeatedly-failing statement is exactly what
    /// `$statements` should surface.
    /// Whether executions are being recorded: a store is attached and
    /// enabled. Checked before timing starts, so a disabled store is a
    /// true bypass — no clock reads, no fingerprinting.
    fn recording(&self) -> bool {
        self.stmt_store.as_ref().is_some_and(|s| s.enabled())
    }

    fn record_program(&self, text: &str, started: Option<Instant>, rows_returned: u64) {
        let (Some(store), Some(started)) = (&self.stmt_store, started) else {
            return;
        };
        let (scanned, paths) = self.accum.take();
        store.record(
            &crate::fingerprint::fingerprint(text),
            started.elapsed().as_micros() as u64,
            rows_returned,
            scanned,
            &paths,
        );
    }

    /// Parses and executes a program, returning one result per statement.
    pub fn execute(&mut self, db: &mut Database, text: &str) -> Result<Vec<StmtResult>> {
        let started = self.recording().then(Instant::now);
        let result = self.execute_inner(db, text);
        self.record_program(text, started, rows_returned_of(&result));
        result
    }

    fn execute_inner(&mut self, db: &mut Database, text: &str) -> Result<Vec<StmtResult>> {
        let stmts = self.parse_timed(text)?;
        stmts
            .iter()
            .map(|s| {
                let _sp = trace::span("quel.exec");
                trace::annotate("stmt", stmt_kind(s));
                let _t = self.metrics.as_ref().map(|m| m.exec_micros.time());
                let result = self.execute_stmt(db, s);
                if let Ok(StmtResult::Rows(t)) = &result {
                    trace::annotate("rows_returned", t.rows.len());
                }
                result
            })
            .collect()
    }

    /// Parses and executes a *read-only* program — `range of` declarations
    /// and `retrieve` statements — against a shared database reference.
    /// Any mutating statement (define / append / replace / delete) is
    /// rejected, which is what lets concurrent reader clients share one
    /// `&Database` without exclusive access.
    pub fn execute_readonly(&mut self, db: &Database, text: &str) -> Result<Vec<StmtResult>> {
        let started = self.recording().then(Instant::now);
        let result = self.execute_readonly_inner(db, text);
        self.record_program(text, started, rows_returned_of(&result));
        result
    }

    fn execute_readonly_inner(&mut self, db: &Database, text: &str) -> Result<Vec<StmtResult>> {
        let stmts = self.parse_timed(text)?;
        stmts
            .iter()
            .map(|s| {
                let _sp = trace::span("quel.exec");
                trace::annotate("stmt", stmt_kind(s));
                let _t = self.metrics.as_ref().map(|m| m.exec_micros.time());
                let result = match s {
                    Stmt::RangeOf { vars, target } => self.declare_range(db, vars, target),
                    Stmt::Retrieve {
                        unique,
                        targets,
                        qual,
                        sort,
                    } => self.retrieve(db, *unique, targets, qual.as_ref(), sort),
                    _ => Err(LangError::Analyze(
                        "only `range of` and `retrieve` are allowed in read-only execution".into(),
                    )),
                };
                if let Ok(StmtResult::Rows(t)) = &result {
                    trace::annotate("rows_returned", t.rows.len());
                }
                result
            })
            .collect()
    }

    /// Explains (and executes) a read-only program: `range of`
    /// declarations followed by one or more `retrieve` statements. The
    /// returned [`PlanExplain`] describes the last retrieve's access
    /// paths — per-variable scan / index-eq / index-range / ord choices
    /// with estimated domain sizes — plus the estimated binding count
    /// against the rows actually returned and tuples actually fetched.
    /// Any other statement kind is rejected.
    pub fn explain(&mut self, db: &Database, text: &str) -> Result<(PlanExplain, Table)> {
        let started = self.recording().then(Instant::now);
        let result = self.explain_inner(db, text);
        let rows = result.as_ref().map_or(0, |(_, t)| t.rows.len() as u64);
        self.record_program(text, started, rows);
        result
    }

    fn explain_inner(&mut self, db: &Database, text: &str) -> Result<(PlanExplain, Table)> {
        let stmts = self.parse_timed(text)?;
        let mut last = None;
        for s in &stmts {
            match s {
                Stmt::RangeOf { vars, target } => {
                    self.declare_range(db, vars, target)?;
                }
                Stmt::Retrieve {
                    unique,
                    targets,
                    qual,
                    sort,
                } => {
                    let (table, ex) =
                        self.retrieve_explained(db, *unique, targets, qual.as_ref(), sort)?;
                    last = Some((ex, table));
                }
                _ => {
                    return Err(LangError::Analyze(
                        "only `range of` and `retrieve` can be explained".into(),
                    ))
                }
            }
        }
        last.ok_or_else(|| LangError::Analyze("no retrieve statement to explain".into()))
    }

    /// Executes one parsed statement.
    pub fn execute_stmt(&mut self, db: &mut Database, stmt: &Stmt) -> Result<StmtResult> {
        match stmt {
            Stmt::DefineEntity { name, attrs } => {
                let defs = attrs
                    .iter()
                    .map(|(n, t)| {
                        Ok(mdm_model::AttributeDef {
                            name: n.clone(),
                            ty: parse_type(db, t)?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                db.define_entity(name, defs)?;
                Ok(StmtResult::Defined(format!("entity {name}")))
            }
            Stmt::DefineRelationship { name, members } => {
                let mut roles = Vec::new();
                let mut attrs = Vec::new();
                for (n, t) in members {
                    match db.schema().entity_type_id(t) {
                        Ok(ty) => roles.push(mdm_model::RoleDef {
                            name: n.clone(),
                            entity_type: ty,
                        }),
                        Err(_) => attrs.push(mdm_model::AttributeDef {
                            name: n.clone(),
                            ty: parse_scalar_type(t)?,
                        }),
                    }
                }
                db.define_relationship(name, roles, attrs)?;
                Ok(StmtResult::Defined(format!("relationship {name}")))
            }
            Stmt::DefineOrdering {
                name,
                children,
                parent,
            } => {
                let child_refs: Vec<&str> = children.iter().map(String::as_str).collect();
                db.define_ordering(name.as_deref(), &child_refs, parent.as_deref())?;
                Ok(StmtResult::Defined(format!(
                    "ordering {}",
                    name.clone().unwrap_or_else(|| "(unnamed)".into())
                )))
            }
            Stmt::DefineIndex { name, entity, attr } => {
                db.define_index(name, entity, attr)?;
                Ok(StmtResult::Defined(format!("index {name}")))
            }
            Stmt::DestroyIndex { name } => {
                db.destroy_index(name)?;
                Ok(StmtResult::Defined(format!("destroyed index {name}")))
            }
            Stmt::RangeOf { vars, target } => self.declare_range(db, vars, target),
            Stmt::Retrieve {
                unique,
                targets,
                qual,
                sort,
            } => self.retrieve(db, *unique, targets, qual.as_ref(), sort),
            Stmt::AppendTo {
                entity,
                assignments,
            } => self.append(db, entity, assignments),
            Stmt::Replace {
                var,
                assignments,
                qual,
            } => self.replace(db, var, assignments, qual.as_ref()),
            Stmt::Delete { var, qual } => self.delete(db, var, qual.as_ref()),
        }
    }

    fn declare_range(
        &mut self,
        db: &Database,
        vars: &[String],
        target: &str,
    ) -> Result<StmtResult> {
        // Validate now so errors surface at declaration.
        resolve_target(db, target)?;
        for v in vars {
            self.ranges.insert(v.clone(), target.to_string());
        }
        Ok(StmtResult::RangeDeclared)
    }

    /// Declared or implicit range target for a variable.
    fn var_target(&self, db: &Database, var: &str) -> Result<RangeTarget> {
        if let Some(tname) = self.ranges.get(var) {
            return resolve_target(db, tname);
        }
        // Footnote 6: implicit range variable named like its type.
        resolve_target(db, var).map_err(|_| {
            LangError::Analyze(format!(
                "range variable {var} was never declared (and names no entity type)"
            ))
        })
    }

    fn bindings_plan(&self, db: &Database, exprs: &[&Expr]) -> Result<Plan> {
        let mut vars: Vec<String> = Vec::new();
        let mut seen = HashSet::new();
        for e in exprs {
            collect_vars(e, &mut vars, &mut seen);
        }
        let targets = vars
            .iter()
            .map(|v| self.var_target(db, v))
            .collect::<Result<Vec<_>>>()?;
        let virt = targets
            .iter()
            .map(|t| match t {
                RangeTarget::Virtual(ve) => Some(self.materialize_virtual(db, *ve)),
                _ => None,
            })
            .collect();
        Ok(Plan {
            fetched: RefCell::new(vec![false; vars.len()]),
            scanned: Cell::new(0),
            vars,
            targets,
            virt,
            metrics: self.metrics.clone(),
            accum: Arc::clone(&self.accum),
        })
    }

    /// Builds the point-in-time rows of one system entity.
    fn materialize_virtual(&self, db: &Database, ve: VirtualEntity) -> VirtTable {
        let int = |u: u64| Value::Integer(u as i64);
        match ve {
            VirtualEntity::Statements => {
                let columns = [
                    "fingerprint",
                    "calls",
                    "total_micros",
                    "p50_micros",
                    "p99_micros",
                    "rows_returned",
                    "rows_scanned",
                    "scan",
                    "index_eq",
                    "index_range",
                    "ord",
                ];
                let mut rows = Vec::new();
                if let Some(store) = &self.stmt_store {
                    for s in store.top(usize::MAX) {
                        rows.push(vec![
                            Value::String(s.fingerprint.clone()),
                            int(s.calls),
                            int(s.total_micros),
                            int(s.p50_micros()),
                            int(s.p99_micros()),
                            int(s.rows_returned),
                            int(s.rows_scanned),
                            int(s.paths.scan),
                            int(s.paths.index_eq),
                            int(s.paths.index_range),
                            int(s.paths.ord),
                        ]);
                    }
                }
                VirtTable {
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows,
                }
            }
            VirtualEntity::Tables => {
                let columns = [
                    "name",
                    "live",
                    "appends",
                    "replaces",
                    "deletes",
                    "heap_fetches",
                ];
                let rows = db
                    .schema()
                    .entity_types()
                    .iter()
                    .enumerate()
                    .map(|(ty, def)| {
                        let t = db.stats().table(ty as TypeId);
                        vec![
                            Value::String(def.name.clone()),
                            int(t.live),
                            int(t.appends),
                            int(t.replaces),
                            int(t.deletes),
                            int(t.heap_fetches),
                        ]
                    })
                    .collect();
                VirtTable {
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows,
                }
            }
            VirtualEntity::Indexes => {
                let columns = [
                    "name",
                    "entity",
                    "attribute",
                    "distinct",
                    "entries",
                    "eq_probes",
                    "range_probes",
                    "maintenance_writes",
                ];
                let mut rows = Vec::new();
                for (name, (ty_name, attr)) in db.index_defs() {
                    let Ok(ty) = db.schema().entity_type_id(ty_name) else {
                        continue;
                    };
                    let Some(attr_idx) = db
                        .schema()
                        .entity_type(ty)
                        .ok()
                        .and_then(|d| d.attribute_index(attr))
                    else {
                        continue;
                    };
                    let ia = db.stats().index(ty, attr_idx);
                    rows.push(vec![
                        Value::String(name.clone()),
                        Value::String(ty_name.clone()),
                        Value::String(attr.clone()),
                        int(db.attr_index_distinct(ty, attr_idx).unwrap_or(0) as u64),
                        int(db.attr_index_len(ty, attr_idx).unwrap_or(0) as u64),
                        int(ia.eq_probes),
                        int(ia.range_probes),
                        int(ia.maintenance_writes),
                    ]);
                }
                VirtTable {
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows,
                }
            }
            VirtualEntity::Locks => {
                let mut rows = Vec::new();
                if let Some(reg) = &self.lock_registry {
                    for m in reg.snapshot().entries {
                        // MVCC gauges ride along so `$locks` shows the
                        // snapshot-read side of the concurrency story
                        // (open snapshots, live versions) next to the
                        // lock counts they keep at zero.
                        if !(m.name.starts_with("mdm_lock_")
                            || m.name.starts_with("mdm_txn_")
                            || m.name.starts_with("mdm_mvcc_"))
                        {
                            continue;
                        }
                        let value = match m.value {
                            MetricValue::Counter(c) => c as i64,
                            MetricValue::Gauge(g) => g,
                            _ => continue,
                        };
                        let name = if m.labels.is_empty() {
                            m.name
                        } else {
                            let labels: Vec<String> =
                                m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                            format!("{}{{{}}}", m.name, labels.join(","))
                        };
                        rows.push(vec![Value::String(name), Value::Integer(value)]);
                    }
                }
                VirtTable {
                    columns: vec!["name".into(), "value".into()],
                    rows,
                }
            }
            VirtualEntity::Metrics => {
                let columns = ["name", "value", "rate", "p50", "p99"];
                let mut rows = Vec::new();
                if let Some(monitor) = &self.monitor {
                    for (name, p) in monitor.latest() {
                        rows.push(vec![
                            Value::String(name),
                            Value::Float(p.value),
                            Value::Float(p.rate),
                            Value::Float(p.p50),
                            Value::Float(p.p99),
                        ]);
                    }
                }
                VirtTable {
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows,
                }
            }
            VirtualEntity::Alerts => {
                let columns = [
                    "rule",
                    "metric",
                    "state",
                    "severity",
                    "value",
                    "threshold",
                    "since_micros",
                ];
                let mut rows = Vec::new();
                if let Some(monitor) = &self.monitor {
                    for a in monitor.health().alerts {
                        rows.push(vec![
                            Value::String(a.rule),
                            Value::String(a.metric),
                            Value::String(a.state.as_str().to_string()),
                            Value::String(
                                match a.severity {
                                    Severity::Warning => "warning",
                                    Severity::Critical => "critical",
                                }
                                .to_string(),
                            ),
                            Value::Float(a.value),
                            Value::Float(a.threshold),
                            int(a.since_micros),
                        ]);
                    }
                }
                VirtTable {
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows,
                }
            }
        }
    }

    /// Credits `n` rows to the returned-rows counter, if instrumented.
    fn note_rows_returned(&self, n: usize) {
        if let Some(m) = &self.metrics {
            m.rows_returned.add(n as u64);
        }
    }

    fn retrieve(
        &self,
        db: &Database,
        unique: bool,
        targets: &[Target],
        qual: Option<&Expr>,
        sort: &[(String, bool)],
    ) -> Result<StmtResult> {
        let (table, _) = self.retrieve_explained(db, unique, targets, qual, sort)?;
        Ok(StmtResult::Rows(table))
    }

    fn retrieve_explained(
        &self,
        db: &Database,
        unique: bool,
        targets: &[Target],
        qual: Option<&Expr>,
        sort: &[(String, bool)],
    ) -> Result<(Table, PlanExplain)> {
        let mut exprs: Vec<&Expr> = targets.iter().map(|t| &t.expr).collect();
        if let Some(q) = qual {
            exprs.push(q);
        }
        let plan = self.bindings_plan(db, &exprs)?;
        let restrictions = plan.restrictions(db, qual);
        // Each ordering-operator clause in the qualification gets its own
        // retroactive span covering the scan it filtered.
        let ord_clauses = ord_clause_spans(qual);
        let scan_started = (!ord_clauses.is_empty()).then(Instant::now);
        let columns: Vec<String> = targets
            .iter()
            .map(|t| t.label.clone().unwrap_or_else(|| expr_label(&t.expr)))
            .collect();
        let mut table = if targets.iter().any(|t| matches!(t.expr, Expr::Agg { .. })) {
            retrieve_grouped(db, &plan, &restrictions, columns, targets, qual)?
        } else {
            let mut rows = Vec::new();
            let mut dedup: HashSet<Vec<u8>> = HashSet::new();
            plan.for_each_binding(db, &restrictions, |db, binding| {
                if let Some(q) = qual {
                    if !eval_bool(db, &plan, binding, q)? {
                        return Ok(());
                    }
                }
                let row = targets
                    .iter()
                    .map(|t| eval(db, &plan, binding, &t.expr))
                    .collect::<Result<Vec<_>>>()?;
                if unique {
                    let mut key = Vec::new();
                    for v in &row {
                        encode_value(&mut key, v);
                    }
                    if !dedup.insert(key) {
                        return Ok(());
                    }
                }
                rows.push(row);
                Ok(())
            })?;
            Table { columns, rows }
        };
        emit_ord_spans(&ord_clauses, scan_started);
        sort_table(&mut table, sort)?;
        self.note_rows_returned(table.rows.len());
        let explain = plan.explain(db, &restrictions, table.rows.len());
        Ok((table, explain))
    }

    fn append(
        &mut self,
        db: &mut Database,
        entity: &str,
        assignments: &[(String, Expr)],
    ) -> Result<StmtResult> {
        let exprs: Vec<&Expr> = assignments.iter().map(|(_, e)| e).collect();
        let plan = self.bindings_plan(db, &exprs)?;
        let mut pending: Vec<Vec<(String, Value)>> = Vec::new();
        let restrictions = plan.restrictions(db, None);
        plan.for_each_binding(db, &restrictions, |db, binding| {
            let row = assignments
                .iter()
                .map(|(n, e)| Ok((n.clone(), eval(db, &plan, binding, e)?)))
                .collect::<Result<Vec<_>>>()?;
            pending.push(row);
            Ok(())
        })?;
        let n = pending.len();
        for row in pending {
            let attrs: Vec<(&str, Value)> =
                row.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            db.create_entity(entity, &attrs)?;
        }
        Ok(StmtResult::Appended(n))
    }

    fn replace(
        &mut self,
        db: &mut Database,
        var: &str,
        assignments: &[(String, Expr)],
        qual: Option<&Expr>,
    ) -> Result<StmtResult> {
        let var_expr = Expr::Var(var.to_string());
        let mut exprs: Vec<&Expr> = assignments.iter().map(|(_, e)| e).collect();
        exprs.push(&var_expr);
        if let Some(q) = qual {
            exprs.push(q);
        }
        let plan = self.bindings_plan(db, &exprs)?;
        let vidx = plan.index_of(var)?;
        if !matches!(plan.targets[vidx], RangeTarget::Entity(_)) {
            return Err(LangError::Analyze(format!(
                "replace target {var} must be an entity variable"
            )));
        }
        let mut updates: BTreeMap<EntityId, Vec<(String, Value)>> = BTreeMap::new();
        let restrictions = plan.restrictions(db, qual);
        plan.for_each_binding(db, &restrictions, |db, binding| {
            if let Some(q) = qual {
                if !eval_bool(db, &plan, binding, q)? {
                    return Ok(());
                }
            }
            let id = binding[vidx];
            let row = assignments
                .iter()
                .map(|(n, e)| Ok((n.clone(), eval(db, &plan, binding, e)?)))
                .collect::<Result<Vec<_>>>()?;
            updates.insert(id, row);
            Ok(())
        })?;
        let n = updates.len();
        for (id, row) in updates {
            for (attr, v) in row {
                db.set_attr(id, &attr, v)?;
            }
        }
        Ok(StmtResult::Replaced(n))
    }

    fn delete(&mut self, db: &mut Database, var: &str, qual: Option<&Expr>) -> Result<StmtResult> {
        let var_expr = Expr::Var(var.to_string());
        let mut exprs: Vec<&Expr> = vec![&var_expr];
        if let Some(q) = qual {
            exprs.push(q);
        }
        let plan = self.bindings_plan(db, &exprs)?;
        let vidx = plan.index_of(var)?;
        if !matches!(plan.targets[vidx], RangeTarget::Entity(_)) {
            return Err(LangError::Analyze(format!(
                "delete target {var} must be an entity variable"
            )));
        }
        let mut victims: BTreeSet<EntityId> = BTreeSet::new();
        let restrictions = plan.restrictions(db, qual);
        plan.for_each_binding(db, &restrictions, |db, binding| {
            if let Some(q) = qual {
                if !eval_bool(db, &plan, binding, q)? {
                    return Ok(());
                }
            }
            victims.insert(binding[vidx]);
            Ok(())
        })?;
        let n = victims.len();
        for id in victims {
            db.delete_entity(id)?;
        }
        Ok(StmtResult::Deleted(n))
    }
}

/// Rows returned by the retrieve statements of a finished program, for
/// statement-store accounting (errors count as zero rows).
fn rows_returned_of(result: &Result<Vec<StmtResult>>) -> u64 {
    match result {
        Ok(results) => results
            .iter()
            .map(|r| match r {
                StmtResult::Rows(t) => t.rows.len() as u64,
                _ => 0,
            })
            .sum(),
        Err(_) => 0,
    }
}

/// How the planner produces one range variable's domain.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AccessPath {
    /// Full scan of the type's instances.
    Scan,
    /// Equality probe of the named attribute's index.
    IndexEq(String),
    /// Range probe of the named attribute's index.
    IndexRange(String),
    /// Child-list or sibling-slice lookup derived from an ordering
    /// operator against a pinned peer variable.
    OrdDerived(&'static str),
}

impl AccessPath {
    fn label(&self) -> String {
        match self {
            AccessPath::Scan => "scan".into(),
            AccessPath::IndexEq(a) => format!("index-eq({a})"),
            AccessPath::IndexRange(a) => format!("index-range({a})"),
            AccessPath::OrdDerived(op) => format!("ord({op})"),
        }
    }
}

/// One variable's planned domain. `ids: None` means the full instance
/// list; `Some` domains are always re-emitted in `instances_of` order
/// (see [`Plan::restrictions`]) so restricted and unrestricted plans
/// produce identical result rows.
struct Restriction {
    ids: Option<Vec<u64>>,
    path: AccessPath,
    /// Which stored statistics informed this variable's cost estimate
    /// (EXPLAIN annotation); empty when no statistics were consulted.
    stats: String,
}

impl Restriction {
    /// Intersects `hits` into the domain, recording the access path that
    /// produced them (first non-scan path wins the label). Returns true
    /// if the domain changed.
    fn restrict(&mut self, hits: Vec<u64>, path: AccessPath) -> bool {
        if self.path == AccessPath::Scan {
            self.path = path;
        }
        match self.ids.take() {
            Some(prev) => {
                let keep: HashSet<u64> = hits.into_iter().collect();
                let next: Vec<u64> = prev
                    .iter()
                    .copied()
                    .filter(|id| keep.contains(id))
                    .collect();
                let changed = next.len() != prev.len();
                self.ids = Some(next);
                changed
            }
            None => {
                self.ids = Some(hits);
                true
            }
        }
    }
}

/// One variable's row in the EXPLAIN output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarPlan {
    /// Range variable name.
    pub var: String,
    /// Entity or relationship type it ranges over.
    pub target: String,
    /// Access path label: `scan`, `index-eq(attr)`, `index-range(attr)`,
    /// or `ord(op)`.
    pub path: String,
    /// Planned domain size (estimated rows this variable contributes).
    pub estimated: usize,
    /// Stored statistics that informed the choice, e.g.
    /// `live=500 distinct=200 est=2`; empty when none were consulted.
    pub stats: String,
}

/// EXPLAIN output for one retrieve: the access path chosen per range
/// variable plus estimated vs actual row counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanExplain {
    /// Per-variable access paths, in enumeration order.
    pub vars: Vec<VarPlan>,
    /// Product of planned domain sizes: candidate bindings enumerated.
    pub estimated_rows: u64,
    /// Rows the retrieve actually returned.
    pub actual_rows: u64,
    /// Tuples actually fetched from the instance store.
    pub rows_scanned: u64,
}

impl fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "retrieve plan:")?;
        for v in &self.vars {
            writeln!(
                f,
                "  {}: {} via {}, ~{} row{}{}",
                v.var,
                v.target,
                v.path,
                v.estimated,
                if v.estimated == 1 { "" } else { "s" },
                if v.stats.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", v.stats)
                }
            )?;
        }
        write!(
            f,
            "estimated {} binding{}; returned {} row{}; scanned {} tuple{}",
            self.estimated_rows,
            if self.estimated_rows == 1 { "" } else { "s" },
            self.actual_rows,
            if self.actual_rows == 1 { "" } else { "s" },
            self.rows_scanned,
            if self.rows_scanned == 1 { "" } else { "s" },
        )
    }
}

/// The variables of one statement and what they range over.
struct Plan {
    vars: Vec<String>,
    targets: Vec<RangeTarget>,
    /// Materialized system-entity rows, aligned with `vars` (`None` for
    /// ordinary entity / relationship variables).
    virt: Vec<Option<VirtTable>>,
    metrics: Option<Arc<QuelMetrics>>,
    /// The owning session's per-statement accumulator.
    accum: Arc<StmtAccum>,
    /// Tuples fetched from the instance store so far (the work metric).
    scanned: Cell<u64>,
    /// Per-variable "already fetched for the current binding" flags.
    fetched: RefCell<Vec<bool>>,
}

impl Plan {
    fn index_of(&self, var: &str) -> Result<usize> {
        self.vars
            .iter()
            .position(|v| v == var)
            .ok_or_else(|| LangError::Analyze(format!("unknown range variable {var}")))
    }

    /// The indexed attribute position for `var.attr`, when `var` is an
    /// entity variable in this plan.
    fn sargable(&self, db: &Database, var: &str, attr: &str) -> Option<(usize, TypeId, usize)> {
        let i = self.vars.iter().position(|v| v == var)?;
        let RangeTarget::Entity(ty) = self.targets[i] else {
            return None;
        };
        let def = db.schema().entity_type(ty).ok()?;
        let attr_idx = def.attribute_index(attr)?;
        Some((i, ty, attr_idx))
    }

    /// The cost-aware planner: per-variable domain restrictions from
    /// sargable qualification conjuncts.
    ///
    /// Three passes over the top-level AND conjuncts:
    ///
    /// 1. `var.attr = constant` over an indexed attribute → index
    ///    equality probe;
    /// 2. `var.attr < | <= | > | >= constant` (either orientation) over
    ///    an indexed attribute → one-sided index range scan;
    /// 3. `a before|after|under b` where one side is *pinned* (domain of
    ///    exactly one instance, by restriction or by population) → the
    ///    other side's domain is read straight out of the ordering: the
    ///    child list under a pinned parent, or the sibling slice before
    ///    / after a pinned peer. Pass 3 runs to a fixpoint so one pinned
    ///    variable can pin the next through a chain of clauses.
    ///
    /// Every restriction only ever *shrinks* a domain and the original
    /// qualification is still evaluated per binding, so a restriction
    /// that is merely a superset of the true set stays correct. Finally
    /// every restricted domain is re-emitted in `instances_of` order,
    /// which (a) filters ordering-derived ids down to the variable's own
    /// entity type and (b) makes restricted plans produce rows in
    /// exactly the order a full scan would.
    fn restrictions(&self, db: &Database, qual: Option<&Expr>) -> Vec<Restriction> {
        let mut out: Vec<Restriction> = self
            .vars
            .iter()
            .map(|_| Restriction {
                ids: None,
                path: AccessPath::Scan,
                stats: String::new(),
            })
            .collect();
        let Some(qual) = qual else { return out };
        let mut conjuncts = Vec::new();
        collect_conjuncts(qual, &mut conjuncts);
        // Pass 1: equality probes, cost-ordered by the stored statistics.
        // `live / distinct` (live tuple count over attribute cardinality,
        // both maintained incrementally in [`AccessStats`]) estimates how
        // many rows an equality probe returns; probing the most selective
        // index first means the winning EXPLAIN label and the first
        // domain restriction are the statistics-informed choice. The
        // estimate is annotated so EXPLAIN shows what informed it.
        struct EqProbe<'e> {
            var: usize,
            ty: TypeId,
            attr_idx: usize,
            attr: &'e String,
            value: &'e Value,
            live: u64,
            distinct: u64,
            est: u64,
        }
        let mut eqs: Vec<EqProbe> = Vec::new();
        for c in &conjuncts {
            let Expr::Bin {
                op: BinOp::Eq,
                lhs,
                rhs,
            } = c
            else {
                continue;
            };
            let (var, attr, value) = match (&**lhs, &**rhs) {
                (Expr::Attr { var, attr }, Expr::Const(v))
                | (Expr::Const(v), Expr::Attr { var, attr }) => (var, attr, v),
                _ => continue,
            };
            let Some((i, ty, attr_idx)) = self.sargable(db, var, attr) else {
                continue;
            };
            let live = db.stats().table(ty).live;
            let distinct = db.attr_index_distinct(ty, attr_idx).unwrap_or(0) as u64;
            // An unindexed or empty attribute estimates as the whole
            // table; otherwise expected hits per key, floored at 1.
            let est = live.checked_div(distinct).map_or(live, |q| q.max(1));
            eqs.push(EqProbe {
                var: i,
                ty,
                attr_idx,
                attr,
                value,
                live,
                distinct,
                est,
            });
        }
        eqs.sort_by_key(|p| p.est);
        for p in eqs {
            if let Some(hits) = db.attr_index_get(p.ty, p.attr_idx, p.value) {
                out[p.var].restrict(hits.to_vec(), AccessPath::IndexEq(p.attr.clone()));
                if out[p.var].stats.is_empty() {
                    out[p.var].stats =
                        format!("live={} distinct={} est={}", p.live, p.distinct, p.est);
                }
            }
        }
        // Pass 2: range probes.
        for c in &conjuncts {
            let Expr::Bin { op, lhs, rhs } = c else {
                continue;
            };
            // Normalize to `attr OP const`; flipping the operands flips
            // the comparison.
            let (var, attr, value, op) = match (&**lhs, &**rhs) {
                (Expr::Attr { var, attr }, Expr::Const(v)) => (var, attr, v, *op),
                (Expr::Const(v), Expr::Attr { var, attr }) => (
                    var,
                    attr,
                    v,
                    match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        other => *other,
                    },
                ),
                _ => continue,
            };
            let (lo, hi) = match op {
                BinOp::Lt => (Bound::Unbounded, Bound::Excluded(value)),
                BinOp::Le => (Bound::Unbounded, Bound::Included(value)),
                BinOp::Gt => (Bound::Excluded(value), Bound::Unbounded),
                BinOp::Ge => (Bound::Included(value), Bound::Unbounded),
                _ => continue,
            };
            let Some((i, ty, attr_idx)) = self.sargable(db, var, attr) else {
                continue;
            };
            if let Some(hits) = db.attr_index_range(ty, attr_idx, lo, hi) {
                let matched = hits.len();
                out[i].restrict(hits, AccessPath::IndexRange(attr.clone()));
                if out[i].stats.is_empty() {
                    let live = db.stats().table(ty).live;
                    out[i].stats = format!("live={live} matched={matched}");
                }
            }
        }
        // Pass 3: ordering-derived domains, to a fixpoint.
        let mut passes = 0;
        loop {
            passes += 1;
            let mut changed = false;
            for c in &conjuncts {
                let Expr::Ord {
                    op,
                    lhs,
                    rhs,
                    ordering,
                } = c
                else {
                    continue;
                };
                let (Ok(li), Ok(ri)) = (self.index_of(lhs), self.index_of(rhs)) else {
                    continue;
                };
                let (RangeTarget::Entity(lty), RangeTarget::Entity(rty)) =
                    (self.targets[li], self.targets[ri])
                else {
                    continue;
                };
                // Mirror eval's resolution; on error the clause stays a
                // per-binding evaluation (which will surface the error).
                let Ok(o) = db
                    .schema()
                    .resolve_ordering(ordering.as_deref(), lty, Some(rty))
                else {
                    continue;
                };
                let store = db.store();
                let schema = db.schema();
                // A variable is pinned when its planned domain holds
                // exactly one instance.
                let pin = |i: usize, out: &[Restriction]| -> Option<u64> {
                    match &out[i].ids {
                        Some(ids) if ids.len() == 1 => Some(ids[0]),
                        Some(_) => None,
                        None => {
                            let RangeTarget::Entity(ty) = self.targets[i] else {
                                return None;
                            };
                            let inst = store.instances_of(ty);
                            (inst.len() == 1).then(|| inst[0])
                        }
                    }
                };
                // Siblings strictly before / after `e` under its parent.
                let sibs_split = |e: u64| -> Option<(Vec<u64>, Vec<u64>)> {
                    let parent = store.ordering_parent(schema, o, e).ok()?;
                    let sibs = store.ordering_children(o, parent);
                    let pos = sibs.iter().position(|&x| x == e)?;
                    Some((sibs[..pos].to_vec(), sibs[pos + 1..].to_vec()))
                };
                match op {
                    OrdOp::Under => {
                        // `a under p`: p pinned → a ranges over p's
                        // children; a pinned → p is a's parent (or no
                        // parent → empty domain, the clause is false).
                        if let Some(p) = pin(ri, &out) {
                            let kids = store.ordering_children(o, Some(p)).to_vec();
                            changed |= out[li].restrict(kids, AccessPath::OrdDerived("under"));
                        }
                        if let Some(a) = pin(li, &out) {
                            let parent = match store.ordering_parent(schema, o, a) {
                                Ok(Some(p)) => vec![p],
                                _ => Vec::new(),
                            };
                            changed |= out[ri].restrict(parent, AccessPath::OrdDerived("under"));
                        }
                    }
                    OrdOp::Before | OrdOp::After => {
                        let lab = if matches!(op, OrdOp::Before) {
                            "before"
                        } else {
                            "after"
                        };
                        if let Some(b) = pin(ri, &out) {
                            let dom = match sibs_split(b) {
                                Some((pre, post)) => {
                                    if matches!(op, OrdOp::Before) {
                                        pre
                                    } else {
                                        post
                                    }
                                }
                                None => Vec::new(),
                            };
                            changed |= out[li].restrict(dom, AccessPath::OrdDerived(lab));
                        }
                        if let Some(a) = pin(li, &out) {
                            let dom = match sibs_split(a) {
                                Some((pre, post)) => {
                                    if matches!(op, OrdOp::Before) {
                                        post
                                    } else {
                                        pre
                                    }
                                }
                                None => Vec::new(),
                            };
                            changed |= out[ri].restrict(dom, AccessPath::OrdDerived(lab));
                        }
                    }
                }
            }
            if !changed || passes > self.vars.len() {
                break;
            }
        }
        // Canonicalize: every restricted domain in `instances_of` order.
        for (i, r) in out.iter_mut().enumerate() {
            let Some(ids) = &r.ids else { continue };
            let RangeTarget::Entity(ty) = self.targets[i] else {
                continue;
            };
            let keep: HashSet<u64> = ids.iter().copied().collect();
            r.ids = Some(
                db.store()
                    .instances_of(ty)
                    .iter()
                    .copied()
                    .filter(|id| keep.contains(id))
                    .collect(),
            );
        }
        out
    }

    /// Builds the EXPLAIN record for an executed plan.
    fn explain(
        &self,
        db: &Database,
        restrictions: &[Restriction],
        actual_rows: usize,
    ) -> PlanExplain {
        let mut estimated_rows: u64 = 1;
        let vars = self
            .vars
            .iter()
            .zip(&self.targets)
            .zip(restrictions)
            .zip(&self.virt)
            .map(|(((var, target), r), virt)| {
                let (tname, population) = match target {
                    RangeTarget::Entity(ty) => (
                        db.schema()
                            .entity_type(*ty)
                            .map_or_else(|_| format!("#{ty}"), |d| d.name.clone()),
                        db.store().instances_of(*ty).len(),
                    ),
                    RangeTarget::Relationship(rid) => (
                        db.schema()
                            .relationship(*rid)
                            .map_or_else(|_| format!("#{rid}"), |d| d.name.clone()),
                        db.store().relationships_of(*rid).len(),
                    ),
                    RangeTarget::Virtual(ve) => (
                        ve.name().to_string(),
                        virt.as_ref().map_or(0, |v| v.rows.len()),
                    ),
                };
                let estimated = r.ids.as_ref().map_or(population, Vec::len);
                estimated_rows = estimated_rows.saturating_mul(estimated as u64);
                VarPlan {
                    var: var.clone(),
                    target: tname,
                    path: r.path.label(),
                    estimated,
                    stats: r.stats.clone(),
                }
            })
            .collect();
        PlanExplain {
            vars,
            estimated_rows,
            actual_rows: actual_rows as u64,
            rows_scanned: self.scanned.get(),
        }
    }

    /// Marks variable `i`'s tuple as fetched for the current binding;
    /// the first fetch per binding counts toward `rows_scanned`.
    fn note_fetch(&self, i: usize) {
        let mut fetched = self.fetched.borrow_mut();
        if let Some(flag) = fetched.get_mut(i) {
            if !*flag {
                *flag = true;
                self.scanned.set(self.scanned.get() + 1);
            }
        }
    }

    fn reset_fetched(&self) {
        for flag in self.fetched.borrow_mut().iter_mut() {
            *flag = false;
        }
    }

    /// Enumerates the cross product of all variables' domains (restricted
    /// where the planner found an access path), invoking `f` with an id
    /// per variable (entity id or relationship instance id). Flushes the
    /// tuples fetched during the enumeration to the metrics and trace.
    fn for_each_binding(
        &self,
        db: &Database,
        restrictions: &[Restriction],
        f: impl FnMut(&Database, &[u64]) -> Result<()>,
    ) -> Result<()> {
        self.note_paths(restrictions);
        let before = self.scanned.get();
        let result = self.enumerate_bindings(db, restrictions, f);
        let scanned = self.scanned.get() - before;
        if let Some(m) = &self.metrics {
            m.rows_scanned.add(scanned);
        }
        self.accum.note_scanned(scanned);
        trace::annotate("rows_scanned", scanned);
        result
    }

    /// Credits each variable's chosen access path to the per-statement
    /// accumulator and the `mdm_quel_plan_total{path}` counters.
    fn note_paths(&self, restrictions: &[Restriction]) {
        let mut mix = PathMix::default();
        for r in restrictions {
            match &r.path {
                AccessPath::Scan => mix.scan += 1,
                AccessPath::IndexEq(_) => mix.index_eq += 1,
                AccessPath::IndexRange(_) => mix.index_range += 1,
                AccessPath::OrdDerived(_) => mix.ord += 1,
            }
        }
        self.accum.note_paths(&mix);
        if let Some(m) = &self.metrics {
            m.plan_scan.add(mix.scan);
            m.plan_index_eq.add(mix.index_eq);
            m.plan_index_range.add(mix.index_range);
            m.plan_ord.add(mix.ord);
        }
    }

    fn enumerate_bindings(
        &self,
        db: &Database,
        restrictions: &[Restriction],
        mut f: impl FnMut(&Database, &[u64]) -> Result<()>,
    ) -> Result<()> {
        let domains: Vec<Vec<u64>> = self
            .targets
            .iter()
            .enumerate()
            .map(
                |(i, t)| match restrictions.get(i).and_then(|r| r.ids.as_ref()) {
                    Some(r) => r.clone(),
                    None => match t {
                        RangeTarget::Entity(ty) => db.store().instances_of(*ty).to_vec(),
                        RangeTarget::Relationship(r) => db.store().relationships_of(*r).to_vec(),
                        // Virtual bindings are row indexes into the
                        // materialized table.
                        RangeTarget::Virtual(_) => {
                            let n = self.virt[i].as_ref().map_or(0, |v| v.rows.len());
                            (0..n as u64).collect()
                        }
                    },
                },
            )
            .collect();
        if domains.is_empty() {
            self.reset_fetched();
            return f(db, &[]);
        }
        if domains.iter().any(Vec::is_empty) {
            return Ok(());
        }
        let mut odometer = vec![0usize; domains.len()];
        let mut binding = vec![0u64; domains.len()];
        loop {
            for (i, &d) in odometer.iter().enumerate() {
                binding[i] = domains[i][d];
            }
            self.reset_fetched();
            f(db, &binding)?;
            // Advance.
            let mut i = domains.len();
            loop {
                if i == 0 {
                    return Ok(());
                }
                i -= 1;
                odometer[i] += 1;
                if odometer[i] < domains[i].len() {
                    break;
                }
                odometer[i] = 0;
            }
        }
    }
}

/// One ordering clause worth a span: `(span name, lhs, rhs, ordering)`.
type OrdClause = (&'static str, String, String, String);

/// Collects the qualification's ordering-operator conjuncts for span
/// emission. Empty when no trace is being recorded on this thread, so
/// untraced queries pay nothing.
fn ord_clause_spans(qual: Option<&Expr>) -> Vec<OrdClause> {
    let Some(q) = qual else { return Vec::new() };
    if !trace::is_active() {
        return Vec::new();
    }
    let mut conjuncts = Vec::new();
    collect_conjuncts(q, &mut conjuncts);
    conjuncts
        .iter()
        .filter_map(|c| match c {
            Expr::Ord {
                op,
                lhs,
                rhs,
                ordering,
            } => Some((
                match op {
                    OrdOp::Before => "quel.ord.before",
                    OrdOp::After => "quel.ord.after",
                    OrdOp::Under => "quel.ord.under",
                },
                lhs.clone(),
                rhs.clone(),
                ordering.clone().unwrap_or_else(|| "(inferred)".into()),
            )),
            _ => None,
        })
        .collect()
}

/// Emits one retroactive child span per ordering clause, all covering
/// the scan interval that evaluated them.
fn emit_ord_spans(clauses: &[OrdClause], started: Option<Instant>) {
    let Some(started) = started else { return };
    for (name, lhs, rhs, ordering) in clauses {
        trace::child_since(
            name,
            started,
            &[("lhs", lhs), ("rhs", rhs), ("ordering", ordering)],
        );
    }
}

/// Statement kind label for span annotations.
fn stmt_kind(s: &Stmt) -> &'static str {
    match s {
        Stmt::DefineEntity { .. } => "define entity",
        Stmt::DefineRelationship { .. } => "define relationship",
        Stmt::DefineOrdering { .. } => "define ordering",
        Stmt::DefineIndex { .. } => "define index",
        Stmt::DestroyIndex { .. } => "destroy index",
        Stmt::RangeOf { .. } => "range of",
        Stmt::Retrieve { .. } => "retrieve",
        Stmt::AppendTo { .. } => "append",
        Stmt::Replace { .. } => "replace",
        Stmt::Delete { .. } => "delete",
    }
}

fn resolve_target(db: &Database, name: &str) -> Result<RangeTarget> {
    if let Some(ve) = VirtualEntity::from_name(name) {
        return Ok(RangeTarget::Virtual(ve));
    }
    if name.starts_with('$') {
        return Err(LangError::Analyze(format!(
            "unknown system entity {name} \
             (expected $statements, $tables, $indexes, $locks, $metrics, or $alerts)"
        )));
    }
    if let Ok(t) = db.schema().entity_type_id(name) {
        return Ok(RangeTarget::Entity(t));
    }
    if let Ok(r) = db.schema().relationship_id(name) {
        return Ok(RangeTarget::Relationship(r));
    }
    Err(LangError::Analyze(format!(
        "{name} names no entity type or relationship"
    )))
}

fn parse_scalar_type(name: &str) -> Result<mdm_model::DataType> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "integer" | "int" => mdm_model::DataType::Integer,
        "float" | "real" => mdm_model::DataType::Float,
        "string" | "text" => mdm_model::DataType::String,
        "boolean" | "bool" => mdm_model::DataType::Boolean,
        "bytes" | "blob" => mdm_model::DataType::Bytes,
        other => return Err(LangError::Analyze(format!("unknown type {other}"))),
    })
}

fn parse_type(db: &Database, name: &str) -> Result<mdm_model::DataType> {
    if let Ok(t) = db.schema().entity_type_id(name) {
        return Ok(mdm_model::DataType::Entity(t));
    }
    parse_scalar_type(name)
}

/// One aggregate accumulator.
#[derive(Default)]
struct Acc {
    /// Non-null values seen.
    count: u64,
    sum: f64,
    all_integer: bool,
    started: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn add(&mut self, v: &Value) -> Result<()> {
        if matches!(v, Value::Null) {
            return Ok(());
        }
        self.count += 1;
        if !self.started {
            self.all_integer = true;
            self.started = true;
        }
        if let Some(x) = v.as_float() {
            self.sum += x;
            if !matches!(v, Value::Integer(_)) {
                self.all_integer = false;
            }
        } else {
            self.all_integer = false;
        }
        let better_min = self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt());
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt());
        if better_max {
            self.max = Some(v.clone());
        }
        Ok(())
    }

    fn finish(&self, func: crate::ast::AggFunc) -> Value {
        use crate::ast::AggFunc::*;
        match func {
            Count => Value::Integer(self.count as i64),
            Sum => {
                if self.count == 0 {
                    Value::Integer(0)
                } else if self.all_integer {
                    Value::Integer(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Min => self.min.clone().unwrap_or(Value::Null),
            Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// GROUP-BY retrieve: plain targets are grouping keys, aggregate targets
/// accumulate per group. Groups emit in first-seen order.
fn retrieve_grouped(
    db: &Database,
    plan: &Plan,
    restrictions: &[Restriction],
    columns: Vec<String>,
    targets: &[Target],
    qual: Option<&Expr>,
) -> Result<Table> {
    for t in targets {
        if let Expr::Agg { arg, .. } = &t.expr {
            if contains_agg(arg) {
                return Err(LangError::Analyze(
                    "nested aggregates are not supported".into(),
                ));
            }
        }
    }
    if qual.is_some_and(contains_agg) {
        return Err(LangError::Analyze(
            "aggregates are not allowed in qualifications".into(),
        ));
    }
    let mut order: Vec<Vec<u8>> = Vec::new();
    let mut groups: HashMap<Vec<u8>, (Vec<Value>, Vec<Acc>)> = HashMap::new();
    let n_aggs = targets
        .iter()
        .filter(|t| matches!(t.expr, Expr::Agg { .. }))
        .count();
    plan.for_each_binding(db, restrictions, |db, binding| {
        if let Some(q) = qual {
            if !eval_bool(db, plan, binding, q)? {
                return Ok(());
            }
        }
        // Key = the plain targets' values.
        let mut key_vals = Vec::new();
        let mut key = Vec::new();
        for t in targets {
            if !matches!(t.expr, Expr::Agg { .. }) {
                let v = eval(db, plan, binding, &t.expr)?;
                encode_value(&mut key, &v);
                key_vals.push(v);
            }
        }
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            (key_vals, (0..n_aggs).map(|_| Acc::default()).collect())
        });
        let mut agg_idx = 0;
        for t in targets {
            if let Expr::Agg { arg, .. } = &t.expr {
                let v = eval(db, plan, binding, arg)?;
                entry.1[agg_idx].add(&v)?;
                agg_idx += 1;
            }
        }
        Ok(())
    })?;
    // Pure aggregates over an empty input still yield one row.
    if groups.is_empty() && n_aggs == targets.len() {
        order.push(Vec::new());
        groups.insert(
            Vec::new(),
            (Vec::new(), (0..n_aggs).map(|_| Acc::default()).collect()),
        );
    }
    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let (key_vals, accs) = &groups[&key];
        let mut row = Vec::with_capacity(targets.len());
        let mut ki = 0;
        let mut ai = 0;
        for t in targets {
            match &t.expr {
                Expr::Agg { func, .. } => {
                    row.push(accs[ai].finish(*func));
                    ai += 1;
                }
                _ => {
                    row.push(key_vals[ki].clone());
                    ki += 1;
                }
            }
        }
        rows.push(row);
    }
    Ok(Table { columns, rows })
}

/// Applies a `sort by` clause: keys name output columns, compared with
/// [`Value::total_cmp`]; a stable sort keeps prior order among ties.
fn sort_table(table: &mut Table, sort: &[(String, bool)]) -> Result<()> {
    if sort.is_empty() {
        return Ok(());
    }
    let keys: Vec<(usize, bool)> = sort
        .iter()
        .map(|(col, asc)| {
            table
                .columns
                .iter()
                .position(|c| c == col)
                .map(|i| (i, *asc))
                .ok_or_else(|| LangError::Analyze(format!("sort by names no output column: {col}")))
        })
        .collect::<Result<Vec<_>>>()?;
    table.rows.sort_by(|a, b| {
        for &(i, asc) in &keys {
            let ord = a[i].total_cmp(&b[i]);
            if !ord.is_eq() {
                return if asc { ord } else { ord.reverse() };
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Splits an AND tree into its conjuncts.
fn collect_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Bin {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_conjuncts(lhs, out);
            collect_conjuncts(rhs, out);
        }
        other => out.push(other),
    }
}

fn contains_agg(e: &Expr) -> bool {
    match e {
        Expr::Agg { .. } => true,
        Expr::Const(_) | Expr::Var(_) | Expr::Attr { .. } | Expr::Ord { .. } => false,
        Expr::Bin { lhs, rhs, .. } | Expr::Is { lhs, rhs } => {
            contains_agg(lhs) || contains_agg(rhs)
        }
        Expr::Not(x) | Expr::Neg(x) => contains_agg(x),
    }
}

fn collect_vars(e: &Expr, out: &mut Vec<String>, seen: &mut HashSet<String>) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(v) => {
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        Expr::Attr { var, .. } => {
            if seen.insert(var.clone()) {
                out.push(var.clone());
            }
        }
        Expr::Bin { lhs, rhs, .. } | Expr::Is { lhs, rhs } => {
            collect_vars(lhs, out, seen);
            collect_vars(rhs, out, seen);
        }
        Expr::Not(x) | Expr::Neg(x) | Expr::Agg { arg: x, .. } => collect_vars(x, out, seen),
        Expr::Ord { lhs, rhs, .. } => {
            for v in [lhs, rhs] {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
    }
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Attr { var, attr } => format!("{var}.{attr}"),
        Expr::Agg { func, arg } => format!("{}({})", func.name(), expr_label(arg)),
        Expr::Bin { .. } | Expr::Not(_) | Expr::Neg(_) | Expr::Is { .. } | Expr::Ord { .. } => {
            "expr".to_string()
        }
    }
}

fn eval_bool(db: &Database, plan: &Plan, binding: &[u64], e: &Expr) -> Result<bool> {
    match eval(db, plan, binding, e)? {
        Value::Boolean(b) => Ok(b),
        other => Err(LangError::Eval(format!(
            "qualification evaluated to {other}, expected a boolean"
        ))),
    }
}

fn eval(db: &Database, plan: &Plan, binding: &[u64], e: &Expr) -> Result<Value> {
    match e {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(v) => {
            let i = plan.index_of(v)?;
            match plan.targets[i] {
                RangeTarget::Entity(_) => Ok(Value::Entity(binding[i])),
                RangeTarget::Relationship(_) => Err(LangError::Eval(format!(
                    "relationship variable {v} has no value; project a member instead"
                ))),
                RangeTarget::Virtual(_) => Err(LangError::Eval(format!(
                    "system entity variable {v} has no value; project an attribute instead"
                ))),
            }
        }
        Expr::Attr { var, attr } => {
            let i = plan.index_of(var)?;
            plan.note_fetch(i);
            match plan.targets[i] {
                RangeTarget::Entity(_) => Ok(db.get_attr(binding[i], attr)?.clone()),
                RangeTarget::Relationship(r) => {
                    let def = db.schema().relationship(r)?;
                    let inst = db.store().relationship(binding[i])?;
                    if let Some(ri) = def.role_index(attr) {
                        Ok(Value::Entity(inst.entities[ri]))
                    } else if let Some(ai) = def.attribute_index(attr) {
                        Ok(inst.attrs[ai].clone())
                    } else {
                        Err(LangError::Analyze(format!(
                            "relationship {} has no member {attr}",
                            def.name
                        )))
                    }
                }
                RangeTarget::Virtual(ve) => {
                    let vt = plan.virt[i].as_ref().ok_or_else(|| {
                        LangError::Eval(format!("{} was not materialized", ve.name()))
                    })?;
                    let col = vt.columns.iter().position(|c| c == attr).ok_or_else(|| {
                        LangError::Analyze(format!(
                            "{} has no attribute {attr} (has: {})",
                            ve.name(),
                            vt.columns.join(", ")
                        ))
                    })?;
                    vt.rows
                        .get(binding[i] as usize)
                        .map(|r| r[col].clone())
                        .ok_or_else(|| LangError::Eval(format!("{} row out of range", ve.name())))
                }
            }
        }
        Expr::Neg(x) => match eval(db, plan, binding, x)? {
            Value::Integer(i) => Ok(Value::Integer(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(LangError::Eval(format!("cannot negate {other}"))),
        },
        Expr::Not(x) => match eval(db, plan, binding, x)? {
            Value::Boolean(b) => Ok(Value::Boolean(!b)),
            other => Err(LangError::Eval(format!("cannot apply not to {other}"))),
        },
        Expr::Is { lhs, rhs } => {
            let l = eval(db, plan, binding, lhs)?;
            let r = eval(db, plan, binding, rhs)?;
            match (l, r) {
                (Value::Entity(a), Value::Entity(b)) => Ok(Value::Boolean(a == b)),
                (l, r) => Err(LangError::Eval(format!(
                    "is compares entities, found {l} and {r}"
                ))),
            }
        }
        Expr::Agg { func, .. } => Err(LangError::Analyze(format!(
            "{} is only allowed as a retrieve target",
            func.name()
        ))),
        Expr::Ord {
            op,
            lhs,
            rhs,
            ordering,
        } => {
            if let Some(m) = &plan.metrics {
                match op {
                    OrdOp::Before => m.ord_before.inc(),
                    OrdOp::After => m.ord_after.inc(),
                    OrdOp::Under => m.ord_under.inc(),
                }
            }
            let li = plan.index_of(lhs)?;
            let ri = plan.index_of(rhs)?;
            let (RangeTarget::Entity(lty), RangeTarget::Entity(rty)) =
                (plan.targets[li], plan.targets[ri])
            else {
                return Err(LangError::Eval(
                    "ordering operators take entity variables".into(),
                ));
            };
            let (child_ty, other_ty) = match op {
                OrdOp::Under => (lty, rty),
                OrdOp::Before | OrdOp::After => (lty, rty),
            };
            let o = db
                .schema()
                .resolve_ordering(ordering.as_deref(), child_ty, Some(other_ty))?;
            let a = binding[li];
            let b = binding[ri];
            let result = match op {
                OrdOp::Before => db.store().before(o, a, b),
                OrdOp::After => db.store().after(o, a, b),
                OrdOp::Under => db.store().under(o, a, b),
            };
            Ok(Value::Boolean(result))
        }
        Expr::Bin { op, lhs, rhs } => {
            // Short-circuit booleans.
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = eval_bool(db, plan, binding, lhs)?;
                return match (op, l) {
                    (BinOp::And, false) => Ok(Value::Boolean(false)),
                    (BinOp::Or, true) => Ok(Value::Boolean(true)),
                    _ => Ok(Value::Boolean(eval_bool(db, plan, binding, rhs)?)),
                };
            }
            let l = eval(db, plan, binding, lhs)?;
            let r = eval(db, plan, binding, rhs)?;
            match op {
                BinOp::Eq => Ok(Value::Boolean(l.total_cmp(&r).is_eq())),
                BinOp::Ne => Ok(Value::Boolean(!l.total_cmp(&r).is_eq())),
                BinOp::Lt => Ok(Value::Boolean(l.total_cmp(&r).is_lt())),
                BinOp::Le => Ok(Value::Boolean(l.total_cmp(&r).is_le())),
                BinOp::Gt => Ok(Value::Boolean(l.total_cmp(&r).is_gt())),
                BinOp::Ge => Ok(Value::Boolean(l.total_cmp(&r).is_ge())),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, l, r),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if let (BinOp::Add, Value::String(a), Value::String(b)) = (op, &l, &r) {
        return Ok(Value::String(format!("{a}{b}")));
    }
    match (l, r) {
        (Value::Integer(a), Value::Integer(b)) => Ok(match op {
            BinOp::Add => Value::Integer(a.wrapping_add(b)),
            BinOp::Sub => Value::Integer(a.wrapping_sub(b)),
            BinOp::Mul => Value::Integer(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    return Err(LangError::Eval("division by zero".into()));
                }
                Value::Integer(a / b)
            }
            _ => unreachable!(),
        }),
        (l, r) => {
            let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
                return Err(LangError::Eval(format!("cannot compute {l} {op:?} {r}")));
            };
            Ok(Value::Float(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => unreachable!(),
            }))
        }
    }
}
