//! Tokenizer for the DDL and QUEL.
//!
//! Keywords are case-insensitive (`RETRIEVE` ≡ `retrieve`); identifiers
//! are case-sensitive, matching the paper's convention of upper-case
//! entity names and lower-case keywords.

use crate::error::{LangError, Result};

/// One token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (stored lower-case).
    Keyword(Keyword),
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes processed).
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Define,
    Under,
    Range,
    Of,
    Is,
    Retrieve,
    Unique,
    Where,
    Append,
    To,
    Replace,
    Delete,
    Before,
    After,
    In,
    And,
    Or,
    Not,
    True,
    False,
    Null,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_lowercase().as_str() {
            "define" => Keyword::Define,
            "under" => Keyword::Under,
            "range" => Keyword::Range,
            "of" => Keyword::Of,
            "is" => Keyword::Is,
            "retrieve" => Keyword::Retrieve,
            "unique" => Keyword::Unique,
            "where" => Keyword::Where,
            "append" => Keyword::Append,
            "to" => Keyword::To,
            "replace" => Keyword::Replace,
            "delete" => Keyword::Delete,
            "before" => Keyword::Before,
            "after" => Keyword::After,
            "in" => Keyword::In,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "null" => Keyword::Null,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
}

/// Tokenizes `input`. Comments run from `--` or `#` to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::LParen),
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::RParen),
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Comma),
                    line,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Dot),
                    line,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Eq),
                    line,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Plus),
                    line,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Minus),
                    line,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Star),
                    line,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Slash),
                    line,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Ne),
                    line,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Le),
                        line,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Ne),
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Lt),
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Ge),
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Gt),
                        line,
                    });
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LangError::Lex {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).copied().ok_or(LangError::Lex {
                                line,
                                message: "dangling escape".into(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => other as char,
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            if b == b'\n' {
                                line += 1;
                            }
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LangError::Lex {
                        line,
                        message: format!("bad float literal {text}"),
                    })?)
                } else {
                    TokenKind::Integer(text.parse().map_err(|_| LangError::Lex {
                        line,
                        message: format!("bad integer literal {text}"),
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            '$' => {
                // System entity names ($statements, $tables, …): a `$`
                // followed by an ordinary identifier, kept as one Ident
                // so the executor can recognize the prefix.
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match Keyword::from_str(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, line });
            }
            other => {
                return Err(LangError::Lex {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("RETRIEVE retrieve Retrieve"),
            vec![
                TokenKind::Keyword(Keyword::Retrieve),
                TokenKind::Keyword(Keyword::Retrieve),
                TokenKind::Keyword(Keyword::Retrieve),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            kinds("COMPOSITION title"),
            vec![
                TokenKind::Ident("COMPOSITION".into()),
                TokenKind::Ident("title".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds(r#"42 2.5 "Fuge g-moll" "with \"quote\"""#),
            vec![
                TokenKind::Integer(42),
                TokenKind::Float(2.5),
                TokenKind::Str("Fuge g-moll".into()),
                TokenKind::Str("with \"quote\"".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >= + - * / ( ) , ."),
            vec![
                TokenKind::Sym(Sym::Eq),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Lt),
                TokenKind::Sym(Sym::Le),
                TokenKind::Sym(Sym::Gt),
                TokenKind::Sym(Sym::Ge),
                TokenKind::Sym(Sym::Plus),
                TokenKind::Sym(Sym::Minus),
                TokenKind::Sym(Sym::Star),
                TokenKind::Sym(Sym::Slash),
                TokenKind::Sym(Sym::LParen),
                TokenKind::Sym(Sym::RParen),
                TokenKind::Sym(Sym::Comma),
                TokenKind::Sym(Sym::Dot),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn system_entity_names_lex_as_idents() {
        assert_eq!(
            kinds("$statements $tables s.$x"),
            vec![
                TokenKind::Ident("$statements".into()),
                TokenKind::Ident("$tables".into()),
                TokenKind::Ident("s".into()),
                TokenKind::Sym(Sym::Dot),
                TokenKind::Ident("$x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment\nb # another\nc"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"oops"), Err(LangError::Lex { .. })));
    }
}
