//! Error type for the query language layer.

use std::fmt;

use mdm_model::ModelError;

/// Errors from lexing, parsing, analysis, or execution.
#[derive(Debug)]
pub enum LangError {
    /// Lexical error with position.
    Lex { line: usize, message: String },
    /// Syntax error with position.
    Parse { line: usize, message: String },
    /// Semantic error (unknown names, type errors).
    Analyze(String),
    /// Runtime evaluation error.
    Eval(String),
    /// Error surfaced from the data model.
    Model(ModelError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            LangError::Parse { line, message } => {
                write!(f, "syntax error (line {line}): {message}")
            }
            LangError::Analyze(m) => write!(f, "semantic error: {m}"),
            LangError::Eval(m) => write!(f, "evaluation error: {m}"),
            LangError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for LangError {
    fn from(e: ModelError) -> Self {
        LangError::Model(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LangError>;
