//! Statement fingerprinting: normalizes a QUEL program so executions
//! that differ only in their literals aggregate under one entry in the
//! statement store (the pg_stat_statements idea).
//!
//! The normal form is the token stream with every literal replaced by
//! `?`, keywords lowercased, and whitespace/comments collapsed to
//! single spaces — so `retrieve (p.name) where p.name = "Bach"` and
//! `RETRIEVE (p.name) WHERE p.name = "Telemann"` share a fingerprint.
//! Programs that do not lex (the store also sees failed statements'
//! text upstream of parsing) fall back to the raw text with whitespace
//! collapsed. Either way the result is bounded: anything longer than
//! [`MAX_FINGERPRINT_CHARS`] is truncated with a hash suffix so hostile
//! input cannot bloat the store, and nothing in here can panic.

use std::hash::{Hash, Hasher};

use crate::lexer::{lex, Sym, TokenKind};

/// Upper bound on fingerprint length, in characters.
pub const MAX_FINGERPRINT_CHARS: usize = 512;

/// Computes the normalized fingerprint of a QUEL program.
pub fn fingerprint(text: &str) -> String {
    let normalized = match lex(text) {
        Ok(tokens) => {
            let mut parts: Vec<String> = Vec::with_capacity(tokens.len());
            for t in tokens {
                let part = match t.kind {
                    TokenKind::Integer(_) | TokenKind::Float(_) | TokenKind::Str(_) => "?".into(),
                    TokenKind::Keyword(k) => format!("{k:?}").to_ascii_lowercase(),
                    TokenKind::Ident(name) => name,
                    TokenKind::Sym(s) => sym_text(s).into(),
                    TokenKind::Eof => continue,
                };
                parts.push(part);
            }
            parts.join(" ")
        }
        // Not lexable (bad escape, stray byte, non-ASCII): fall back to
        // the raw text, whitespace-collapsed, so the entry still groups
        // repeated submissions of the same broken program.
        Err(_) => text.split_whitespace().collect::<Vec<_>>().join(" "),
    };
    bound(normalized)
}

/// Truncates over-long normal forms, appending a hash *of the normal
/// form* so distinct giants stay distinct while literal-only variants
/// of one giant still collapse.
fn bound(normalized: String) -> String {
    if normalized.chars().count() <= MAX_FINGERPRINT_CHARS {
        return normalized;
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    normalized.hash(&mut hasher);
    let prefix: String = normalized
        .chars()
        .take(MAX_FINGERPRINT_CHARS - 20)
        .collect();
    format!("{prefix}…#{:016x}", hasher.finish())
}

fn sym_text(s: Sym) -> &'static str {
    match s {
        Sym::LParen => "(",
        Sym::RParen => ")",
        Sym::Comma => ",",
        Sym::Dot => ".",
        Sym::Eq => "=",
        Sym::Ne => "!=",
        Sym::Lt => "<",
        Sym::Le => "<=",
        Sym::Gt => ">",
        Sym::Ge => ">=",
        Sym::Plus => "+",
        Sym::Minus => "-",
        Sym::Star => "*",
        Sym::Slash => "/",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_collapse_to_one_fingerprint() {
        let a = fingerprint("range of p is PERSON\nretrieve (p.name) where p.name = \"Bach\"");
        let b = fingerprint("range of p is PERSON retrieve (p.name) where p.name = \"Telemann\"");
        assert_eq!(a, b);
        assert_eq!(
            a,
            "range of p is PERSON retrieve ( p . name ) where p . name = ?"
        );
        assert_eq!(
            fingerprint("retrieve (n.x) where n.x = 42"),
            fingerprint("retrieve (n.x) where n.x = 2.5"),
            "integer and float literals both normalize to ?"
        );
    }

    #[test]
    fn keywords_fold_case_identifiers_do_not() {
        assert_eq!(
            fingerprint("RETRIEVE (Person.name)"),
            "retrieve ( Person . name )"
        );
        assert_ne!(
            fingerprint("retrieve (PERSON.name)"),
            fingerprint("retrieve (person.name)")
        );
    }

    #[test]
    fn comments_and_whitespace_do_not_matter() {
        let a = fingerprint("retrieve (p.name) -- find them all\n");
        let b = fingerprint("  retrieve\t(p.name)");
        assert_eq!(a, b);
    }

    #[test]
    fn unlexable_input_falls_back_without_panicking() {
        // Non-ASCII outside strings is a lex error; unicode must not
        // panic the fingerprinter (byte-slicing would).
        let f = fingerprint("retrieve (p.ñame) 🎵 where");
        assert_eq!(f, "retrieve (p.ñame) 🎵 where");
        let g = fingerprint("\"unterminated");
        assert_eq!(g, "\"unterminated");
        assert_eq!(fingerprint(""), "");
    }

    #[test]
    fn hostile_lengths_are_bounded() {
        // A lexable monster program.
        let long = format!("retrieve ( {} )", "x , ".repeat(100_000));
        let f = fingerprint(&long);
        assert!(f.chars().count() <= MAX_FINGERPRINT_CHARS, "{}", f.len());
        // Distinct monsters keep distinct fingerprints via the hash tail.
        let long2 = format!("retrieve ( {} y )", "x , ".repeat(100_000));
        assert_ne!(f, fingerprint(&long2));
        // Same monster, different literals: still one entry.
        let with_lit = |v: i64| format!("retrieve ( {} {v} )", "x , ".repeat(100_000));
        assert_eq!(fingerprint(&with_lit(1)), fingerprint(&with_lit(2)));
        // An unlexable monster is bounded too, without slicing through
        // a multi-byte character.
        let evil = "é".repeat(100_000);
        assert!(fingerprint(&evil).chars().count() <= MAX_FINGERPRINT_CHARS);
    }
}
