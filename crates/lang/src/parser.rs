//! Recursive-descent parser for the DDL (§5.4) and QUEL (§5.6).

use crate::ast::{BinOp, Expr, OrdOp, Stmt, Target};
use crate::error::{LangError, Result};
use crate::lexer::{lex, Keyword, Sym, Token, TokenKind};
use mdm_model::Value;

/// Parses a program: a sequence of statements.
pub fn parse(input: &str) -> Result<Vec<Stmt>> {
    parse_tokens(lex(input)?)
}

/// Parses an already-lexed token stream. Splitting the phases lets an
/// instrumented caller time lexing and parsing separately.
pub fn parse_tokens(tokens: Vec<Token>) -> Result<Vec<Stmt>> {
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == &TokenKind::Sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Define) => self.define(),
            TokenKind::Keyword(Keyword::Range) => self.range_of(),
            TokenKind::Keyword(Keyword::Retrieve) => self.retrieve(),
            TokenKind::Keyword(Keyword::Append) => self.append(),
            TokenKind::Keyword(Keyword::Replace) => self.replace(),
            TokenKind::Keyword(Keyword::Delete) => self.delete(),
            // `destroy` is contextual: only `destroy index NAME` uses it,
            // so the word stays an ordinary identifier elsewhere.
            TokenKind::Ident(w) if w.eq_ignore_ascii_case("destroy") => self.destroy(),
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    // define entity NAME ( attr = type, … )
    // define relationship NAME ( member = type, … )
    // define ordering [name] ( CHILD, … ) [under PARENT]
    fn define(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Define)?;
        // `entity`, `relationship`, and `ordering` are contextual
        // keywords: the meta-schema (§6.1) names entity types ENTITY,
        // RELATIONSHIP, and ORDERING, so these words stay ordinary
        // identifiers everywhere except right after `define`.
        let kind = self.ident()?.to_ascii_lowercase();
        match kind.as_str() {
            "entity" => {
                let name = self.ident()?;
                let attrs = self.member_list()?;
                Ok(Stmt::DefineEntity { name, attrs })
            }
            "relationship" => {
                let name = self.ident()?;
                let members = self.member_list()?;
                Ok(Stmt::DefineRelationship { name, members })
            }
            "ordering" => {
                let name = match self.peek() {
                    TokenKind::Ident(_) => Some(self.ident()?),
                    _ => None,
                };
                self.expect_sym(Sym::LParen)?;
                let mut children = vec![self.ident()?];
                while self.eat_sym(Sym::Comma) {
                    children.push(self.ident()?);
                }
                self.expect_sym(Sym::RParen)?;
                let parent = if self.eat_kw(Keyword::Under) {
                    Some(self.ident()?)
                } else {
                    None
                };
                Ok(Stmt::DefineOrdering {
                    name,
                    children,
                    parent,
                })
            }
            "index" => {
                let name = self.ident()?;
                // `on` is contextual, like the definition kinds above.
                match self.peek().clone() {
                    TokenKind::Ident(w) if w.eq_ignore_ascii_case("on") => {
                        self.bump();
                    }
                    other => return Err(self.err(format!("expected on, found {other:?}"))),
                }
                let entity = self.ident()?;
                self.expect_sym(Sym::LParen)?;
                let attr = self.ident()?;
                self.expect_sym(Sym::RParen)?;
                Ok(Stmt::DefineIndex { name, entity, attr })
            }
            other => Err(self.err(format!(
                "expected entity, relationship, ordering, or index after define; found {other}"
            ))),
        }
    }

    // destroy index NAME
    fn destroy(&mut self) -> Result<Stmt> {
        self.bump(); // `destroy`
        let kind = self.ident()?.to_ascii_lowercase();
        if kind != "index" {
            return Err(self.err(format!("expected index after destroy; found {kind}")));
        }
        let name = self.ident()?;
        Ok(Stmt::DestroyIndex { name })
    }

    fn member_list(&mut self) -> Result<Vec<(String, String)>> {
        self.expect_sym(Sym::LParen)?;
        let mut members = Vec::new();
        if !self.eat_sym(Sym::RParen) {
            loop {
                let name = self.ident()?;
                self.expect_sym(Sym::Eq)?;
                let ty = self.ident()?;
                members.push((name, ty));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        Ok(members)
    }

    // range of v1, v2 is TYPE
    fn range_of(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Range)?;
        self.expect_kw(Keyword::Of)?;
        let mut vars = vec![self.ident()?];
        while self.eat_sym(Sym::Comma) {
            vars.push(self.ident()?);
        }
        self.expect_kw(Keyword::Is)?;
        let target = self.ident()?;
        Ok(Stmt::RangeOf { vars, target })
    }

    // retrieve [unique] ( target, … ) [where qual]
    fn retrieve(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Retrieve)?;
        let unique = self.eat_kw(Keyword::Unique);
        self.expect_sym(Sym::LParen)?;
        let mut targets = vec![self.target()?];
        while self.eat_sym(Sym::Comma) {
            targets.push(self.target()?);
        }
        self.expect_sym(Sym::RParen)?;
        let qual = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        // `sort by` is contextual (both words stay valid identifiers).
        let mut sort = Vec::new();
        if let (TokenKind::Ident(a), TokenKind::Ident(b)) = (self.peek(), self.peek2()) {
            if a.eq_ignore_ascii_case("sort") && b.eq_ignore_ascii_case("by") {
                self.bump();
                self.bump();
                loop {
                    let mut col = self.ident()?;
                    if self.eat_sym(Sym::Dot) {
                        let attr = self.ident()?;
                        col = format!("{col}.{attr}");
                    }
                    let ascending = match self.peek() {
                        TokenKind::Ident(d) if d.eq_ignore_ascii_case("asc") => {
                            self.bump();
                            true
                        }
                        TokenKind::Ident(d) if d.eq_ignore_ascii_case("desc") => {
                            self.bump();
                            false
                        }
                        _ => true,
                    };
                    sort.push((col, ascending));
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
            }
        }
        Ok(Stmt::Retrieve {
            unique,
            targets,
            qual,
            sort,
        })
    }

    fn target(&mut self) -> Result<Target> {
        // `label = expr` when an identifier is directly followed by `=`
        // and the thing after `=` is not itself the start of a comparison
        // continuation (labels bind tighter, as in QUEL).
        if let (TokenKind::Ident(label), TokenKind::Sym(Sym::Eq)) = (self.peek(), self.peek2()) {
            let label = label.clone();
            self.bump();
            self.bump();
            let expr = self.expr()?;
            return Ok(Target {
                label: Some(label),
                expr,
            });
        }
        Ok(Target {
            label: None,
            expr: self.expr()?,
        })
    }

    // append to TYPE ( attr = expr, … )
    fn append(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Append)?;
        self.expect_kw(Keyword::To)?;
        let entity = self.ident()?;
        let assignments = self.assignments()?;
        Ok(Stmt::AppendTo {
            entity,
            assignments,
        })
    }

    // replace VAR ( attr = expr, … ) [where qual]
    fn replace(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Replace)?;
        let var = self.ident()?;
        let assignments = self.assignments()?;
        let qual = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Replace {
            var,
            assignments,
            qual,
        })
    }

    // delete VAR [where qual]
    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Delete)?;
        let var = self.ident()?;
        let qual = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { var, qual })
    }

    fn assignments(&mut self) -> Result<Vec<(String, Expr)>> {
        self.expect_sym(Sym::LParen)?;
        let mut out = Vec::new();
        if !self.eat_sym(Sym::RParen) {
            loop {
                let name = self.ident()?;
                self.expect_sym(Sym::Eq)?;
                out.push((name, self.expr()?));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::Sym(Sym::Eq) => Some(BinOp::Eq),
            TokenKind::Sym(Sym::Ne) => Some(BinOp::Ne),
            TokenKind::Sym(Sym::Lt) => Some(BinOp::Lt),
            TokenKind::Sym(Sym::Le) => Some(BinOp::Le),
            TokenKind::Sym(Sym::Gt) => Some(BinOp::Gt),
            TokenKind::Sym(Sym::Ge) => Some(BinOp::Ge),
            TokenKind::Keyword(Keyword::Is) => {
                self.bump();
                let rhs = self.additive()?;
                return Ok(Expr::Is {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                });
            }
            TokenKind::Keyword(k @ (Keyword::Before | Keyword::After | Keyword::Under)) => {
                let op = match k {
                    Keyword::Before => OrdOp::Before,
                    Keyword::After => OrdOp::After,
                    _ => OrdOp::Under,
                };
                self.bump();
                let rhs = self.additive()?;
                let ordering = if self.eat_kw(Keyword::In) {
                    Some(self.ident()?)
                } else {
                    None
                };
                let (Expr::Var(l), Expr::Var(r)) = (&lhs, &rhs) else {
                    return Err(self.err("ordering operators take range variables as operands"));
                };
                return Ok(Expr::Ord {
                    op,
                    lhs: l.clone(),
                    rhs: r.clone(),
                    ordering,
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.additive()?;
                Ok(Expr::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
            None => Ok(lhs),
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Plus) => BinOp::Add,
                TokenKind::Sym(Sym::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Star) => BinOp::Mul,
                TokenKind::Sym(Sym::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Integer(i) => {
                self.bump();
                Ok(Expr::Const(Value::Integer(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Const(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::String(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Const(Value::Boolean(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Const(Value::Boolean(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Const(Value::Null))
            }
            TokenKind::Sym(Sym::Minus) => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            TokenKind::Sym(Sym::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Aggregate call? `count(...)` etc. — contextual, so
                // `count` stays usable as an ordinary identifier.
                if let Some(func) = crate::ast::AggFunc::from_name(&name) {
                    if self.peek() == &TokenKind::Sym(Sym::LParen) {
                        self.bump();
                        let arg = self.expr()?;
                        self.expect_sym(Sym::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Box::new(arg),
                        });
                    }
                }
                if self.eat_sym(Sym::Dot) {
                    let attr = self.ident()?;
                    Ok(Expr::Attr { var: name, attr })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_define_entity_paper() {
        // §5.1 examples.
        let stmts = parse(
            "define entity DATE (day = integer, month = integer, year = integer)\n\
             define entity COMPOSITION (title = string, composition_date = DATE)",
        )
        .unwrap();
        assert_eq!(
            stmts[0],
            Stmt::DefineEntity {
                name: "DATE".into(),
                attrs: vec![
                    ("day".into(), "integer".into()),
                    ("month".into(), "integer".into()),
                    ("year".into(), "integer".into()),
                ],
            }
        );
        assert_eq!(
            stmts[1],
            Stmt::DefineEntity {
                name: "COMPOSITION".into(),
                attrs: vec![
                    ("title".into(), "string".into()),
                    ("composition_date".into(), "DATE".into()),
                ],
            }
        );
    }

    #[test]
    fn parse_define_relationship() {
        let stmts =
            parse("define relationship COMPOSER (person = PERSON, composition = COMPOSITION)")
                .unwrap();
        assert_eq!(
            stmts[0],
            Stmt::DefineRelationship {
                name: "COMPOSER".into(),
                members: vec![
                    ("person".into(), "PERSON".into()),
                    ("composition".into(), "COMPOSITION".into()),
                ],
            }
        );
    }

    #[test]
    fn parse_define_ordering_variants() {
        // §5.4 and §5.5 forms.
        let stmts = parse(
            "define ordering note_in_chord (NOTE) under CHORD\n\
             define ordering (CHORD, REST) under VOICE\n\
             define ordering (BEAM_GROUP, CHORD) under BEAM_GROUP\n\
             define ordering all_measures (MEASURE)",
        )
        .unwrap();
        assert_eq!(
            stmts[0],
            Stmt::DefineOrdering {
                name: Some("note_in_chord".into()),
                children: vec!["NOTE".into()],
                parent: Some("CHORD".into()),
            }
        );
        assert_eq!(
            stmts[1],
            Stmt::DefineOrdering {
                name: None,
                children: vec!["CHORD".into(), "REST".into()],
                parent: Some("VOICE".into()),
            }
        );
        assert!(
            matches!(&stmts[2], Stmt::DefineOrdering { parent: Some(p), .. } if p == "BEAM_GROUP")
        );
        assert_eq!(
            stmts[3],
            Stmt::DefineOrdering {
                name: Some("all_measures".into()),
                children: vec!["MEASURE".into()],
                parent: None,
            }
        );
    }

    #[test]
    fn parse_define_and_destroy_index() {
        let stmts = parse(
            "define index note_by_name on NOTE (name)\n\
             destroy index note_by_name",
        )
        .unwrap();
        assert_eq!(
            stmts[0],
            Stmt::DefineIndex {
                name: "note_by_name".into(),
                entity: "NOTE".into(),
                attr: "name".into(),
            }
        );
        assert_eq!(
            stmts[1],
            Stmt::DestroyIndex {
                name: "note_by_name".into(),
            }
        );
        // `destroy`, `index`, and `on` stay ordinary identifiers.
        assert!(parse("retrieve (destroy.index) where on.index = 1").is_ok());
        assert!(parse("destroy table x").is_err());
        assert!(parse("define index i over NOTE (name)").is_err());
    }

    #[test]
    fn parse_range_and_retrieve() {
        let stmts = parse(
            "range of n1, n2 is NOTE\n\
             retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 5",
        )
        .unwrap();
        assert_eq!(
            stmts[0],
            Stmt::RangeOf {
                vars: vec!["n1".into(), "n2".into()],
                target: "NOTE".into()
            }
        );
        let Stmt::Retrieve { targets, qual, .. } = &stmts[1] else {
            panic!()
        };
        assert_eq!(targets.len(), 1);
        let Some(Expr::Bin {
            op: BinOp::And,
            lhs,
            ..
        }) = qual
        else {
            panic!("{qual:?}")
        };
        assert_eq!(
            **lhs,
            Expr::Ord {
                op: OrdOp::Before,
                lhs: "n1".into(),
                rhs: "n2".into(),
                ordering: Some("note_in_chord".into()),
            }
        );
    }

    #[test]
    fn parse_star_spangled_banner() {
        // The §5.6 `is` query, verbatim (modulo whitespace).
        let stmts = parse(
            "retrieve (PERSON.name)\n\
             where COMPOSITION.title = \"The Star Spangled Banner\"\n\
             and COMPOSER.composition is COMPOSITION\n\
             and COMPOSER.composer is PERSON",
        )
        .unwrap();
        let Stmt::Retrieve { qual: Some(q), .. } = &stmts[0] else {
            panic!()
        };
        // Top-level is an AND chain ending in an `is`.
        let Expr::Bin {
            op: BinOp::And,
            rhs,
            ..
        } = q
        else {
            panic!("{q:?}")
        };
        assert!(matches!(**rhs, Expr::Is { .. }));
    }

    #[test]
    fn parse_under_query() {
        let stmts =
            parse("retrieve (n1.name) where n1 under c1 in note_in_chord and c1.name = 7").unwrap();
        let Stmt::Retrieve { qual: Some(q), .. } = &stmts[0] else {
            panic!()
        };
        let Expr::Bin { lhs, .. } = q else { panic!() };
        assert_eq!(
            **lhs,
            Expr::Ord {
                op: OrdOp::Under,
                lhs: "n1".into(),
                rhs: "c1".into(),
                ordering: Some("note_in_chord".into()),
            }
        );
    }

    #[test]
    fn parse_append_replace_delete() {
        let stmts = parse(
            "append to COMPOSITION (title = \"Fuge g-moll\", year = 1703 + 6)\n\
             replace c (title = \"renamed\") where c.year < 1800\n\
             delete c where c.title = \"renamed\"",
        )
        .unwrap();
        assert!(matches!(&stmts[0], Stmt::AppendTo { entity, .. } if entity == "COMPOSITION"));
        assert!(matches!(&stmts[1], Stmt::Replace { var, .. } if var == "c"));
        assert!(matches!(&stmts[2], Stmt::Delete { var, .. } if var == "c"));
    }

    #[test]
    fn parse_labeled_targets_and_unique() {
        let stmts = parse("retrieve unique (who = PERSON.name, PERSON.name)").unwrap();
        let Stmt::Retrieve {
            unique, targets, ..
        } = &stmts[0]
        else {
            panic!()
        };
        assert!(unique);
        assert_eq!(targets[0].label.as_deref(), Some("who"));
        assert_eq!(targets[1].label, None);
    }

    #[test]
    fn arithmetic_precedence() {
        let stmts = parse("retrieve (x.a + x.b * 2)").unwrap();
        let Stmt::Retrieve { targets, .. } = &stmts[0] else {
            panic!()
        };
        let Expr::Bin {
            op: BinOp::Add,
            rhs,
            ..
        } = &targets[0].expr
        else {
            panic!()
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn ordering_op_requires_vars() {
        assert!(parse("retrieve (n.x) where n.x before n2").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = parse("range of x is NOTE\nretrieve (").unwrap_err();
        let LangError::Parse { line, .. } = err else {
            panic!("{err}")
        };
        assert_eq!(line, 2);
    }
}
