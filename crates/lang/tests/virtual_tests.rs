//! System entities: `$statements`, `$tables`, `$indexes`, and `$locks`
//! queryable through ordinary QUEL retrieves, plus the statement-store
//! recording path that feeds `$statements`.

use std::sync::Arc;

use mdm_lang::{fingerprint, Session, StmtResult, Table};
use mdm_model::{Database, Value};
use mdm_obs::{Registry, StatementStore};

fn rows(mut results: Vec<StmtResult>) -> Table {
    match results.pop() {
        Some(StmtResult::Rows(t)) => t,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn person_db(s: &mut Session) -> Database {
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity PERSON (name = string, born = integer)",
    )
    .unwrap();
    for (name, born) in [("Bach", 1685), ("Telemann", 1681), ("Handel", 1685)] {
        db.create_entity(
            "PERSON",
            &[
                ("name", Value::String(name.into())),
                ("born", Value::Integer(born)),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn statements_returns_the_sessions_prior_queries() {
    let mut s = Session::new();
    let store = Arc::new(StatementStore::new());
    s.set_statement_store(Arc::clone(&store));
    let mut db = person_db(&mut s);
    // Two literal variants of one query: one fingerprint, two calls.
    for who in ["Bach", "Telemann"] {
        s.execute(
            &mut db,
            &format!("range of p is PERSON\nretrieve (p.name) where p.name = \"{who}\""),
        )
        .unwrap();
    }
    let t = rows(
        s.execute(
            &mut db,
            "range of st is $statements\n\
             retrieve (st.fingerprint, st.calls, st.rows_returned) where st.calls = 2",
        )
        .unwrap(),
    );
    assert_eq!(t.len(), 1, "literal variants collapse to one entry:\n{t}");
    let fp = fingerprint("range of p is PERSON retrieve (p.name) where p.name = \"x\"");
    assert_eq!(t.rows[0][0], Value::String(fp));
    assert_eq!(t.rows[0][2], Value::Integer(2), "one row returned per call");
    // The $statements retrieve itself is recorded only after it runs.
    let again = rows(
        s.execute(
            &mut db,
            "range of st is $statements retrieve (st.fingerprint)",
        )
        .unwrap(),
    );
    assert!(
        again.rows.iter().any(|r| r[0]
            == Value::String(fingerprint(
                "range of st is $statements\n\
                 retrieve (st.fingerprint, st.calls, st.rows_returned) where st.calls = 2"
            ))),
        "earlier $statements query shows up in the later one"
    );
}

#[test]
fn statements_records_scans_and_index_probes() {
    let mut s = Session::new();
    let store = Arc::new(StatementStore::new());
    s.set_statement_store(Arc::clone(&store));
    let mut db = person_db(&mut s);
    s.execute(&mut db, "define index by_name on PERSON (name)")
        .unwrap();
    let probe = "range of p is PERSON retrieve (p.born) where p.name = \"Bach\"";
    s.execute(&mut db, probe).unwrap();
    let stats = store.get(&fingerprint(probe)).unwrap();
    assert_eq!(stats.calls, 1);
    assert_eq!(stats.paths.index_eq, 1, "planner chose the index probe");
    assert_eq!(stats.paths.scan, 0);
    assert_eq!(stats.rows_returned, 1);
}

#[test]
fn tables_reflects_live_counts_and_mutations() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    s.execute(
        &mut db,
        "range of p is PERSON\ndelete p where p.name = \"Handel\"",
    )
    .unwrap();
    // Implicit range variable: a variable named like the system entity.
    let t = rows(
        s.execute(
            &mut db,
            "range of t is $tables\n\
             retrieve (t.name, t.live, t.appends, t.deletes) where t.name = \"PERSON\"",
        )
        .unwrap(),
    );
    assert_eq!(
        t.rows,
        vec![vec![
            Value::String("PERSON".into()),
            Value::Integer(2),
            Value::Integer(3),
            Value::Integer(1),
        ]]
    );
}

#[test]
fn indexes_reports_cardinality_and_probes() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    s.execute(&mut db, "define index by_born on PERSON (born)")
        .unwrap();
    s.execute(
        &mut db,
        "range of p is PERSON retrieve (p.name) where p.born = 1685",
    )
    .unwrap();
    let t = rows(
        s.execute(
            &mut db,
            "range of i is $indexes\n\
             retrieve (i.name, i.entity, i.attribute, i.distinct, i.entries, i.eq_probes)",
        )
        .unwrap(),
    );
    assert_eq!(
        t.rows,
        vec![vec![
            Value::String("by_born".into()),
            Value::String("PERSON".into()),
            Value::String("born".into()),
            Value::Integer(2), // 1681, 1685
            Value::Integer(3),
            Value::Integer(1),
        ]]
    );
}

#[test]
fn locks_reads_the_attached_registry() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    // Without a registry the entity exists but is empty.
    let empty = rows(
        s.execute(&mut db, "range of l is $locks retrieve (l.name, l.value)")
            .unwrap(),
    );
    assert!(empty.is_empty());
    let registry = Registry::new();
    registry
        .counter("mdm_lock_waits_total", "lock waits")
        .add(7);
    registry
        .counter("mdm_http_requests_total", "not a lock counter")
        .add(9);
    registry
        .gauge("mdm_mvcc_snapshots_open", "open snapshots")
        .set(2);
    s.set_lock_registry(registry);
    let t = rows(
        s.execute(&mut db, "range of l is $locks retrieve (l.name, l.value)")
            .unwrap(),
    );
    assert_eq!(
        t.rows,
        vec![
            vec![
                Value::String("mdm_lock_waits_total".into()),
                Value::Integer(7),
            ],
            vec![
                Value::String("mdm_mvcc_snapshots_open".into()),
                Value::Integer(2),
            ],
        ],
        "only mdm_lock_/mdm_txn_/mdm_mvcc_ metrics appear"
    );
}

#[test]
fn virtual_entities_reject_mutation_and_unknown_names() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    let err = s
        .execute(
            &mut db,
            "range of t is $tables delete t where t.name = \"PERSON\"",
        )
        .unwrap_err();
    assert!(err.to_string().contains("entity variable"), "{err}");
    let err = s
        .execute(&mut db, "range of t is $tables replace t (name = \"X\")")
        .unwrap_err();
    assert!(err.to_string().contains("entity variable"), "{err}");
    let err = s
        .execute(&mut db, "range of z is $zebras retrieve (z.name)")
        .unwrap_err();
    assert!(err.to_string().contains("unknown system entity"), "{err}");
    let err = s
        .execute(&mut db, "range of t is $tables retrieve (t.no_such_column)")
        .unwrap_err();
    assert!(err.to_string().contains("has no attribute"), "{err}");
}

#[test]
fn explain_annotates_statistics_informed_estimates() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    s.execute(&mut db, "define index by_born on PERSON (born)")
        .unwrap();
    let (ex, _) = s
        .explain(
            &db,
            "range of p is PERSON retrieve (p.name) where p.born = 1685",
        )
        .unwrap();
    assert_eq!(ex.vars[0].path, "index-eq(born)");
    assert_eq!(
        ex.vars[0].stats, "live=3 distinct=2 est=1",
        "EXPLAIN names the statistics that informed the estimate"
    );
    assert!(ex.to_string().contains("[live=3 distinct=2 est=1]"), "{ex}");
    // Unindexed plans carry no stats annotation.
    let (ex, _) = s
        .explain(&db, "range of p is PERSON retrieve (p.name)")
        .unwrap();
    assert_eq!(ex.vars[0].stats, "");
}

#[test]
fn explain_prefers_the_more_selective_index() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity TRACK (disc = integer, pos = integer)",
    )
    .unwrap();
    // 2 distinct discs, 10 distinct positions: pos is 5x more selective.
    for disc in 0..2i64 {
        for pos in 0..10i64 {
            db.create_entity(
                "TRACK",
                &[("disc", Value::Integer(disc)), ("pos", Value::Integer(pos))],
            )
            .unwrap();
        }
    }
    s.execute(
        &mut db,
        "define index by_disc on TRACK (disc)\ndefine index by_pos on TRACK (pos)",
    )
    .unwrap();
    let (ex, _) = s
        .explain(
            &db,
            "range of t is TRACK retrieve (t.disc) where t.disc = 1 and t.pos = 3",
        )
        .unwrap();
    assert_eq!(
        ex.vars[0].path, "index-eq(pos)",
        "the statistics pick the more selective probe first: {ex}"
    );
    assert_eq!(ex.vars[0].stats, "live=20 distinct=10 est=2");
    assert_eq!(ex.vars[0].estimated, 1, "both probes still intersect");
}

#[test]
fn metrics_reads_the_attached_monitor() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    // Without a monitor the entity exists but is empty.
    let t = rows(
        s.execute(&mut db, "range of m is $metrics retrieve (m.name, m.value)")
            .unwrap(),
    );
    assert!(t.is_empty(), "no monitor attached:\n{t}");

    let registry = Registry::new();
    registry.counter("mdm_demo_total", "demo").add(7);
    let monitor = mdm_obs::Monitor::start(registry, mdm_obs::MonitorConfig::disabled());
    s.set_monitor(Arc::clone(&monitor));
    let t = rows(
        s.execute(
            &mut db,
            "range of m is $metrics\n\
             retrieve (m.name, m.value, m.rate) where m.name = \"mdm_demo_total\"",
        )
        .unwrap(),
    );
    assert_eq!(t.len(), 1, "{t}");
    assert_eq!(t.rows[0][1], Value::Float(7.0));
}

#[test]
fn alerts_reads_the_monitors_rule_states() {
    let mut s = Session::new();
    let mut db = person_db(&mut s);
    let registry = Registry::new();
    let lag = registry.gauge("mdm_repl_lag_bytes", "lag");
    let monitor = mdm_obs::Monitor::start(registry, mdm_obs::MonitorConfig::disabled());
    monitor.add_rule(mdm_obs::Rule::above(
        "lag_high",
        "mdm_repl_lag_bytes",
        100.0,
        1,
    ));
    s.set_monitor(Arc::clone(&monitor));
    lag.set(10);
    monitor.sample_now();
    let t = rows(
        s.execute(
            &mut db,
            "range of a is $alerts retrieve (a.rule, a.state, a.severity)",
        )
        .unwrap(),
    );
    assert_eq!(
        t.rows,
        vec![vec![
            Value::String("lag_high".into()),
            Value::String("ok".into()),
            Value::String("critical".into()),
        ]]
    );
    lag.set(500);
    monitor.sample_now();
    let t = rows(
        s.execute(
            &mut db,
            "range of a is $alerts retrieve (a.rule) where a.state = \"firing\"",
        )
        .unwrap(),
    );
    assert_eq!(t.len(), 1, "{t}");
    // Virtual targets stay read-only.
    assert!(s
        .execute(&mut db, "delete a where a.rule = \"lag_high\"")
        .is_err());
}
