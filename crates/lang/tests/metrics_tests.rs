//! QUEL pipeline observability: phase timers, executor row traffic, and
//! ordering-operator counters must reflect the work actually performed.

use std::sync::Arc;

use mdm_lang::{QuelMetrics, Session};
use mdm_model::{Database, Value};
use mdm_obs::Registry;

/// The §5.6 NOTE/CHORD database: chord 1 with notes 1..=4 in order,
/// chord 2 with notes 5..=6.
fn chord_db(session: &mut Session) -> Database {
    let mut db = Database::new();
    session
        .execute(
            &mut db,
            "define entity CHORD (name = integer)\n\
             define entity NOTE (name = integer)\n\
             define ordering note_in_chord (NOTE) under CHORD",
        )
        .unwrap();
    let c1 = db
        .create_entity("CHORD", &[("name", Value::Integer(1))])
        .unwrap();
    let c2 = db
        .create_entity("CHORD", &[("name", Value::Integer(2))])
        .unwrap();
    for i in 1..=4 {
        let n = db
            .create_entity("NOTE", &[("name", Value::Integer(i))])
            .unwrap();
        db.ord_append("note_in_chord", Some(c1), n).unwrap();
    }
    for i in 5..=6 {
        let n = db
            .create_entity("NOTE", &[("name", Value::Integer(i))])
            .unwrap();
        db.ord_append("note_in_chord", Some(c2), n).unwrap();
    }
    db
}

#[test]
fn pipeline_metrics_count_exact_work() {
    let registry = Registry::new();
    let metrics = QuelMetrics::register(&registry);
    let mut s = Session::with_metrics(Arc::clone(&metrics));
    let mut db = chord_db(&mut s); // program 1: three define statements

    // Program 2: 6×6 NOTE bindings, `before` on every one, 2 rows out.
    // Tuple fetches: n2 for the 7 bindings where `before` held (the
    // `and` short-circuits the rest), n1 for the 2 surviving rows.
    s.execute(
        &mut db,
        "range of n1, n2 is NOTE\n\
         retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3",
    )
    .unwrap();
    // Program 3: same shape with `after`; notes 3 and 4 follow note 2.
    s.execute(
        &mut db,
        "range of n1, n2 is NOTE\n\
         retrieve (n1.name) where n1 after n2 in note_in_chord and n2.name = 2",
    )
    .unwrap();
    // Program 4: 6×2 NOTE×CHORD bindings, `under` on every one.
    s.execute(
        &mut db,
        "range of n is NOTE\n\
         range of c is CHORD\n\
         retrieve (n.name) where n under c in note_in_chord and c.name = 2",
    )
    .unwrap();

    let snap = registry.snapshot();
    // Four programs were lexed and parsed; 3+2+2+3 statements executed.
    assert_eq!(snap.histogram("mdm_quel_lex_micros").unwrap().count, 4);
    assert_eq!(snap.histogram("mdm_quel_parse_micros").unwrap().count, 4);
    assert_eq!(snap.histogram("mdm_quel_exec_micros").unwrap().count, 10);
    // Tuples fetched, not bindings enumerated: the ordering operators
    // touch no attributes and `and` short-circuits, so program 2 fetches
    // 7 n2 + 2 n1 = 9, program 3 mirrors it with 9, and program 4
    // fetches c for the 6 bindings where `under` held + 2 n = 8.
    assert_eq!(snap.counter("mdm_quel_rows_scanned_total"), Some(26));
    // Each retrieve returned two rows.
    assert_eq!(snap.counter("mdm_quel_rows_returned_total"), Some(6));
    // The ordering operator leads each qualification, so it is evaluated
    // for every binding of its statement.
    let ord = |op| snap.counter_with("mdm_quel_ord_ops_total", &[("op", op)]);
    assert_eq!(ord("before"), Some(36));
    assert_eq!(ord("after"), Some(36));
    assert_eq!(ord("under"), Some(12));
}

#[test]
fn rows_scanned_counts_tuple_fetches_not_bindings() {
    let registry = Registry::new();
    let metrics = QuelMetrics::register(&registry);
    let mut s = Session::with_metrics(Arc::clone(&metrics));
    let mut db = chord_db(&mut s);
    // 36 candidate bindings, but `before` fetches no tuples and the
    // `and` short-circuits: only the 7 bindings where it held fetch n2,
    // plus n1 for the 2 rows that survive the qualification.
    s.execute(
        &mut db,
        "range of n1, n2 is NOTE\n\
         retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3",
    )
    .unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("mdm_quel_rows_scanned_total"), Some(9));

    // An index probe shrinks the domain itself: one binding enumerated,
    // and its single tuple is fetched once even though the qualification
    // and the target both read `n.name`.
    db.define_index("note_by_name", "NOTE", "name").unwrap();
    s.execute(
        &mut db,
        "range of n is NOTE\nretrieve (n.name) where n.name = 3",
    )
    .unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("mdm_quel_rows_scanned_total"), Some(10));
}

#[test]
fn readonly_execution_is_instrumented() {
    let registry = Registry::new();
    let mut plain = Session::new();
    let db = chord_db(&mut plain); // built without metrics

    let mut s = Session::with_metrics(QuelMetrics::register(&registry));
    s.execute_readonly(&db, "range of n is NOTE\nretrieve (n.name)")
        .unwrap();

    let snap = registry.snapshot();
    assert_eq!(snap.histogram("mdm_quel_exec_micros").unwrap().count, 2);
    assert_eq!(snap.counter("mdm_quel_rows_scanned_total"), Some(6));
    assert_eq!(snap.counter("mdm_quel_rows_returned_total"), Some(6));
}

#[test]
fn uninstrumented_session_records_nothing() {
    let registry = Registry::new();
    let _handles = QuelMetrics::register(&registry);
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    s.execute(&mut db, "retrieve (NOTE.name)").unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("mdm_quel_rows_scanned_total"), Some(0));
    assert_eq!(snap.histogram("mdm_quel_exec_micros").unwrap().count, 0);
}
