//! Tests for attribute-index-accelerated qualification (the executor's
//! single optimization: sargable `var.attr = constant` conjuncts probe
//! the model's secondary indexes).

use mdm_lang::{Session, StmtResult, Table};
use mdm_model::{Database, Value};

fn rows(mut results: Vec<StmtResult>) -> Table {
    match results.pop() {
        Some(StmtResult::Rows(t)) => t,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn populated(n: i64) -> (Session, Database) {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity NOTE (name = integer, pitch = string)",
    )
    .unwrap();
    for i in 0..n {
        db.create_entity(
            "NOTE",
            &[
                ("name", Value::Integer(i)),
                ("pitch", Value::String(format!("p{}", i % 12))),
            ],
        )
        .unwrap();
    }
    (s, db)
}

#[test]
fn indexed_and_unindexed_agree() {
    let (mut s, mut db) = populated(500);
    let q = "range of n is NOTE\nretrieve (n.name) where n.pitch = \"p7\" and n.name < 100";
    let without = rows(s.execute(&mut db, q).unwrap());
    db.create_attr_index("NOTE", "pitch").unwrap();
    let with = rows(s.execute(&mut db, q).unwrap());
    assert_eq!(with, without);
    assert!(!with.is_empty());
}

#[test]
fn index_stays_correct_under_mutation() {
    let (mut s, mut db) = populated(50);
    db.create_attr_index("NOTE", "name").unwrap();
    // Mutate through QUEL: replace then delete.
    s.execute(
        &mut db,
        "range of n is NOTE\nreplace n (name = 999) where n.name = 7",
    )
    .unwrap();
    let t = rows(
        s.execute(&mut db, "retrieve (n.pitch) where n.name = 999")
            .unwrap(),
    );
    assert_eq!(t.len(), 1);
    let t = rows(
        s.execute(&mut db, "retrieve (n.pitch) where n.name = 7")
            .unwrap(),
    );
    assert!(t.is_empty(), "old key must be unindexed after replace");
    s.execute(&mut db, "delete n where n.name = 999").unwrap();
    let t = rows(
        s.execute(&mut db, "retrieve (n.pitch) where n.name = 999")
            .unwrap(),
    );
    assert!(t.is_empty());
    // Append re-populates the index.
    s.execute(&mut db, "append to NOTE (name = 999, pitch = \"new\")")
        .unwrap();
    let t = rows(
        s.execute(&mut db, "retrieve (n.pitch) where n.name = 999")
            .unwrap(),
    );
    assert_eq!(t.rows[0][0], Value::String("new".into()));
}

#[test]
fn two_indexed_conjuncts_intersect() {
    let (mut s, mut db) = populated(200);
    db.create_attr_index("NOTE", "name").unwrap();
    db.create_attr_index("NOTE", "pitch").unwrap();
    let t = rows(
        s.execute(
            &mut db,
            "range of n is NOTE\nretrieve (n.name) where n.name = 19 and n.pitch = \"p7\"",
        )
        .unwrap(),
    );
    assert_eq!(t.len(), 1, "19 % 12 == 7 so both conjuncts hold");
    let t = rows(
        s.execute(
            &mut db,
            "retrieve (n.name) where n.name = 19 and n.pitch = \"p3\"",
        )
        .unwrap(),
    );
    assert!(t.is_empty(), "empty intersection");
}

#[test]
fn or_disjuncts_do_not_restrict() {
    // `a = 1 or b = 2` must NOT use the index to restrict to a = 1 only.
    let (mut s, mut db) = populated(60);
    db.create_attr_index("NOTE", "name").unwrap();
    let t = rows(
        s.execute(
            &mut db,
            "range of n is NOTE\nretrieve (n.name) where n.name = 1 or n.name = 2",
        )
        .unwrap(),
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn join_query_uses_index_on_one_side() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity CHORD (name = integer)\n\
         define entity NOTE (name = integer)\n\
         define ordering note_in_chord (NOTE) under CHORD",
    )
    .unwrap();
    for c in 0..40i64 {
        let chord = db
            .create_entity("CHORD", &[("name", Value::Integer(c))])
            .unwrap();
        for k in 0..4 {
            let note = db
                .create_entity("NOTE", &[("name", Value::Integer(c * 4 + k))])
                .unwrap();
            db.ord_append("note_in_chord", Some(chord), note).unwrap();
        }
    }
    db.create_attr_index("CHORD", "name").unwrap();
    let t = rows(
        s.execute(
            &mut db,
            "range of n is NOTE\nrange of c is CHORD\n\
             retrieve (n.name) where n under c in note_in_chord and c.name = 13",
        )
        .unwrap(),
    );
    let mut names: Vec<i64> = t.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    names.sort_unstable();
    assert_eq!(names, vec![52, 53, 54, 55]);
}

#[test]
fn rebuild_after_bulk_store_mutation() {
    let (_s, mut db) = populated(10);
    db.create_attr_index("NOTE", "name").unwrap();
    // Bypass the typed API (bulk loader style), then rebuild.
    let ty = db.schema().entity_type_id("NOTE").unwrap();
    db.store_mut().create_entity_with_id(
        4242,
        ty,
        vec![Value::Integer(777), Value::String("bulk".into())],
    );
    db.rebuild_attr_indexes();
    let mut s = Session::new();
    let t = rows(
        s.execute(&mut db, "retrieve (NOTE.pitch) where NOTE.name = 777")
            .unwrap(),
    );
    assert_eq!(t.rows[0][0], Value::String("bulk".into()));
}
