//! End-to-end QUEL tests, centered on the paper's §5.6 example queries.

use mdm_lang::{LangError, Session, StmtResult, Table};
use mdm_model::{Database, Value};

fn rows(r: &StmtResult) -> &Table {
    match r {
        StmtResult::Rows(t) => t,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn ints(t: &Table, col: usize) -> Vec<i64> {
    t.rows
        .iter()
        .map(|r| r[col].as_integer().unwrap())
        .collect()
}

/// Builds the §5.6 NOTE/CHORD database: chord 1 with notes 1..=4 in
/// order, chord 2 with notes 5..=6.
fn chord_db(session: &mut Session) -> Database {
    let mut db = Database::new();
    session
        .execute(
            &mut db,
            "define entity CHORD (name = integer)\n\
             define entity NOTE (name = integer)\n\
             define ordering note_in_chord (NOTE) under CHORD",
        )
        .unwrap();
    let c1 = db
        .create_entity("CHORD", &[("name", Value::Integer(1))])
        .unwrap();
    let c2 = db
        .create_entity("CHORD", &[("name", Value::Integer(2))])
        .unwrap();
    for i in 1..=4 {
        let n = db
            .create_entity("NOTE", &[("name", Value::Integer(i))])
            .unwrap();
        db.ord_append("note_in_chord", Some(c1), n).unwrap();
    }
    for i in 5..=6 {
        let n = db
            .create_entity("NOTE", &[("name", Value::Integer(i))])
            .unwrap();
        db.ord_append("note_in_chord", Some(c2), n).unwrap();
    }
    db
}

#[test]
fn paper_query_notes_before() {
    // "Given a note n, retrieve the notes prior to n in its chord."
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    let out = s
        .execute(
            &mut db,
            "range of n1, n2 is NOTE\n\
             retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3",
        )
        .unwrap();
    let mut names = ints(rows(&out[1]), 0);
    names.sort_unstable();
    assert_eq!(names, vec![1, 2]);
}

#[test]
fn paper_query_notes_after() {
    // "Retrieve the notes that follow note n."
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    let out = s
        .execute(
            &mut db,
            "range of n1, n2 is NOTE\n\
             retrieve (n1.name) where n1 after n2 in note_in_chord and n2.name = 2",
        )
        .unwrap();
    let mut names = ints(rows(&out[1]), 0);
    names.sort_unstable();
    assert_eq!(
        names,
        vec![3, 4],
        "notes 5,6 are in another chord: not comparable"
    );
}

#[test]
fn paper_query_notes_under_chord() {
    // "Retrieve the notes under chord c."
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    let out = s
        .execute(
            &mut db,
            "range of n1 is NOTE\n\
             range of c1 is CHORD\n\
             retrieve (n1.name) where n1 under c1 in note_in_chord and c1.name = 2",
        )
        .unwrap();
    let mut names = ints(rows(&out[2]), 0);
    names.sort_unstable();
    assert_eq!(names, vec![5, 6]);
}

#[test]
fn paper_query_parent_chord_of_note() {
    // "Retrieve the parent chord of note n."
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    let out = s
        .execute(
            &mut db,
            "range of n1 is NOTE\n\
             range of c1 is CHORD\n\
             retrieve (c1.name) where n1 under c1 in note_in_chord and n1.name = 6",
        )
        .unwrap();
    assert_eq!(ints(rows(&out[2]), 0), vec![2]);
}

#[test]
fn paper_query_star_spangled_banner() {
    // The §5.6 `is` query with implicit range variables.
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity PERSON (name = string)\n\
         define entity COMPOSITION (title = string)\n\
         define relationship COMPOSER (composer = PERSON, composition = COMPOSITION)",
    )
    .unwrap();
    let smith = db
        .create_entity(
            "PERSON",
            &[("name", Value::String("John Stafford Smith".into()))],
        )
        .unwrap();
    let sousa = db
        .create_entity(
            "PERSON",
            &[("name", Value::String("John Philip Sousa".into()))],
        )
        .unwrap();
    let banner = db
        .create_entity(
            "COMPOSITION",
            &[("title", Value::String("The Star Spangled Banner".into()))],
        )
        .unwrap();
    let stars = db
        .create_entity(
            "COMPOSITION",
            &[(
                "title",
                Value::String("The Stars and Stripes Forever".into()),
            )],
        )
        .unwrap();
    db.relate(
        "COMPOSER",
        &[("composer", smith), ("composition", banner)],
        &[],
    )
    .unwrap();
    db.relate(
        "COMPOSER",
        &[("composer", sousa), ("composition", stars)],
        &[],
    )
    .unwrap();

    let out = s
        .execute(
            &mut db,
            "retrieve (PERSON.name)\n\
             where COMPOSITION.title = \"The Star Spangled Banner\"\n\
             and COMPOSER.composition is COMPOSITION\n\
             and COMPOSER.composer is PERSON",
        )
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows[0][0], Value::String("John Stafford Smith".into()));
}

#[test]
fn before_returns_nothing_across_chords() {
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    // Note 5 is in chord 2; nothing in chord 1 is before it.
    let out = s
        .execute(
            &mut db,
            "range of n1, n2 is NOTE\n\
             retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 5",
        )
        .unwrap();
    assert!(rows(&out[1]).is_empty());
}

#[test]
fn ordering_name_inferred_when_unambiguous() {
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    let out = s
        .execute(
            &mut db,
            "range of n1, n2 is NOTE\n\
             retrieve (n1.name) where n1 before n2 and n2.name = 2",
        )
        .unwrap();
    assert_eq!(ints(rows(&out[1]), 0), vec![1]);
}

#[test]
fn ambiguous_inference_is_an_error() {
    let mut s = Session::new();
    let mut db = chord_db(&mut s);
    s.execute(
        &mut db,
        "define entity STAFF (num = integer)\n\
         define ordering note_on_staff (NOTE) under STAFF",
    )
    .unwrap();
    let err = s
        .execute(
            &mut db,
            "range of n1, n2 is NOTE\nretrieve (n1.name) where n1 before n2",
        )
        .unwrap_err();
    assert!(matches!(err, LangError::Model(_)), "{err}");
}

#[test]
fn append_replace_delete_lifecycle() {
    let mut s = Session::new();
    let mut db = Database::new();
    let out = s
        .execute(
            &mut db,
            "define entity COMPOSITION (title = string, year = integer)\n\
             append to COMPOSITION (title = \"Fuge g-moll\", year = 1709)\n\
             append to COMPOSITION (title = \"Toccata\", year = 1704)\n\
             append to COMPOSITION (title = \"Modern Piece\", year = 1985)",
        )
        .unwrap();
    assert_eq!(out[1], StmtResult::Appended(1));

    // Replace with qualification.
    let out = s
        .execute(
            &mut db,
            "range of c is COMPOSITION\n\
             replace c (title = \"Baroque: \" + c.title) where c.year < 1800",
        )
        .unwrap();
    assert_eq!(out[1], StmtResult::Replaced(2));
    let out = s
        .execute(&mut db, "retrieve (c.title) where c.year = 1709")
        .unwrap();
    assert_eq!(
        rows(&out[0]).rows[0][0],
        Value::String("Baroque: Fuge g-moll".into())
    );

    // Delete.
    let out = s.execute(&mut db, "delete c where c.year > 1900").unwrap();
    assert_eq!(out[0], StmtResult::Deleted(1));
    let out = s.execute(&mut db, "retrieve (c.title)").unwrap();
    assert_eq!(rows(&out[0]).len(), 2);
}

#[test]
fn retrieve_unique_deduplicates() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity NOTE (pitch = string)\n\
         append to NOTE (pitch = \"C4\")\n\
         append to NOTE (pitch = \"C4\")\n\
         append to NOTE (pitch = \"E4\")",
    )
    .unwrap();
    let out = s.execute(&mut db, "retrieve unique (NOTE.pitch)").unwrap();
    assert_eq!(rows(&out[0]).len(), 2);
    let out = s.execute(&mut db, "retrieve (NOTE.pitch)").unwrap();
    assert_eq!(rows(&out[0]).len(), 3);
}

#[test]
fn arithmetic_and_labels() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity M (beats = integer, tempo = float)\n\
         append to M (beats = 4, tempo = 120.0)",
    )
    .unwrap();
    let out = s
        .execute(
            &mut db,
            "retrieve (seconds = M.beats * 60.0 / M.tempo, M.beats)",
        )
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(
        t.columns,
        vec!["seconds".to_string(), "M.beats".to_string()]
    );
    assert_eq!(t.rows[0][0], Value::Float(2.0));
}

#[test]
fn cross_product_semantics() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity A (x = integer)\n\
         define entity B (y = integer)\n\
         append to A (x = 1)\n\
         append to A (x = 2)\n\
         append to B (y = 10)\n\
         append to B (y = 20)",
    )
    .unwrap();
    let out = s.execute(&mut db, "retrieve (A.x, B.y)").unwrap();
    assert_eq!(rows(&out[0]).len(), 4);
    let out = s
        .execute(&mut db, "retrieve (A.x, B.y) where A.x * 10 = B.y")
        .unwrap();
    assert_eq!(rows(&out[0]).len(), 2);
}

#[test]
fn undeclared_variable_is_an_error() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(&mut db, "define entity A (x = integer)").unwrap();
    let err = s.execute(&mut db, "retrieve (zz.x)").unwrap_err();
    assert!(matches!(err, LangError::Analyze(_)), "{err}");
}

#[test]
fn entity_typed_attribute_in_ddl() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity DATE (day = integer, month = integer, year = integer)\n\
         define entity COMPOSITION (title = string, composition_date = DATE)",
    )
    .unwrap();
    let d = db
        .create_entity(
            "DATE",
            &[
                ("day", Value::Integer(21)),
                ("month", Value::Integer(3)),
                ("year", Value::Integer(1685)),
            ],
        )
        .unwrap();
    db.create_entity(
        "COMPOSITION",
        &[
            ("title", Value::String("x".into())),
            ("composition_date", Value::Entity(d)),
        ],
    )
    .unwrap();
    // Join composition to its date through the entity reference and `is`.
    let out = s
        .execute(
            &mut db,
            "retrieve (DATE.year) where COMPOSITION.composition_date is DATE",
        )
        .unwrap();
    assert_eq!(ints(rows(&out[0]), 0), vec![1685]);
}

#[test]
fn relationship_attributes_are_projectable() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity PERSON (name = string)\n\
         define entity WORK (title = string)\n\
         define relationship PERFORMED (player = PERSON, work = WORK, venue = string)",
    )
    .unwrap();
    let p = db
        .create_entity("PERSON", &[("name", Value::String("Gould".into()))])
        .unwrap();
    let w = db
        .create_entity("WORK", &[("title", Value::String("Goldberg".into()))])
        .unwrap();
    db.relate(
        "PERFORMED",
        &[("player", p), ("work", w)],
        &[("venue", Value::String("Toronto".into()))],
    )
    .unwrap();
    let out = s
        .execute(
            &mut db,
            "retrieve (PERFORMED.venue, PERSON.name) where PERFORMED.player is PERSON",
        )
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(t.rows[0][0], Value::String("Toronto".into()));
    assert_eq!(t.rows[0][1], Value::String("Gould".into()));
}

#[test]
fn ddl_through_session_defines_orderings() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity VOICE (num = integer)\n\
         define entity CHORD (num = integer)\n\
         define entity REST (num = integer)\n\
         define ordering voice_content (CHORD, REST) under VOICE",
    )
    .unwrap();
    assert!(db.ordering_id("voice_content").is_ok());
    let def = db
        .schema()
        .ordering(db.ordering_id("voice_content").unwrap())
        .unwrap();
    assert_eq!(def.children.len(), 2);
}

#[test]
fn table_display_renders() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity N (name = string)\nappend to N (name = \"hello\")",
    )
    .unwrap();
    let out = s.execute(&mut db, "retrieve (N.name)").unwrap();
    let text = rows(&out[0]).to_string();
    assert!(text.contains("N.name"));
    assert!(text.contains("hello"));
    assert!(text.contains("(1 row)"));
}

#[test]
fn sort_by_orders_results() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity W (title = string, year = integer)\n\
         append to W (title = \"b\", year = 1720)\n\
         append to W (title = \"a\", year = 1703)\n\
         append to W (title = \"c\", year = 1703)",
    )
    .unwrap();
    // Ascending year, then descending title.
    let out = s
        .execute(
            &mut db,
            "retrieve (W.title, W.year) sort by W.year, W.title desc",
        )
        .unwrap();
    let t = rows(&out[0]);
    let titles: Vec<&str> = t.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(titles, vec!["c", "a", "b"]);
    // Sorting by a label works too.
    let out = s
        .execute(&mut db, "retrieve (name = W.title) sort by name desc")
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(t.rows[0][0], Value::String("c".into()));
    // Unknown sort column errors.
    assert!(s
        .execute(&mut db, "retrieve (W.title) sort by nope")
        .is_err());
    // `sort` remains usable as an identifier.
    s.execute(
        &mut db,
        "define entity sort (by = integer)\nappend to sort (by = 3)",
    )
    .unwrap();
    let out = s.execute(&mut db, "retrieve (sort.by)").unwrap();
    assert_eq!(rows(&out[0]).rows[0][0], Value::Integer(3));
}

#[test]
fn sort_by_with_aggregates() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity N (voice = string, midi = integer)\n\
         append to N (voice = \"a\", midi = 60)\n\
         append to N (voice = \"b\", midi = 70)\n\
         append to N (voice = \"b\", midi = 72)",
    )
    .unwrap();
    let out = s
        .execute(
            &mut db,
            "retrieve (N.voice, k = count(N.midi)) sort by k desc",
        )
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(t.rows[0][0], Value::String("b".into()));
    assert_eq!(t.rows[0][1], Value::Integer(2));
}

#[test]
fn readonly_execution_retrieves_but_rejects_mutation() {
    let mut s = Session::new();
    let db = chord_db(&mut s);
    // Fresh session, shared database reference.
    let mut reader = Session::new();
    let out = reader
        .execute_readonly(&db, "range of n is NOTE\nretrieve (n.name)")
        .unwrap();
    let mut names = ints(rows(&out[1]), 0);
    names.sort_unstable();
    assert_eq!(names, vec![1, 2, 3, 4, 5, 6]);
    // Every mutating statement class is refused.
    for stmt in [
        "define entity X (name = integer)",
        "append to NOTE (name = 7)",
        "range of n is NOTE\nreplace n (name = 9)",
        "range of n is NOTE\ndelete n",
    ] {
        assert!(
            matches!(
                reader.execute_readonly(&db, stmt),
                Err(LangError::Analyze(_))
            ),
            "{stmt} should be rejected"
        );
    }
}
