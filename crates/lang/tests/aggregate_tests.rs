//! Tests for the aggregate extension (count/sum/avg/min/max with
//! grouping) — the \[Han84\] user-defined-aggregate work the paper calls
//! "directly applicable to our music representation problem".

use mdm_lang::{LangError, Session, StmtResult, Table};
use mdm_model::{Database, Value};

fn rows(r: &StmtResult) -> &Table {
    match r {
        StmtResult::Rows(t) => t,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn setup() -> (Session, Database) {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity NOTE (voice = string, midi = integer, dur = float)\n\
         append to NOTE (voice = \"soprano\", midi = 72, dur = 1.0)\n\
         append to NOTE (voice = \"soprano\", midi = 76, dur = 0.5)\n\
         append to NOTE (voice = \"soprano\", midi = 79, dur = 0.5)\n\
         append to NOTE (voice = \"bass\", midi = 48, dur = 2.0)\n\
         append to NOTE (voice = \"bass\", midi = 43, dur = 2.0)",
    )
    .unwrap();
    (s, db)
}

#[test]
fn count_all() {
    let (mut s, mut db) = setup();
    let out = s.execute(&mut db, "retrieve (count(NOTE.midi))").unwrap();
    assert_eq!(rows(&out[0]).rows[0][0], Value::Integer(5));
}

#[test]
fn grouped_count_and_extremes() {
    let (mut s, mut db) = setup();
    let out = s
        .execute(
            &mut db,
            "range of n is NOTE\n\
             retrieve (n.voice, count(n.midi), lo = min(n.midi), hi = max(n.midi))",
        )
        .unwrap();
    let t = rows(&out[1]);
    assert_eq!(t.columns, vec!["n.voice", "count(n.midi)", "lo", "hi"]);
    assert_eq!(t.len(), 2);
    // First-seen group order: soprano then bass.
    assert_eq!(t.rows[0][0], Value::String("soprano".into()));
    assert_eq!(t.rows[0][1], Value::Integer(3));
    assert_eq!(t.rows[0][2], Value::Integer(72));
    assert_eq!(t.rows[0][3], Value::Integer(79));
    assert_eq!(t.rows[1][0], Value::String("bass".into()));
    assert_eq!(t.rows[1][1], Value::Integer(2));
}

#[test]
fn sum_and_avg() {
    let (mut s, mut db) = setup();
    let out = s
        .execute(
            &mut db,
            "range of n is NOTE\nretrieve (n.voice, sum(n.dur), avg(n.midi))",
        )
        .unwrap();
    let t = rows(&out[1]);
    assert_eq!(t.rows[0][1], Value::Float(2.0), "soprano durations sum");
    assert_eq!(t.rows[1][1], Value::Float(4.0), "bass durations sum");
    let Value::Float(avg) = t.rows[1][2] else {
        panic!()
    };
    assert!((avg - 45.5).abs() < 1e-12);
}

#[test]
fn sum_of_integers_stays_integer() {
    let (mut s, mut db) = setup();
    let out = s.execute(&mut db, "retrieve (sum(NOTE.midi))").unwrap();
    assert_eq!(
        rows(&out[0]).rows[0][0],
        Value::Integer(72 + 76 + 79 + 48 + 43)
    );
}

#[test]
fn aggregate_with_qualification() {
    let (mut s, mut db) = setup();
    let out = s
        .execute(
            &mut db,
            "range of n is NOTE\nretrieve (count(n.midi)) where n.midi > 70",
        )
        .unwrap();
    assert_eq!(rows(&out[1]).rows[0][0], Value::Integer(3));
}

#[test]
fn empty_input_yields_zero_count() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(&mut db, "define entity E (x = integer)").unwrap();
    let out = s
        .execute(&mut db, "retrieve (count(E.x), sum(E.x), avg(E.x))")
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(t.rows[0][0], Value::Integer(0));
    assert_eq!(t.rows[0][1], Value::Integer(0));
    assert_eq!(t.rows[0][2], Value::Null);
}

#[test]
fn nulls_are_skipped() {
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity E (x = integer)\nappend to E (x = 1)\nappend to E ()",
    )
    .unwrap();
    let out = s
        .execute(&mut db, "retrieve (count(E.x), min(E.x))")
        .unwrap();
    let t = rows(&out[0]);
    assert_eq!(t.rows[0][0], Value::Integer(1), "null not counted");
    assert_eq!(t.rows[0][1], Value::Integer(1));
}

#[test]
fn aggregate_in_qualification_rejected() {
    let (mut s, mut db) = setup();
    let err = s
        .execute(
            &mut db,
            "retrieve (NOTE.voice, count(NOTE.midi)) where count(NOTE.midi) > 1",
        )
        .unwrap_err();
    assert!(matches!(err, LangError::Analyze(_)), "{err}");
}

#[test]
fn nested_aggregate_rejected() {
    let (mut s, mut db) = setup();
    let err = s
        .execute(&mut db, "retrieve (count(sum(NOTE.midi)))")
        .unwrap_err();
    assert!(matches!(err, LangError::Analyze(_)), "{err}");
}

#[test]
fn count_remains_a_valid_identifier() {
    // `count` is contextual: as a plain name it is an ordinary entity
    // type / variable identifier.
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity count (x = integer)\nappend to count (x = 9)",
    )
    .unwrap();
    let out = s.execute(&mut db, "retrieve (count.x)").unwrap();
    assert_eq!(rows(&out[0]).rows[0][0], Value::Integer(9));
}

#[test]
fn aggregate_over_expression() {
    let (mut s, mut db) = setup();
    let out = s
        .execute(&mut db, "range of n is NOTE\nretrieve (sum(n.dur * 2.0))")
        .unwrap();
    assert_eq!(rows(&out[1]).rows[0][0], Value::Float(12.0));
}

#[test]
fn aggregates_over_music_corpus() {
    // The musicological use: notes per chord via the ordering + count.
    let mut s = Session::new();
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity CHORD (name = integer)\n\
         define entity NOTE (name = integer)\n\
         define ordering note_in_chord (NOTE) under CHORD",
    )
    .unwrap();
    for c in 0..3i64 {
        let chord = db
            .create_entity("CHORD", &[("name", Value::Integer(c))])
            .unwrap();
        for n in 0..(c + 2) {
            let note = db
                .create_entity("NOTE", &[("name", Value::Integer(c * 10 + n))])
                .unwrap();
            db.ord_append("note_in_chord", Some(chord), note).unwrap();
        }
    }
    let out = s
        .execute(
            &mut db,
            "range of c is CHORD\nrange of n is NOTE\n\
             retrieve (c.name, width = count(n.name)) where n under c in note_in_chord",
        )
        .unwrap();
    let t = rows(&out[2]);
    assert_eq!(t.len(), 3);
    let widths: Vec<i64> = t.rows.iter().map(|r| r[1].as_integer().unwrap()).collect();
    assert_eq!(widths, vec![2, 3, 4]);
}
