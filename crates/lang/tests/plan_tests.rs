//! The cost-aware planner: index DDL through QUEL, access-path choice,
//! ordering-derived domains, and the EXPLAIN surface.

use mdm_lang::{Session, StmtResult, Table};
use mdm_model::{Database, Value};

fn rows(mut results: Vec<StmtResult>) -> Table {
    match results.pop() {
        Some(StmtResult::Rows(t)) => t,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// 40 chords of 4 notes each, orderings populated.
fn score_db(s: &mut Session) -> Database {
    let mut db = Database::new();
    s.execute(
        &mut db,
        "define entity CHORD (name = integer)\n\
         define entity NOTE (name = integer, pitch = string)\n\
         define ordering note_in_chord (NOTE) under CHORD",
    )
    .unwrap();
    for c in 0..40i64 {
        let chord = db
            .create_entity("CHORD", &[("name", Value::Integer(c))])
            .unwrap();
        for k in 0..4 {
            let note = db
                .create_entity(
                    "NOTE",
                    &[
                        ("name", Value::Integer(c * 4 + k)),
                        ("pitch", Value::String(format!("p{}", (c * 4 + k) % 12))),
                    ],
                )
                .unwrap();
            db.ord_append("note_in_chord", Some(chord), note).unwrap();
        }
    }
    db
}

#[test]
fn define_and_destroy_index_through_quel() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    let r = s
        .execute(&mut db, "define index chord_by_name on CHORD (name)")
        .unwrap();
    assert_eq!(r, vec![StmtResult::Defined("index chord_by_name".into())]);
    assert!(db.index_defs().contains_key("chord_by_name"));

    // Duplicate name is rejected; unknown destroy target is rejected.
    assert!(s
        .execute(&mut db, "define index chord_by_name on CHORD (name)")
        .is_err());
    assert!(s.execute(&mut db, "destroy index nonesuch").is_err());

    let r = s.execute(&mut db, "destroy index chord_by_name").unwrap();
    assert_eq!(
        r,
        vec![StmtResult::Defined("destroyed index chord_by_name".into())]
    );
    assert!(db.index_defs().is_empty());
}

#[test]
fn explain_reports_index_eq_and_ord_derived_paths() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    s.execute(&mut db, "define index chord_by_name on CHORD (name)")
        .unwrap();
    let q = "range of n is NOTE\nrange of c is CHORD\n\
             retrieve (n.name) where n under c in note_in_chord and c.name = 13";
    let (ex, table) = s.explain(&db, q).unwrap();
    let mut names: Vec<i64> = table
        .rows
        .iter()
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec![52, 53, 54, 55]);

    let n = ex.vars.iter().find(|v| v.var == "n").unwrap();
    let c = ex.vars.iter().find(|v| v.var == "c").unwrap();
    assert_eq!(c.path, "index-eq(name)");
    assert_eq!(c.estimated, 1);
    assert_eq!(n.path, "ord(under)", "pinned chord derives n's domain");
    assert_eq!(n.estimated, 4);
    assert_eq!(ex.estimated_rows, 4);
    assert_eq!(ex.actual_rows, 4);
    // 4 bindings × (fetch c for the under check + fetch n for the
    // target) — not 160 × 40.
    assert_eq!(ex.rows_scanned, 8);

    let text = ex.to_string();
    assert!(text.contains("index-eq(name)"), "{text}");
    assert!(text.contains("ord(under)"), "{text}");
}

#[test]
fn explain_reports_index_range_path() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    s.execute(&mut db, "define index note_by_name on NOTE (name)")
        .unwrap();
    let q = "range of n is NOTE\nretrieve (n.pitch) where n.name >= 20 and n.name < 28";
    let (ex, table) = s.explain(&db, q).unwrap();
    assert_eq!(table.len(), 8);
    assert_eq!(ex.vars[0].path, "index-range(name)");
    assert_eq!(ex.vars[0].estimated, 8);
    assert_eq!(ex.rows_scanned, 8);
    assert!(ex.to_string().contains("index-range(name)"));
}

#[test]
fn explain_without_index_reports_scan() {
    let mut s = Session::new();
    let db = score_db(&mut s);
    let (ex, table) = s
        .explain(
            &db,
            "range of n is NOTE\nretrieve (n.name) where n.name = 5",
        )
        .unwrap();
    assert_eq!(table.len(), 1);
    assert_eq!(ex.vars[0].path, "scan");
    assert_eq!(ex.vars[0].estimated, 160);
    assert_eq!(ex.rows_scanned, 160, "every note fetched once");
}

#[test]
fn explain_rejects_mutations() {
    let mut s = Session::new();
    let db = score_db(&mut s);
    assert!(s.explain(&db, "delete n where n.name = 1").is_err());
    assert!(s.explain(&db, "range of n is NOTE").is_err(), "no retrieve");
}

#[test]
fn range_probe_agrees_with_scan_in_rows_and_order() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    let q = "range of n is NOTE\n\
             retrieve (n.name, n.pitch) where n.name > 30 and n.name <= 90 and n.pitch != \"p3\"";
    let without = rows(s.execute(&mut db, q).unwrap());
    s.execute(&mut db, "define index note_by_name on NOTE (name)")
        .unwrap();
    let with = rows(s.execute(&mut db, q).unwrap());
    assert_eq!(with, without);
    assert!(!with.is_empty());
}

#[test]
fn before_and_after_derive_sibling_slices() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    s.execute(&mut db, "define index note_by_name on NOTE (name)")
        .unwrap();
    // Note 53 is the second of chord 13's four notes [52, 53, 54, 55].
    let q = "range of a, b is NOTE\n\
             retrieve (a.name) where a before b in note_in_chord and b.name = 53";
    let (ex, table) = s.explain(&db, q).unwrap();
    assert_eq!(table.len(), 1);
    assert_eq!(table.rows[0][0], Value::Integer(52));
    let a = ex.vars.iter().find(|v| v.var == "a").unwrap();
    assert_eq!(a.path, "ord(before)");
    assert_eq!(a.estimated, 1);

    let q = "range of a, b is NOTE\n\
             retrieve (a.name) where a after b in note_in_chord and b.name = 53";
    let (ex, table) = s.explain(&db, q).unwrap();
    let mut names: Vec<i64> = table
        .rows
        .iter()
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec![54, 55]);
    let a = ex.vars.iter().find(|v| v.var == "a").unwrap();
    assert_eq!(a.path, "ord(after)");
    assert_eq!(a.estimated, 2);
}

#[test]
fn ord_derivation_agrees_with_scan() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    // All three operators, with and without the index that pins the peer.
    for q in [
        "range of n is NOTE\nrange of c is CHORD\n\
         retrieve (n.name) where n under c in note_in_chord and c.name = 7",
        "range of a, b is NOTE\n\
         retrieve (a.name) where a before b in note_in_chord and b.name = 30",
        "range of a, b is NOTE\n\
         retrieve (a.name) where a after b in note_in_chord and b.name = 30",
    ] {
        let without = rows(s.execute(&mut db, q).unwrap());
        s.execute(
            &mut db,
            "define index c_idx on CHORD (name)\ndefine index n_idx on NOTE (name)",
        )
        .unwrap();
        let with = rows(s.execute(&mut db, q).unwrap());
        s.execute(&mut db, "destroy index c_idx\ndestroy index n_idx")
            .unwrap();
        assert_eq!(with, without, "query: {q}");
        assert!(!with.is_empty(), "query: {q}");
    }
}

#[test]
fn destroyed_index_falls_back_to_scan() {
    let mut s = Session::new();
    let mut db = score_db(&mut s);
    s.execute(&mut db, "define index note_by_name on NOTE (name)")
        .unwrap();
    let q = "range of n is NOTE\nretrieve (n.pitch) where n.name = 77";
    let (ex, _) = s.explain(&db, q).unwrap();
    assert_eq!(ex.vars[0].path, "index-eq(name)");
    s.execute(&mut db, "destroy index note_by_name").unwrap();
    let (ex, table) = s.explain(&db, q).unwrap();
    assert_eq!(ex.vars[0].path, "scan");
    assert_eq!(table.len(), 1);
}
