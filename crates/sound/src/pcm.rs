//! Digitized sound: "the simplest representation of sound in a digital
//! computer is merely an array of numbers" (§4.1).

/// Professional sample rate cited by the paper (48 000 samples/second).
pub const PRO_SAMPLE_RATE: u32 = 48_000;

/// Professional sample width cited by the paper (16-bit integers).
pub const PRO_BITS_PER_SAMPLE: u32 = 16;

/// A mono PCM buffer of 16-bit samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcmBuffer {
    /// Samples per second.
    pub sample_rate: u32,
    /// The samples.
    pub samples: Vec<i16>,
}

impl PcmBuffer {
    /// An empty buffer at the given rate.
    pub fn new(sample_rate: u32) -> PcmBuffer {
        assert!(sample_rate > 0, "sample rate must be positive");
        PcmBuffer {
            sample_rate,
            samples: Vec::new(),
        }
    }

    /// A silent buffer of the given duration.
    pub fn silence(sample_rate: u32, seconds: f64) -> PcmBuffer {
        let n = (seconds * sample_rate as f64).ceil() as usize;
        PcmBuffer {
            sample_rate,
            samples: vec![0; n],
        }
    }

    /// Duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate as f64
    }

    /// Raw storage size in bytes (two bytes per sample).
    pub fn byte_size(&self) -> usize {
        self.samples.len() * 2
    }

    /// Peak absolute amplitude.
    pub fn peak(&self) -> i16 {
        self.samples
            .iter()
            .map(|s| s.unsigned_abs())
            .max()
            .unwrap_or(0) as i16
    }

    /// Root-mean-square amplitude.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
        (sum / self.samples.len() as f64).sqrt()
    }

    /// Mixes another buffer into this one starting at `at_seconds`,
    /// extending as needed, with saturating addition.
    pub fn mix(&mut self, other: &PcmBuffer, at_seconds: f64) {
        assert_eq!(self.sample_rate, other.sample_rate, "rate mismatch in mix");
        let offset = (at_seconds * self.sample_rate as f64).round() as usize;
        let needed = offset + other.samples.len();
        if self.samples.len() < needed {
            self.samples.resize(needed, 0);
        }
        for (i, &s) in other.samples.iter().enumerate() {
            let mixed = self.samples[offset + i] as i32 + s as i32;
            self.samples[offset + i] = mixed.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        }
    }
}

/// The paper's storage arithmetic: bytes needed for `seconds` of sound at
/// the given rate and sample width. "Ten minutes of musical sound can be
/// recorded with acceptable accuracy by storing 57.6 megabytes of data."
pub fn storage_bytes(sample_rate: u32, bits_per_sample: u32, seconds: f64) -> u64 {
    (sample_rate as u64) * (bits_per_sample as u64 / 8) * seconds.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_claim_57_6_megabytes() {
        // §4.1: 48 kHz × 16-bit × 10 minutes = 57.6 MB.
        let bytes = storage_bytes(PRO_SAMPLE_RATE, PRO_BITS_PER_SAMPLE, 600.0);
        assert_eq!(bytes, 57_600_000);
    }

    #[test]
    fn silence_duration() {
        let b = PcmBuffer::silence(1000, 2.5);
        assert_eq!(b.samples.len(), 2500);
        assert!((b.seconds() - 2.5).abs() < 1e-9);
        assert_eq!(b.byte_size(), 5000);
        assert_eq!(b.peak(), 0);
        assert_eq!(b.rms(), 0.0);
    }

    #[test]
    fn mix_extends_and_saturates() {
        let mut a = PcmBuffer::silence(100, 1.0);
        let mut loud = PcmBuffer::new(100);
        loud.samples = vec![i16::MAX; 50];
        a.mix(&loud, 0.75);
        assert_eq!(a.samples.len(), 125, "extended past the original second");
        a.mix(&loud, 0.75); // saturate, not wrap
        assert_eq!(a.samples[80], i16::MAX);
    }
}
