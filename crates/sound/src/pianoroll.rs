//! Piano-roll notation (§4.5, fig. 3).
//!
//! "The piano roll is essentially a map of the state of a musical
//! keyboard against time … time progressing to the left along the x-axis,
//! and pitch (usually quantized by semitones) increasing upward along the
//! y-axis. Each note is represented by a black rectangle." Fig. 3 shades
//! the fugue entrances grey; here highlighted notes render with a
//! different fill character.

use mdm_notation::PerformedNote;

/// A rasterized piano roll.
#[derive(Debug, Clone, PartialEq)]
pub struct PianoRoll {
    /// Lowest MIDI key shown (bottom row).
    pub low_key: i32,
    /// Highest MIDI key shown (top row).
    pub high_key: i32,
    /// Seconds per column.
    pub seconds_per_column: f64,
    /// Rows, top (high pitch) first; each cell is a fill char or space.
    pub grid: Vec<Vec<char>>,
}

/// Fill used for ordinary notes ("black rectangles").
pub const NOTE_FILL: char = '█';
/// Fill used for highlighted notes (fig. 3's grey-shaded entrances).
pub const HIGHLIGHT_FILL: char = '▒';

impl PianoRoll {
    /// Rasters a performance. `highlight` selects notes drawn with the
    /// highlight fill (by index into `notes`).
    pub fn render(
        notes: &[PerformedNote],
        seconds_per_column: f64,
        highlight: &dyn Fn(usize, &PerformedNote) -> bool,
    ) -> PianoRoll {
        assert!(seconds_per_column > 0.0, "column width must be positive");
        let low_key = notes.iter().map(|n| n.key).min().unwrap_or(60) - 1;
        let high_key = notes.iter().map(|n| n.key).max().unwrap_or(72) + 1;
        let total = notes.iter().map(|n| n.end_seconds).fold(0.0, f64::max);
        let cols = ((total / seconds_per_column).ceil() as usize).max(1);
        let rows = (high_key - low_key + 1) as usize;
        let mut grid = vec![vec![' '; cols]; rows];
        for (i, n) in notes.iter().enumerate() {
            let row = (high_key - n.key) as usize;
            let c0 = (n.start_seconds / seconds_per_column).floor() as usize;
            let mut c1 = (n.end_seconds / seconds_per_column).ceil() as usize;
            c1 = c1.min(cols).max(c0 + 1);
            let fill = if highlight(i, n) {
                HIGHLIGHT_FILL
            } else {
                NOTE_FILL
            };
            for cell in &mut grid[row][c0..c1] {
                // Plain fill wins over highlight when notes overlap,
                // keeping entrances visually distinct, as in fig. 3.
                if *cell == ' ' || fill == NOTE_FILL {
                    *cell = fill;
                }
            }
        }
        PianoRoll {
            low_key,
            high_key,
            seconds_per_column,
            grid,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.grid.first().map_or(0, Vec::len)
    }

    /// Renders with a key-name gutter and a time axis.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (r, row) in self.grid.iter().enumerate() {
            let key = self.high_key - r as i32;
            let name = mdm_notation::Pitch::from_midi(key).to_string();
            let line: String = row.iter().collect();
            out.push_str(&format!("{name:>5} |{}\n", line.trim_end()));
        }
        out.push_str(&format!("      +{}\n", "-".repeat(self.width())));
        out.push_str(&format!(
            "       0s{:>width$}\n",
            format!("{:.1}s", self.width() as f64 * self.seconds_per_column),
            width = self.width().saturating_sub(2)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(key: i32, start: f64, end: f64, voice: usize) -> PerformedNote {
        PerformedNote {
            voice,
            key,
            start_seconds: start,
            end_seconds: end,
            velocity: 80,
        }
    }

    #[test]
    fn notes_are_rectangles() {
        let notes = vec![n(60, 0.0, 1.0, 0), n(64, 1.0, 2.0, 0)];
        let roll = PianoRoll::render(&notes, 0.25, &|_, _| false);
        // C4 occupies columns 0..4 on its row; E4 columns 4..8.
        let c4_row = (roll.high_key - 60) as usize;
        let e4_row = (roll.high_key - 64) as usize;
        assert_eq!(roll.grid[c4_row][0], NOTE_FILL);
        assert_eq!(roll.grid[c4_row][3], NOTE_FILL);
        assert_eq!(roll.grid[c4_row][4], ' ');
        assert_eq!(roll.grid[e4_row][4], NOTE_FILL);
    }

    #[test]
    fn pitch_increases_upward() {
        let notes = vec![n(60, 0.0, 1.0, 0), n(72, 0.0, 1.0, 0)];
        let roll = PianoRoll::render(&notes, 0.5, &|_, n| n.key == 72);
        let top_fill_row = roll
            .grid
            .iter()
            .position(|r| r.contains(&HIGHLIGHT_FILL))
            .unwrap();
        let bottom_fill_row = roll
            .grid
            .iter()
            .position(|r| r.contains(&NOTE_FILL))
            .unwrap();
        assert!(
            top_fill_row < bottom_fill_row,
            "higher pitch renders higher"
        );
    }

    #[test]
    fn highlight_marks_selected_notes() {
        let notes = vec![n(60, 0.0, 1.0, 0), n(60, 1.0, 2.0, 1)];
        let roll = PianoRoll::render(&notes, 0.5, &|_, note| note.voice == 1);
        let row = (roll.high_key - 60) as usize;
        assert_eq!(roll.grid[row][0], NOTE_FILL);
        assert_eq!(roll.grid[row][2], HIGHLIGHT_FILL);
    }

    #[test]
    fn short_notes_still_visible() {
        let notes = vec![n(60, 0.0, 0.01, 0)];
        let roll = PianoRoll::render(&notes, 0.5, &|_, _| false);
        let row = (roll.high_key - 60) as usize;
        assert_eq!(roll.grid[row][0], NOTE_FILL, "at least one column wide");
    }

    #[test]
    fn text_output_has_gutter_and_axis() {
        let notes = vec![n(69, 0.0, 1.0, 0)];
        let roll = PianoRoll::render(&notes, 0.25, &|_, _| false);
        let text = roll.to_text();
        assert!(text.contains("A4 |"), "{text}");
        assert!(text.contains("0s"));
        assert!(text.lines().count() >= 3);
    }
}
