//! # mdm-sound
//!
//! Sound representations for the music data manager (§4.1, §4.5, §4.6):
//!
//! * [`pcm`] — digitized sound as arrays of 16-bit samples, including the
//!   paper's storage arithmetic (48 kHz × 16 bits × 10 min = 57.6 MB);
//! * [`midi`] — MIDI event lists: note on/off and control events with
//!   performance-time stamps (fig. 13's bottom layer);
//! * [`synth`] — an additive synthesizer turning performances into PCM;
//! * [`codec`] — the two compaction routes of §4.1: lossless redundancy
//!   elimination and lossy perceptual coding;
//! * [`pianoroll`] — piano-roll rasterization with highlighted entrances
//!   (fig. 3).
//!
//! ```
//! use mdm_notation::fixtures::bwv578_subject;
//! use mdm_sound::{midi::MidiEventList, pianoroll::PianoRoll};
//!
//! let score = bwv578_subject();
//! let notes = mdm_notation::perform(&score.movements[0]);
//! let midi = MidiEventList::from_performance(&notes);
//! assert!(midi.events.len() >= 2 * notes.len());
//! let roll = PianoRoll::render(&notes, 0.125, &|_, _| false);
//! println!("{}", roll.to_text());
//! ```

pub mod codec;
pub mod midi;
pub mod pcm;
pub mod pianoroll;
pub mod synth;

pub use codec::ratio;
pub use midi::{MidiEvent, MidiEventList, MidiKind};
pub use pcm::{storage_bytes, PcmBuffer, PRO_BITS_PER_SAMPLE, PRO_SAMPLE_RATE};
pub use pianoroll::{PianoRoll, HIGHLIGHT_FILL, NOTE_FILL};
pub use synth::{render_midi, render_performance, Timbre};
