//! MIDI event lists (§4.6, fig. 13): "individual musical 'events' have
//! particular starting and ending times … their temporal parameters are
//! given in performance time (i.e. seconds)".

use mdm_notation::PerformedNote;

/// A MIDI event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MidiKind {
    /// Note on: key and velocity.
    NoteOn {
        /// MIDI key number.
        key: u8,
        /// Velocity 1–127.
        velocity: u8,
    },
    /// Note off.
    NoteOff {
        /// MIDI key number.
        key: u8,
    },
    /// A control event at a point in time, e.g. the sostenuto pedal
    /// (controller 66) — fig. 11's "MIDI control" entity.
    Control {
        /// Controller number.
        controller: u8,
        /// Controller value.
        value: u8,
    },
}

/// One timestamped MIDI event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MidiEvent {
    /// Performance time in seconds.
    pub time: f64,
    /// Channel (0–15), one per voice by convention here.
    pub channel: u8,
    /// What happened.
    pub kind: MidiKind,
}

/// An ordered MIDI event list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MidiEventList {
    /// Events in time order (offs before ons at equal times).
    pub events: Vec<MidiEvent>,
}

impl MidiEventList {
    /// Builds an event list from performed notes (voice index becomes the
    /// channel, modulo 16).
    pub fn from_performance(notes: &[PerformedNote]) -> MidiEventList {
        let mut events = Vec::with_capacity(notes.len() * 2);
        for n in notes {
            let channel = (n.voice % 16) as u8;
            events.push(MidiEvent {
                time: n.start_seconds,
                channel,
                kind: MidiKind::NoteOn {
                    key: n.key.clamp(0, 127) as u8,
                    velocity: n.velocity.clamp(1, 127),
                },
            });
            events.push(MidiEvent {
                time: n.end_seconds,
                channel,
                kind: MidiKind::NoteOff {
                    key: n.key.clamp(0, 127) as u8,
                },
            });
        }
        let mut list = MidiEventList { events };
        list.sort();
        list
    }

    /// Sorts by time, note-offs before note-ons at the same instant (so
    /// repeated notes retrigger cleanly).
    pub fn sort(&mut self) {
        self.events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then_with(|| rank(&a.kind).cmp(&rank(&b.kind)))
                .then_with(|| a.channel.cmp(&b.channel))
        });
        fn rank(k: &MidiKind) -> u8 {
            match k {
                MidiKind::NoteOff { .. } => 0,
                MidiKind::Control { .. } => 1,
                MidiKind::NoteOn { .. } => 2,
            }
        }
    }

    /// Adds a control event, keeping order.
    pub fn push_control(&mut self, time: f64, channel: u8, controller: u8, value: u8) {
        self.events.push(MidiEvent {
            time,
            channel,
            kind: MidiKind::Control { controller, value },
        });
        self.sort();
    }

    /// The notes currently sounding at time `t`, as (channel, key) pairs.
    pub fn sounding_at(&self, t: f64) -> Vec<(u8, u8)> {
        let mut on: Vec<(u8, u8)> = Vec::new();
        for e in &self.events {
            if e.time > t {
                break;
            }
            match e.kind {
                MidiKind::NoteOn { key, .. } => on.push((e.channel, key)),
                MidiKind::NoteOff { key } => {
                    if let Some(i) = on.iter().position(|&(c, k)| c == e.channel && k == key) {
                        on.remove(i);
                    }
                }
                MidiKind::Control { .. } => {}
            }
        }
        on
    }

    /// Total duration (time of the last event).
    pub fn seconds(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time)
    }

    /// Reconstructs (start, end, key, channel, velocity) note spans.
    pub fn note_spans(&self) -> Vec<(f64, f64, u8, u8, u8)> {
        let mut open: Vec<(f64, u8, u8, u8)> = Vec::new();
        let mut out = Vec::new();
        for e in &self.events {
            match e.kind {
                MidiKind::NoteOn { key, velocity } => {
                    open.push((e.time, key, e.channel, velocity));
                }
                MidiKind::NoteOff { key } => {
                    if let Some(i) = open
                        .iter()
                        .position(|&(_, k, c, _)| k == key && c == e.channel)
                    {
                        let (start, k, c, v) = open.remove(i);
                        out.push((start, e.time, k, c, v));
                    }
                }
                MidiKind::Control { .. } => {}
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(voice: usize, key: i32, start: f64, end: f64) -> PerformedNote {
        PerformedNote {
            voice,
            key,
            start_seconds: start,
            end_seconds: end,
            velocity: 80,
        }
    }

    #[test]
    fn event_list_from_notes() {
        let notes = vec![note(0, 60, 0.0, 1.0), note(1, 67, 0.5, 2.0)];
        let list = MidiEventList::from_performance(&notes);
        assert_eq!(list.events.len(), 4);
        assert_eq!(list.seconds(), 2.0);
        assert_eq!(list.sounding_at(0.75).len(), 2);
        assert_eq!(list.sounding_at(1.5), vec![(1, 67)]);
    }

    #[test]
    fn off_before_on_at_same_instant() {
        // Repeated middle C: off at 1.0 must precede on at 1.0.
        let notes = vec![note(0, 60, 0.0, 1.0), note(0, 60, 1.0, 2.0)];
        let list = MidiEventList::from_performance(&notes);
        let kinds: Vec<bool> = list
            .events
            .iter()
            .map(|e| matches!(e.kind, MidiKind::NoteOn { .. }))
            .collect();
        assert_eq!(kinds, vec![true, false, true, false]);
        assert_eq!(list.sounding_at(2.5), vec![]);
    }

    #[test]
    fn spans_roundtrip() {
        let notes = vec![
            note(0, 60, 0.0, 1.0),
            note(0, 64, 0.25, 0.75),
            note(2, 72, 1.0, 3.0),
        ];
        let list = MidiEventList::from_performance(&notes);
        let spans = list.note_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], (0.0, 1.0, 60, 0, 80));
        assert_eq!(spans[1], (0.25, 0.75, 64, 0, 80));
        assert_eq!(spans[2], (1.0, 3.0, 72, 2, 80));
    }

    #[test]
    fn control_events_order() {
        let mut list = MidiEventList::from_performance(&[note(0, 60, 0.0, 1.0)]);
        list.push_control(0.5, 0, 66, 127); // sostenuto down
        let idx = list
            .events
            .iter()
            .position(|e| matches!(e.kind, MidiKind::Control { .. }))
            .unwrap();
        assert_eq!(list.events[idx].time, 0.5);
        assert!(idx > 0 && idx < list.events.len() - 1);
    }
}
