//! An additive synthesizer: renders performances into PCM.
//!
//! Stands in for the sound-generation side of the paper's MDM clients
//! (compositional tools produce "sound and graphic representations"). A
//! handful of harmonics with an attack/release envelope is enough to
//! exercise the digitized-sound pipeline and the audio codecs with
//! realistically structured (non-random) signal.

use std::f64::consts::TAU;

use mdm_notation::PerformedNote;

use crate::midi::MidiEventList;
use crate::pcm::PcmBuffer;

/// Relative harmonic amplitudes of a timbre.
#[derive(Debug, Clone, PartialEq)]
pub struct Timbre {
    /// Amplitude per harmonic (index 0 = fundamental).
    pub harmonics: Vec<f64>,
    /// Attack time in seconds.
    pub attack: f64,
    /// Release time in seconds.
    pub release: f64,
}

impl Timbre {
    /// An organ-like timbre (strong odd harmonics, soft envelope).
    pub fn organ() -> Timbre {
        Timbre {
            harmonics: vec![1.0, 0.4, 0.5, 0.15, 0.25],
            attack: 0.01,
            release: 0.05,
        }
    }

    /// A plucked-string-like timbre (bright, fast decay shaped by
    /// release).
    pub fn pluck() -> Timbre {
        Timbre {
            harmonics: vec![1.0, 0.6, 0.35, 0.2, 0.1, 0.05],
            attack: 0.002,
            release: 0.2,
        }
    }

    /// A pure sine.
    pub fn sine() -> Timbre {
        Timbre {
            harmonics: vec![1.0],
            attack: 0.01,
            release: 0.01,
        }
    }
}

fn midi_frequency(key: f64) -> f64 {
    440.0 * 2f64.powf((key - 69.0) / 12.0)
}

/// Renders one note into a fresh buffer.
fn render_note(
    key: u8,
    velocity: u8,
    seconds: f64,
    timbre: &Timbre,
    sample_rate: u32,
) -> PcmBuffer {
    let n = ((seconds + timbre.release) * sample_rate as f64).ceil() as usize;
    let mut out = PcmBuffer::new(sample_rate);
    out.samples.reserve(n);
    let f0 = midi_frequency(key as f64);
    let amp = (velocity as f64 / 127.0) * 8000.0;
    let norm: f64 = timbre.harmonics.iter().sum::<f64>().max(1e-9);
    for i in 0..n {
        let t = i as f64 / sample_rate as f64;
        // Envelope: linear attack, sustain, linear release after note end.
        let env = if t < timbre.attack {
            t / timbre.attack
        } else if t < seconds {
            1.0
        } else {
            (1.0 - (t - seconds) / timbre.release).max(0.0)
        };
        let mut s = 0.0;
        for (h, &a) in timbre.harmonics.iter().enumerate() {
            let f = f0 * (h + 1) as f64;
            if f * 2.0 > sample_rate as f64 {
                break; // avoid aliasing above Nyquist
            }
            s += a * (TAU * f * t).sin();
        }
        out.samples.push(((amp * env * s) / norm) as i16);
    }
    out
}

/// Renders a set of performed notes into a single mixed buffer.
pub fn render_performance(notes: &[PerformedNote], timbre: &Timbre, sample_rate: u32) -> PcmBuffer {
    let total = notes.iter().map(|n| n.end_seconds).fold(0.0, f64::max);
    let mut out = PcmBuffer::silence(sample_rate, total + timbre.release);
    for n in notes {
        let dur = (n.end_seconds - n.start_seconds).max(0.0);
        let rendered = render_note(
            n.key.clamp(0, 127) as u8,
            n.velocity,
            dur,
            timbre,
            sample_rate,
        );
        out.mix(&rendered, n.start_seconds);
    }
    out
}

/// Renders a MIDI event list (via its note spans).
pub fn render_midi(list: &MidiEventList, timbre: &Timbre, sample_rate: u32) -> PcmBuffer {
    let notes: Vec<PerformedNote> = list
        .note_spans()
        .into_iter()
        .map(|(start, end, key, channel, velocity)| PerformedNote {
            voice: channel as usize,
            key: key as i32,
            start_seconds: start,
            end_seconds: end,
            velocity,
        })
        .collect();
    render_performance(&notes, timbre, sample_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a440(seconds: f64) -> PerformedNote {
        PerformedNote {
            voice: 0,
            key: 69,
            start_seconds: 0.0,
            end_seconds: seconds,
            velocity: 100,
        }
    }

    #[test]
    fn renders_nonsilent_audio() {
        let pcm = render_performance(&[a440(0.5)], &Timbre::organ(), 8000);
        assert!(pcm.seconds() >= 0.5);
        assert!(pcm.peak() > 1000, "audible signal, peak {}", pcm.peak());
        assert!(pcm.rms() > 100.0);
    }

    #[test]
    fn sine_fundamental_period_is_correct() {
        // A 440 Hz sine at 44100 Hz: zero crossings ≈ 880 per second.
        let pcm = render_performance(&[a440(1.0)], &Timbre::sine(), 44_100);
        let crossings = pcm
            .samples
            .windows(2)
            .filter(|w| (w[0] >= 0) != (w[1] >= 0))
            .count();
        let per_second = crossings as f64 / pcm.seconds();
        assert!((per_second - 880.0).abs() < 20.0, "got {per_second}");
    }

    #[test]
    fn velocity_scales_amplitude() {
        let quiet = render_performance(
            &[PerformedNote {
                velocity: 20,
                ..a440(0.25)
            }],
            &Timbre::organ(),
            8000,
        );
        let loud = render_performance(
            &[PerformedNote {
                velocity: 120,
                ..a440(0.25)
            }],
            &Timbre::organ(),
            8000,
        );
        assert!(loud.rms() > quiet.rms() * 3.0);
    }

    #[test]
    fn simultaneous_notes_mix() {
        let notes = vec![
            a440(0.5),
            PerformedNote {
                key: 64,
                ..a440(0.5)
            },
            PerformedNote {
                key: 60,
                ..a440(0.5)
            },
        ];
        let chord = render_performance(&notes, &Timbre::organ(), 8000);
        let single = render_performance(&[a440(0.5)], &Timbre::organ(), 8000);
        assert!(chord.rms() > single.rms());
    }

    #[test]
    fn high_keys_do_not_alias() {
        // Key 127 ≈ 12.5 kHz. At 44.1 kHz the fundamental renders; at
        // 8 kHz even the fundamental exceeds Nyquist and is dropped
        // rather than aliased.
        let n = PerformedNote {
            key: 127,
            ..a440(0.1)
        };
        let hi = render_performance(std::slice::from_ref(&n), &Timbre::organ(), 44_100);
        assert!(hi.peak() > 0);
        let lo = render_performance(&[n], &Timbre::organ(), 8000);
        assert_eq!(lo.peak(), 0, "no aliased content");
    }
}
