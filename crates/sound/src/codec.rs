//! Audio codecs: the two compaction routes of §4.1.
//!
//! "From an information theoretic point of view, the digitized sound
//! stream can be compacted in two ways: by eliminating redundant
//! information from the sound stream \[Wil85\], and by eliminating aurally
//! imperceptible information from the sound stream \[Kra79\]."
//!
//! * [`redundancy`] — lossless: second-order delta prediction followed by
//!   zig-zag varint coding with zero-run compression. Musical signal is
//!   smooth, so residuals are small.
//! * [`perceptual`] — lossy: μ-law companding plus optional bit-depth
//!   reduction, discarding level detail the ear resolves poorly.

use crate::pcm::PcmBuffer;

/// Lossless redundancy-elimination codec.
pub mod redundancy {
    use super::*;

    fn zigzag(v: i32) -> u32 {
        ((v << 1) ^ (v >> 31)) as u32
    }

    fn unzigzag(v: u32) -> i32 {
        ((v >> 1) as i32) ^ -((v & 1) as i32)
    }

    fn put_varint(out: &mut Vec<u8>, mut v: u32) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u32> {
        let mut v: u32 = 0;
        let mut shift = 0;
        loop {
            let byte = *buf.get(*pos)?;
            *pos += 1;
            v |= ((byte & 0x7F) as u32) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift > 28 {
                return None;
            }
        }
    }

    /// Encodes a buffer losslessly. Format: `[rate: u32][len: u64]` then a
    /// stream of tokens: `0x00 <count>` for runs of ≥4 zero residuals,
    /// otherwise zig-zag varints of second-order deltas (offset by 1 so a
    /// literal zero token never collides with the run marker).
    pub fn encode(pcm: &PcmBuffer) -> Vec<u8> {
        let mut out = Vec::with_capacity(pcm.samples.len());
        out.extend_from_slice(&pcm.sample_rate.to_le_bytes());
        out.extend_from_slice(&(pcm.samples.len() as u64).to_le_bytes());
        // Second-order prediction: residual = x[i] − 2x[i−1] + x[i−2].
        let residual = |i: usize| -> i32 {
            let x = |j: isize| -> i32 {
                if j < 0 {
                    0
                } else {
                    pcm.samples[j as usize] as i32
                }
            };
            x(i as isize) - 2 * x(i as isize - 1) + x(i as isize - 2)
        };
        let mut i = 0;
        while i < pcm.samples.len() {
            // Count a run of zero residuals.
            let mut run = 0;
            while i + run < pcm.samples.len() && residual(i + run) == 0 {
                run += 1;
            }
            if run >= 4 {
                out.push(0x00);
                put_varint(&mut out, run as u32);
                i += run;
                continue;
            }
            let r = residual(i);
            put_varint(&mut out, zigzag(r) + 1);
            i += 1;
        }
        out
    }

    /// Decodes a buffer produced by [`encode`].
    pub fn decode(buf: &[u8]) -> Option<PcmBuffer> {
        if buf.len() < 12 {
            return None;
        }
        let sample_rate = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let len = u64::from_le_bytes(buf[4..12].try_into().ok()?) as usize;
        let mut pos = 12;
        let mut samples: Vec<i16> = Vec::with_capacity(len);
        let x = |samples: &[i16], back: usize| -> i32 {
            if samples.len() < back {
                0
            } else {
                samples[samples.len() - back] as i32
            }
        };
        while samples.len() < len {
            let token = get_varint(buf, &mut pos)?;
            if token == 0 {
                let run = get_varint(buf, &mut pos)? as usize;
                for _ in 0..run {
                    if samples.len() >= len {
                        return None;
                    }
                    let v = 2 * x(&samples, 1) - x(&samples, 2);
                    samples.push(v.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
                }
            } else {
                let r = unzigzag(token - 1);
                let v = r + 2 * x(&samples, 1) - x(&samples, 2);
                samples.push(v.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
            }
        }
        Some(PcmBuffer {
            sample_rate,
            samples,
        })
    }
}

/// Lossy perceptual codec.
pub mod perceptual {
    use super::*;

    const MU: f64 = 255.0;

    fn compress(x: f64) -> f64 {
        // μ-law: sign(x) · ln(1 + μ|x|) / ln(1 + μ), x ∈ [−1, 1].
        x.signum() * (1.0 + MU * x.abs()).ln() / (1.0 + MU).ln()
    }

    fn expand(y: f64) -> f64 {
        y.signum() * ((1.0 + MU).powf(y.abs()) - 1.0) / MU
    }

    /// Encodes with μ-law companding to `bits` bits per sample
    /// (1 ..= 16). Format: `[rate: u32][len: u64][bits: u8]` then
    /// bit-packed codes.
    pub fn encode(pcm: &PcmBuffer, bits: u8) -> Vec<u8> {
        let bits = bits.clamp(2, 16);
        let mut out = Vec::new();
        out.extend_from_slice(&pcm.sample_rate.to_le_bytes());
        out.extend_from_slice(&(pcm.samples.len() as u64).to_le_bytes());
        out.push(bits);
        let levels = (1u32 << bits) - 1;
        let mut acc: u64 = 0;
        let mut nbits = 0u32;
        for &s in &pcm.samples {
            let x = s as f64 / 32768.0;
            let y = compress(x); // in [−1, 1]
            let code = (((y + 1.0) / 2.0) * levels as f64).round() as u64;
            acc |= code << nbits;
            nbits += bits as u32;
            while nbits >= 8 {
                out.push((acc & 0xFF) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xFF) as u8);
        }
        out
    }

    /// Decodes a buffer produced by [`encode`].
    pub fn decode(buf: &[u8]) -> Option<PcmBuffer> {
        if buf.len() < 13 {
            return None;
        }
        let sample_rate = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let len = u64::from_le_bytes(buf[4..12].try_into().ok()?) as usize;
        let bits = buf[12] as u32;
        let levels = (1u32 << bits) - 1;
        let mut samples = Vec::with_capacity(len);
        let mut acc: u64 = 0;
        let mut nbits = 0u32;
        let mut pos = 13;
        for _ in 0..len {
            while nbits < bits {
                acc |= (*buf.get(pos)? as u64) << nbits;
                pos += 1;
                nbits += 8;
            }
            let code = acc & ((1u64 << bits) - 1);
            acc >>= bits;
            nbits -= bits;
            let y = (code as f64 / levels as f64) * 2.0 - 1.0;
            let x = expand(y);
            samples.push((x * 32767.0).clamp(-32768.0, 32767.0) as i16);
        }
        Some(PcmBuffer {
            sample_rate,
            samples,
        })
    }

    /// Signal-to-noise ratio in dB between an original and its decode.
    pub fn snr_db(original: &PcmBuffer, decoded: &PcmBuffer) -> f64 {
        let n = original.samples.len().min(decoded.samples.len());
        let mut signal = 0.0;
        let mut noise = 0.0;
        for i in 0..n {
            let s = original.samples[i] as f64;
            let e = s - decoded.samples[i] as f64;
            signal += s * s;
            noise += e * e;
        }
        if noise == 0.0 {
            return f64::INFINITY;
        }
        10.0 * (signal / noise).log10()
    }
}

/// Compression ratio (original bytes / encoded bytes).
pub fn ratio(pcm: &PcmBuffer, encoded_len: usize) -> f64 {
    pcm.byte_size() as f64 / encoded_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{render_performance, Timbre};
    use mdm_notation::PerformedNote;

    fn musical_signal() -> PcmBuffer {
        // The paper's professional rate: prediction residuals shrink as
        // the oversampling factor grows, which is what makes redundancy
        // elimination effective on music.
        let notes = vec![
            PerformedNote {
                voice: 0,
                key: 60,
                start_seconds: 0.0,
                end_seconds: 0.4,
                velocity: 90,
            },
            PerformedNote {
                voice: 0,
                key: 67,
                start_seconds: 0.2,
                end_seconds: 0.6,
                velocity: 70,
            },
        ];
        render_performance(&notes, &Timbre::organ(), crate::pcm::PRO_SAMPLE_RATE)
    }

    #[test]
    fn redundancy_roundtrip_lossless() {
        let pcm = musical_signal();
        let enc = redundancy::encode(&pcm);
        let dec = redundancy::decode(&enc).unwrap();
        assert_eq!(dec, pcm);
    }

    #[test]
    fn redundancy_compresses_musical_signal() {
        let pcm = musical_signal();
        let enc = redundancy::encode(&pcm);
        let r = ratio(&pcm, enc.len());
        assert!(r > 1.2, "smooth signal should compress, got ratio {r:.2}");
    }

    #[test]
    fn redundancy_compresses_silence_heavily() {
        let pcm = PcmBuffer::silence(48_000, 1.0);
        let enc = redundancy::encode(&pcm);
        assert!(ratio(&pcm, enc.len()) > 1000.0);
    }

    #[test]
    fn redundancy_handles_extremes() {
        let mut pcm = PcmBuffer::new(100);
        pcm.samples = vec![i16::MAX, i16::MIN, 0, -1, 1, i16::MAX, i16::MAX];
        let dec = redundancy::decode(&redundancy::encode(&pcm)).unwrap();
        assert_eq!(dec, pcm);
    }

    #[test]
    fn redundancy_rejects_truncation() {
        let pcm = musical_signal();
        let enc = redundancy::encode(&pcm);
        assert!(redundancy::decode(&enc[..enc.len() / 2]).is_none());
        assert!(redundancy::decode(&enc[..4]).is_none());
    }

    #[test]
    fn perceptual_roundtrip_is_close() {
        let pcm = musical_signal();
        let enc = perceptual::encode(&pcm, 8);
        let dec = perceptual::decode(&enc).unwrap();
        assert_eq!(dec.samples.len(), pcm.samples.len());
        let snr = perceptual::snr_db(&pcm, &dec);
        assert!(
            snr > 20.0,
            "8-bit μ-law should exceed 20 dB SNR, got {snr:.1}"
        );
    }

    #[test]
    fn perceptual_halves_storage_at_8_bits() {
        let pcm = musical_signal();
        let enc = perceptual::encode(&pcm, 8);
        let r = ratio(&pcm, enc.len());
        assert!(r > 1.9 && r < 2.1, "16→8 bits ≈ 2×, got {r:.2}");
    }

    #[test]
    fn fewer_bits_lower_snr() {
        let pcm = musical_signal();
        let snr_at = |bits| {
            let dec = perceptual::decode(&perceptual::encode(&pcm, bits)).unwrap();
            perceptual::snr_db(&pcm, &dec)
        };
        assert!(snr_at(12) > snr_at(8));
        assert!(snr_at(8) > snr_at(4));
    }
}
