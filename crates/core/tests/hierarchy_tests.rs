//! Tests for the newly populated fig. 11 hierarchies: control events,
//! lyric texts/syllables, and derived beam GROUPs through the recursive
//! `group_content` ordering.

use mdm_core::MusicDataManager;
use mdm_model::Value;
use mdm_notation::fixtures::{bwv578_subject, gloria_fragment};
use mdm_notation::ControlEvent;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mdm-hier-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn control_events_roundtrip() {
    let dir = tmpdir("controls");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    let mut score = bwv578_subject();
    score.movements[0].controls.push(ControlEvent {
        beat: (4, 1),
        controller: 66, // sostenuto, the paper's example
        value: 127,
        voice: 0,
    });
    score.movements[0].controls.push(ControlEvent {
        beat: (17, 2),
        controller: 66,
        value: 0,
        voice: 0,
    });
    let id = mdm.store_score(&score).unwrap();
    let back = mdm.load_score(id).unwrap();
    assert_eq!(back, score);
    // The entities carry performance-time stamps.
    let t = mdm
        .query("range of c is MIDI_CONTROL retrieve (c.controller, c.time_seconds)")
        .unwrap();
    assert_eq!(t.len(), 2);
    let Value::Float(secs) = t.rows[0][1] else {
        panic!()
    };
    assert!((secs - 4.0 * 60.0 / 84.0).abs() < 1e-9, "beat 4 at 84 bpm");
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lyrics_become_text_and_syllables() {
    let dir = tmpdir("lyrics");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    mdm.store_score(&gloria_fragment()).unwrap();
    let db = mdm.database();
    let texts = db.instances_of("TEXT").unwrap();
    assert_eq!(texts.len(), 1);
    let line = db
        .get_attr(texts[0], "content")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(line.starts_with("Glo-"), "{line}");
    let syllables = db.ord_children("syllable_in_text", Some(texts[0])).unwrap();
    assert_eq!(syllables.len(), 9, "nine underlaid syllables");
    // Every syllable is related to a NOTE through LYRIC.
    for &syl in &syllables {
        let notes = db.related("LYRIC", syl, "note").unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(db.type_of(notes[0]).unwrap(), "NOTE");
    }
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn beam_groups_stored_recursively() {
    let dir = tmpdir("groups");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    mdm.store_score(&bwv578_subject()).unwrap();
    let db = mdm.database();
    let groups = db.instances_of("GROUP").unwrap();
    assert!(
        !groups.is_empty(),
        "the subject's eighths and sixteenths beam"
    );
    // group_content is recursive: at least one GROUP has a GROUP child
    // (the sixteenth-note figuration in m.3 nests).
    let gc = db.schema().ordering_id("group_content").unwrap();
    let nested = groups.iter().any(|&g| {
        db.store()
            .ordering_children(gc, Some(g))
            .iter()
            .any(|&c| db.type_of(c).unwrap() == "GROUP")
    });
    assert!(nested, "expected nested beam groups");
    // Chords in groups are the same entities as in voice_content
    // (multiple parents, §5.5).
    let chord_in_group = groups.iter().find_map(|&g| {
        db.store()
            .ordering_children(gc, Some(g))
            .iter()
            .copied()
            .find(|&c| db.type_of(c).unwrap() == "CHORD")
    });
    let chord = chord_in_group.expect("some chord is beamed");
    assert!(db.ord_parent("voice_content", chord).unwrap().is_some());
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editor_commit_cleans_derived_hierarchies() {
    // delete_score (used by the editor) must not leak GROUP/TEXT/
    // SYLLABLE/MIDI_CONTROL entities.
    let dir = tmpdir("clean");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    let mut score = gloria_fragment();
    score.movements[0].controls.push(ControlEvent {
        beat: (1, 1),
        controller: 64,
        value: 127,
        voice: 0,
    });
    let id = mdm.store_score(&score).unwrap();
    let before = (
        mdm.database().instances_of("GROUP").unwrap().len(),
        mdm.database().instances_of("TEXT").unwrap().len(),
        mdm.database().instances_of("SYLLABLE").unwrap().len(),
        mdm.database().instances_of("MIDI_CONTROL").unwrap().len(),
    );
    assert!(before.1 > 0 && before.2 > 0 && before.3 > 0);
    mdm_core::delete_score(mdm.database_mut(), id).unwrap();
    assert_eq!(mdm.database().instances_of("GROUP").unwrap().len(), 0);
    assert_eq!(mdm.database().instances_of("TEXT").unwrap().len(), 0);
    assert_eq!(mdm.database().instances_of("SYLLABLE").unwrap().len(), 0);
    assert_eq!(
        mdm.database().instances_of("MIDI_CONTROL").unwrap().len(),
        0
    );
    assert_eq!(mdm.database().instances_of("NOTE").unwrap().len(), 0);
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}
