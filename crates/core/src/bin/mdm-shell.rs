//! An interactive QUEL shell for the music data manager.
//!
//! ```text
//! cargo run -p mdm-core --bin mdm-shell -- /path/to/database
//! ```
//!
//! Each input line is a DDL/QUEL program; `\` at end of line continues
//! onto the next. Dot-commands:
//!
//! ```text
//! .help         this text
//! .schema       entity types, relationships, orderings
//! .census       the fig. 11 entity census with instance counts
//! .scores       stored scores
//! .save         persist the database through the storage engine
//! .quit         exit (saving)
//! \stats        live metrics: storage engine, QUEL pipeline, requests
//! \stats json   the same snapshot as JSON
//! \stats prom   the same snapshot in Prometheus text format
//! ```

use std::io::{BufRead, Write};

use mdm_core::MusicDataManager;
use mdm_lang::StmtResult;
use mdm_obs::{MetricValue, Snapshot};

/// Renders a metrics snapshot for terminal reading: one line per series,
/// histograms summarized as count/sum/mean.
fn print_stats(snap: &Snapshot) {
    for e in &snap.entries {
        let labels = if e.labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = e
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{{{}}}", pairs.join(","))
        };
        match &e.value {
            MetricValue::Counter(v) => println!("{}{labels} = {v}", e.name),
            MetricValue::Gauge(v) => println!("{}{labels} = {v}", e.name),
            MetricValue::Histogram(h) => {
                let mean = h
                    .mean()
                    .map(|m| format!("{m:.1}"))
                    .unwrap_or_else(|| "-".into());
                println!(
                    "{}{labels} = count {} sum {} mean {mean}",
                    e.name, h.count, h.sum
                );
            }
        }
    }
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("mdm-shell-{}", std::process::id())));
    let mut mdm = match MusicDataManager::open(&dir) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot open database at {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    println!("music data manager — database at {}", dir.display());
    println!("QUEL with is/before/after/under; .help for commands");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("mdm> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim_end();
        if let Some(prefix) = trimmed.strip_suffix('\\') {
            buffer.push_str(prefix);
            buffer.push('\n');
            continue;
        }
        buffer.push_str(trimmed);
        let program = std::mem::take(&mut buffer);
        let program = program.trim();
        if program.is_empty() {
            continue;
        }
        match program {
            ".quit" | ".exit" => break,
            ".help" => {
                println!(".help .schema .census .scores .save .quit");
                println!("\\stats [json|prom]   live metrics snapshot");
                println!("anything else is DDL/QUEL, e.g.:");
                println!("  define entity C (name = string)");
                println!("  append to C (name = \"x\")");
                println!("  range of n is NOTE");
                println!("  retrieve (n.midi_key) where n before m in note_in_chord");
            }
            ".census" => print!("{}", mdm.census()),
            ".schema" => {
                let schema = mdm.database().schema();
                for e in schema.entity_types() {
                    let attrs: Vec<String> = e
                        .attributes
                        .iter()
                        .map(|a| format!("{} = {}", a.name, a.ty.name()))
                        .collect();
                    println!("entity {} ({})", e.name, attrs.join(", "));
                }
                for r in schema.relationships() {
                    let roles: Vec<&str> = r.roles.iter().map(|x| x.name.as_str()).collect();
                    println!("relationship {} ({})", r.name, roles.join(", "));
                }
                for (i, o) in schema.orderings().iter().enumerate() {
                    let name = o.name.clone().unwrap_or_else(|| format!("#{i}"));
                    println!("ordering {name}");
                }
            }
            ".scores" => match mdm.list_scores() {
                Ok(scores) => {
                    for (id, title) in scores {
                        println!("@{id}  {title}");
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            },
            ".save" => match mdm.save() {
                Ok(()) => println!("saved"),
                Err(e) => eprintln!("error: {e}"),
            },
            "\\stats" => print_stats(&mdm.metrics_snapshot()),
            "\\stats json" => println!("{}", mdm.metrics_snapshot().to_json()),
            "\\stats prom" => print!("{}", mdm.metrics_snapshot().to_prometheus()),
            _ => match mdm.execute(program) {
                Ok(results) => {
                    for r in results {
                        match r {
                            StmtResult::Rows(t) => print!("{t}"),
                            StmtResult::Defined(what) => println!("defined {what}"),
                            StmtResult::RangeDeclared => println!("range declared"),
                            StmtResult::Appended(n) => println!("appended {n}"),
                            StmtResult::Replaced(n) => println!("replaced {n}"),
                            StmtResult::Deleted(n) => println!("deleted {n}"),
                        }
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            },
        }
    }
    if let Err(e) = mdm.save() {
        eprintln!("warning: final save failed: {e}");
    }
}
