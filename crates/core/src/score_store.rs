//! Storing notation scores as CMN entities and loading them back.
//!
//! This is the MDM's central service: clients hand it high-level score
//! structures; it decomposes them into the §7 entity schema — the full
//! fig. 13 temporal hierarchy (score → movement → measure → sync, chords
//! at syncs, events and MIDI below), plus voices, notes, ties, and
//! lyrics — so any client can then query the same data through QUEL.

use mdm_model::{Database, EntityId, Value};
use mdm_notation::duration::{BaseDuration, Duration};
use mdm_notation::pitch::Step;
use mdm_notation::rational::Rational;
use mdm_notation::score::{Articulation, Chord, Dynamic, Note, Rest, Voice, VoiceElement};
use mdm_notation::temporal::{TempoMap, TempoMark};
use mdm_notation::{events, Clef, KeySignature, Movement, Score, TimeSignature};

use crate::cmn_schema;
use crate::error::{CoreError, Result};

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn i(v: i64) -> Value {
    Value::Integer(v)
}

fn opt_s(v: &Option<String>) -> Value {
    v.as_ref().map_or(Value::Null, |x| s(x))
}

// ----------------------------------------------------------------------
// Encoding helpers for domain types without direct Value forms
// ----------------------------------------------------------------------

fn base_name(b: BaseDuration) -> &'static str {
    b.name()
}

fn base_from_name(name: &str) -> Result<BaseDuration> {
    BaseDuration::from_name(name)
        .ok_or_else(|| CoreError::BadScoreData(format!("bad duration base {name}")))
}

fn clef_name(c: Clef) -> &'static str {
    c.name()
}

fn clef_from_name(name: &str) -> Result<Clef> {
    Clef::from_name(name).ok_or_else(|| CoreError::BadScoreData(format!("bad clef {name}")))
}

fn articulation_name(a: Articulation) -> &'static str {
    a.name()
}

fn articulation_from_name(n: &str) -> Result<Articulation> {
    Articulation::from_name(n)
        .ok_or_else(|| CoreError::BadScoreData(format!("bad articulation {n}")))
}

fn dynamic_abbrev(d: Dynamic) -> &'static str {
    d.abbreviation()
}

fn dynamic_from_abbrev(a: &str) -> Result<Dynamic> {
    Dynamic::from_abbreviation(a).ok_or_else(|| CoreError::BadScoreData(format!("bad dynamic {a}")))
}

/// Serializes a tempo map as `num/den:bpm:ramp;…` (Rust's shortest-f64
/// display round-trips exactly).
fn tempo_map_to_string(t: &TempoMap) -> String {
    t.marks()
        .iter()
        .map(|m| {
            format!(
                "{}/{}:{}:{}",
                m.beat.numer(),
                m.beat.denom(),
                m.bpm,
                if m.ramp_to_next { 1 } else { 0 }
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn tempo_map_from_string(text: &str) -> Result<TempoMap> {
    let mut marks = Vec::new();
    for part in text.split(';').filter(|p| !p.is_empty()) {
        let fields: Vec<&str> = part.split(':').collect();
        let [beat, bpm, ramp] = fields.as_slice() else {
            return Err(CoreError::BadScoreData(format!("bad tempo mark {part}")));
        };
        let (num, den) = beat
            .split_once('/')
            .ok_or_else(|| CoreError::BadScoreData(format!("bad tempo beat {beat}")))?;
        let parse_i = |x: &str| {
            x.parse::<i64>()
                .map_err(|_| CoreError::BadScoreData(format!("bad number {x}")))
        };
        let den = parse_i(den)?;
        if den == 0 {
            return Err(CoreError::BadScoreData(format!("bad tempo beat {beat}")));
        }
        let bpm: f64 = bpm
            .parse()
            .map_err(|_| CoreError::BadScoreData(format!("bad bpm {bpm}")))?;
        if !bpm.is_finite() || bpm <= 0.0 {
            return Err(CoreError::BadScoreData(format!("bad bpm {bpm}")));
        }
        let beat = Rational::new(parse_i(num)?, den);
        if marks.last().is_some_and(|m: &TempoMark| m.beat >= beat) {
            return Err(CoreError::BadScoreData(
                "tempo marks out of order".to_string(),
            ));
        }
        marks.push(TempoMark {
            beat,
            bpm,
            ramp_to_next: *ramp == "1",
        });
    }
    Ok(TempoMap::from_marks(&marks))
}

fn dynamics_to_string(dynamics: &[(usize, Dynamic)]) -> String {
    dynamics
        .iter()
        .map(|(idx, d)| format!("{idx}:{}", dynamic_abbrev(*d)))
        .collect::<Vec<_>>()
        .join(",")
}

fn dynamics_from_string(text: &str) -> Result<Vec<(usize, Dynamic)>> {
    text.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let (idx, a) = p
                .split_once(':')
                .ok_or_else(|| CoreError::BadScoreData(format!("bad dynamic mark {p}")))?;
            Ok((
                idx.parse()
                    .map_err(|_| CoreError::BadScoreData(format!("bad index {idx}")))?,
                dynamic_from_abbrev(a)?,
            ))
        })
        .collect()
}

// ----------------------------------------------------------------------
// Store
// ----------------------------------------------------------------------

/// Stores a score into the database, building the complete fig. 13
/// hierarchy. Returns the SCORE entity id.
pub fn store_score(db: &mut Database, score: &Score) -> Result<EntityId> {
    cmn_schema::install(db)?;
    let score_id = db.create_entity(
        "SCORE",
        &[
            ("title", s(&score.title)),
            ("catalog_id", opt_s(&score.catalog_id)),
            ("composer", opt_s(&score.composer)),
        ],
    )?;
    if let Some(composer) = &score.composer {
        let person = db.create_entity("PERSON", &[("name", s(composer))])?;
        db.relate("COMPOSER", &[("person", person), ("score", score_id)], &[])?;
    }
    for movement in &score.movements {
        store_movement(db, score_id, movement)?;
    }
    Ok(score_id)
}

fn store_movement(db: &mut Database, score_id: EntityId, movement: &Movement) -> Result<EntityId> {
    let m_id = db.create_entity(
        "MOVEMENT",
        &[
            ("name", s(&movement.name)),
            ("meter_num", i(movement.meter.numerator as i64)),
            ("meter_den", i(movement.meter.denominator as i64)),
            ("tempo_bpm", Value::Float(movement.tempo.marks()[0].bpm)),
            ("tempo_map", s(&tempo_map_to_string(&movement.tempo))),
        ],
    )?;
    db.ord_append("movement_in_score", Some(score_id), m_id)?;

    // Measures and syncs (the fig. 13/14 temporal subdivision).
    let measures = movement.measures();
    let mut measure_ids = Vec::with_capacity(measures.len());
    for measure in &measures {
        let id = db.create_entity(
            "MEASURE",
            &[
                ("number", i(measure.number as i64)),
                ("start_num", i(measure.start.numer())),
                ("start_den", i(measure.start.denom())),
            ],
        )?;
        db.ord_append("measure_in_movement", Some(m_id), id)?;
        measure_ids.push(id);
    }
    let mut sync_ids: std::collections::BTreeMap<Rational, EntityId> =
        std::collections::BTreeMap::new();
    for sync in mdm_notation::syncs(movement) {
        let id = db.create_entity(
            "SYNC",
            &[
                ("time_num", i(sync.time.numer())),
                ("time_den", i(sync.time.denom())),
                ("measure_number", i(sync.measure as i64)),
                ("beat_num", i(sync.beat_in_measure.numer())),
                ("beat_den", i(sync.beat_in_measure.denom())),
            ],
        )?;
        if let Some(&measure_id) = measure_ids.get(sync.measure.saturating_sub(1)) {
            db.ord_append("sync_in_measure", Some(measure_id), id)?;
        }
        sync_ids.insert(sync.time, id);
    }

    // Voices, elements, notes.
    let mut chord_ids: Vec<Vec<Option<EntityId>>> = Vec::new();
    let mut note_ids: Vec<Vec<Vec<EntityId>>> = Vec::new();
    for voice in &movement.voices {
        let v_id = db.create_entity(
            "VOICE",
            &[
                ("name", s(&voice.name)),
                ("instrument", s(&voice.instrument)),
                ("clef", s(clef_name(voice.clef))),
                ("key_fifths", i(voice.key.fifths() as i64)),
                ("dynamics", s(&dynamics_to_string(&voice.dynamics))),
            ],
        )?;
        db.ord_append("voice_in_movement", Some(m_id), v_id)?;
        let onsets = voice.onsets();
        let mut v_chords = Vec::with_capacity(voice.elements.len());
        let mut v_notes = Vec::with_capacity(voice.elements.len());
        for (ei, element) in voice.elements.iter().enumerate() {
            match element {
                VoiceElement::Chord(chord) => {
                    let c_id = db.create_entity(
                        "CHORD",
                        &[
                            ("base", s(base_name(chord.duration.base))),
                            ("dots", i(chord.duration.dots as i64)),
                            ("tup_actual", i(chord.duration.tuplet.0 as i64)),
                            ("tup_normal", i(chord.duration.tuplet.1 as i64)),
                        ],
                    )?;
                    db.ord_append("voice_content", Some(v_id), c_id)?;
                    if let Some(&sync_id) = sync_ids.get(&onsets[ei]) {
                        db.ord_append("chord_at_sync", Some(sync_id), c_id)?;
                    }
                    let mut ids = Vec::with_capacity(chord.notes.len());
                    for note in &chord.notes {
                        let arts: Vec<&str> = note
                            .articulations
                            .iter()
                            .map(|a| articulation_name(*a))
                            .collect();
                        let n_id = db.create_entity(
                            "NOTE",
                            &[
                                ("step", s(&note.pitch.step.letter().to_string())),
                                ("alter", i(note.pitch.alter as i64)),
                                ("octave", i(note.pitch.octave as i64)),
                                ("midi_key", i(note.pitch.midi() as i64)),
                                ("tied", Value::Boolean(note.tied)),
                                ("syllable", opt_s(&note.syllable)),
                                ("articulations", s(&arts.join(","))),
                            ],
                        )?;
                        db.ord_append("note_in_chord", Some(c_id), n_id)?;
                        ids.push(n_id);
                    }
                    v_chords.push(Some(c_id));
                    v_notes.push(ids);
                }
                VoiceElement::Rest(rest) => {
                    let r_id = db.create_entity(
                        "REST",
                        &[
                            ("base", s(base_name(rest.duration.base))),
                            ("dots", i(rest.duration.dots as i64)),
                            ("tup_actual", i(rest.duration.tuplet.0 as i64)),
                            ("tup_normal", i(rest.duration.tuplet.1 as i64)),
                        ],
                    )?;
                    db.ord_append("voice_content", Some(v_id), r_id)?;
                    v_chords.push(None);
                    v_notes.push(Vec::new());
                }
            }
        }
        chord_ids.push(v_chords);
        note_ids.push(v_notes);
    }

    // Events (ties merged) with their notes and MIDI events beneath.
    let voice_entities: Vec<EntityId> = db.ord_children("voice_in_movement", Some(m_id))?;
    for event in events(movement) {
        let e_id = db.create_entity(
            "EVENT",
            &[
                ("midi_key", i(event.key as i64)),
                ("start_num", i(event.start.numer())),
                ("start_den", i(event.start.denom())),
                ("end_num", i(event.end.numer())),
                ("end_den", i(event.end.denom())),
                ("velocity", i(event.velocity as i64)),
            ],
        )?;
        db.ord_append("event_in_voice", Some(voice_entities[event.voice]), e_id)?;
        // Tie binding: the notated notes this event performs.
        for &chord_elem in &event.chords {
            for &n_id in &note_ids[event.voice][chord_elem] {
                let key = db.get_attr(n_id, "midi_key")?.as_integer().unwrap_or(-1);
                if key == event.key as i64
                    && db
                        .store()
                        .ordering_parent(
                            db.schema(),
                            db.schema().ordering_id("note_in_event")?,
                            n_id,
                        )
                        .is_err()
                {
                    db.ord_append("note_in_event", Some(e_id), n_id)?;
                }
            }
        }
        // MIDI on/off in performance time.
        let on = db.create_entity(
            "MIDI",
            &[
                ("kind", s("note_on")),
                (
                    "time_seconds",
                    Value::Float(movement.tempo.performance_time(event.start)),
                ),
                ("midi_key", i(event.key as i64)),
                ("velocity", i(event.velocity as i64)),
                ("channel", i(event.voice as i64)),
            ],
        )?;
        let off = db.create_entity(
            "MIDI",
            &[
                ("kind", s("note_off")),
                (
                    "time_seconds",
                    Value::Float(movement.tempo.performance_time(event.end)),
                ),
                ("midi_key", i(event.key as i64)),
                ("velocity", i(0)),
                ("channel", i(event.voice as i64)),
            ],
        )?;
        db.ord_append("midi_in_event", Some(e_id), on)?;
        db.ord_append("midi_in_event", Some(e_id), off)?;
    }

    // Control events (pedals, §7.2) ordered under the movement, in the
    // order given (beat stored verbatim so the round trip is exact).
    for c in &movement.controls {
        let beat = Rational::new(c.beat.0, c.beat.1);
        let id = db.create_entity(
            "MIDI_CONTROL",
            &[
                ("controller", i(c.controller as i64)),
                ("value", i(c.value as i64)),
                (
                    "time_seconds",
                    Value::Float(movement.tempo.performance_time(beat)),
                ),
                ("channel", i(c.voice as i64)),
                ("beat_num", i(c.beat.0)),
                ("beat_den", i(c.beat.1)),
            ],
        )?;
        db.ord_append("control_in_movement", Some(m_id), id)?;
    }

    // Lyrics: per voice, a TEXT line holding SYLLABLE entities, each
    // related to its NOTE (fig. 11's textual sub-aspect).
    for (vi, voice) in movement.voices.iter().enumerate() {
        let line: String = voice
            .elements
            .iter()
            .filter_map(|e| e.as_chord())
            .filter_map(|c| c.notes.iter().find_map(|n| n.syllable.clone()))
            .collect::<Vec<_>>()
            .join(" ");
        if line.is_empty() {
            continue;
        }
        let text_id = db.create_entity("TEXT", &[("content", s(&line))])?;
        db.ord_append("text_in_voice", Some(voice_entities[vi]), text_id)?;
        for (ei, element) in voice.elements.iter().enumerate() {
            let Some(chord) = element.as_chord() else {
                continue;
            };
            for (ni, note) in chord.notes.iter().enumerate() {
                if let Some(syl) = &note.syllable {
                    let syl_id = db.create_entity("SYLLABLE", &[("content", s(syl))])?;
                    db.ord_append("syllable_in_text", Some(text_id), syl_id)?;
                    let note_entity = note_ids[vi][ei][ni];
                    db.relate("LYRIC", &[("syllable", syl_id), ("note", note_entity)], &[])?;
                }
            }
        }
    }

    // Derived beam groups, stored through the *recursive* group_content
    // ordering (fig. 8 live in the CMN schema).
    for (vi, voice) in movement.voices.iter().enumerate() {
        let onsets = voice.onsets();
        let measure_beats = movement.meter.measure_beats();
        let pulse = if movement.meter.is_compound() {
            Rational::new(3, 2)
        } else {
            Rational::new(1, 1)
        };
        for measure in &movement.measures() {
            let beamables: Vec<mdm_notation::beam::Beamable> = voice
                .elements
                .iter()
                .enumerate()
                .filter(|(ei, e)| {
                    e.as_chord().is_some()
                        && onsets[*ei] >= measure.start
                        && onsets[*ei] < measure.end
                })
                .map(|(ei, e)| mdm_notation::beam::Beamable {
                    index: ei,
                    onset: onsets[ei] - measure.start,
                    duration: e.duration(),
                })
                .collect();
            let _ = measure_beats;
            for group in mdm_notation::beam::beam_measure(&beamables, pulse) {
                let gid = store_beam_group(db, &group, vi, &chord_ids)?;
                db.ord_append("group_in_voice", Some(voice_entities[vi]), gid)?;
            }
        }
    }
    Ok(m_id)
}

/// Recursively stores one beam group as GROUP entities whose children
/// (nested GROUPs and the voice's CHORD entities) hang under the
/// recursive `group_content` ordering.
fn store_beam_group(
    db: &mut Database,
    group: &mdm_notation::beam::BeamGroup,
    voice: usize,
    chord_ids: &[Vec<Option<EntityId>>],
) -> Result<EntityId> {
    let gid = db.create_entity("GROUP", &[("kind", s("beam"))])?;
    for item in &group.items {
        match item {
            mdm_notation::beam::BeamItem::Group(sub) => {
                let child = store_beam_group(db, sub, voice, chord_ids)?;
                db.ord_append("group_content", Some(gid), child)?;
            }
            mdm_notation::beam::BeamItem::Chord(ei) => {
                if let Some(Some(chord)) = chord_ids[voice].get(*ei) {
                    db.ord_append("group_content", Some(gid), *chord)?;
                }
            }
        }
    }
    Ok(gid)
}

// ----------------------------------------------------------------------
// Load
// ----------------------------------------------------------------------

fn get_str(db: &Database, id: EntityId, attr: &str) -> Result<String> {
    Ok(db
        .get_attr(id, attr)?
        .as_str()
        .unwrap_or_default()
        .to_string())
}

fn get_int(db: &Database, id: EntityId, attr: &str) -> Result<i64> {
    db.get_attr(id, attr)?
        .as_integer()
        .ok_or_else(|| CoreError::BadScoreData(format!("attribute {attr} of @{id} not integer")))
}

/// Finds a stored score by title.
pub fn find_score(db: &Database, title: &str) -> Result<Option<EntityId>> {
    if db.schema().entity_type_id("SCORE").is_err() {
        return Ok(None);
    }
    for &id in db.instances_of("SCORE")? {
        if db.get_attr(id, "title")?.as_str() == Some(title) {
            return Ok(Some(id));
        }
    }
    Ok(None)
}

/// All stored scores as (entity id, title).
pub fn list_scores(db: &Database) -> Result<Vec<(EntityId, String)>> {
    if db.schema().entity_type_id("SCORE").is_err() {
        return Ok(Vec::new());
    }
    db.instances_of("SCORE")?
        .iter()
        .map(|&id| Ok((id, get_str(db, id, "title")?)))
        .collect()
}

/// Loads a score entity back into notation structures.
///
/// A `score_id` that does not exist — or names an entity that is not a
/// SCORE — fails with [`CoreError::NoSuchScore`], distinct from the
/// storage/decode errors a damaged database produces, so callers (the
/// network server in particular) can map "not found" to its own error
/// class.
pub fn load_score(db: &Database, score_id: EntityId) -> Result<Score> {
    if !db.store().exists(score_id) || db.type_of(score_id)? != "SCORE" {
        return Err(CoreError::NoSuchScore(format!("@{score_id}")));
    }
    let mut score = Score::new(&get_str(db, score_id, "title")?);
    score.catalog_id = db
        .get_attr(score_id, "catalog_id")?
        .as_str()
        .map(str::to_string);
    score.composer = db
        .get_attr(score_id, "composer")?
        .as_str()
        .map(str::to_string);
    for m_id in db.ord_children("movement_in_score", Some(score_id))? {
        score.movements.push(load_movement(db, m_id)?);
    }
    Ok(score)
}

fn load_movement(db: &Database, m_id: EntityId) -> Result<Movement> {
    let meter = TimeSignature::new(
        get_int(db, m_id, "meter_num")? as u8,
        get_int(db, m_id, "meter_den")? as u8,
    );
    let tempo = tempo_map_from_string(&get_str(db, m_id, "tempo_map")?)?;
    let mut movement = Movement::new(&get_str(db, m_id, "name")?, meter, tempo);
    for v_id in db.ord_children("voice_in_movement", Some(m_id))? {
        movement.voices.push(load_voice(db, v_id)?);
    }
    for c_id in db.ord_children("control_in_movement", Some(m_id))? {
        movement.controls.push(mdm_notation::ControlEvent {
            beat: (
                get_int(db, c_id, "beat_num")?,
                get_int(db, c_id, "beat_den")?,
            ),
            controller: get_int(db, c_id, "controller")? as u8,
            value: get_int(db, c_id, "value")? as u8,
            voice: get_int(db, c_id, "channel")? as usize,
        });
    }
    Ok(movement)
}

fn load_voice(db: &Database, v_id: EntityId) -> Result<Voice> {
    let mut voice = Voice::new(
        &get_str(db, v_id, "name")?,
        &get_str(db, v_id, "instrument")?,
        clef_from_name(&get_str(db, v_id, "clef")?)?,
        KeySignature::new(get_int(db, v_id, "key_fifths")? as i8),
    );
    voice.dynamics = dynamics_from_string(&get_str(db, v_id, "dynamics")?)?;
    for el_id in db.ord_children("voice_content", Some(v_id))? {
        match db.type_of(el_id)? {
            "CHORD" => {
                let duration = load_duration(db, el_id)?;
                let mut notes = Vec::new();
                for n_id in db.ord_children("note_in_chord", Some(el_id))? {
                    notes.push(load_note(db, n_id)?);
                }
                voice.push_chord(Chord::new(notes, duration));
            }
            "REST" => {
                let duration = load_duration(db, el_id)?;
                voice.push(VoiceElement::Rest(Rest { duration }));
            }
            other => {
                return Err(CoreError::BadScoreData(format!(
                    "unexpected {other} in voice_content"
                )))
            }
        }
    }
    Ok(voice)
}

fn load_duration(db: &Database, id: EntityId) -> Result<Duration> {
    Ok(Duration {
        base: base_from_name(&get_str(db, id, "base")?)?,
        dots: get_int(db, id, "dots")? as u8,
        tuplet: (
            get_int(db, id, "tup_actual")? as u8,
            get_int(db, id, "tup_normal")? as u8,
        ),
    })
}

fn load_note(db: &Database, n_id: EntityId) -> Result<Note> {
    let step_s = get_str(db, n_id, "step")?;
    let step = step_s
        .chars()
        .next()
        .and_then(Step::from_letter)
        .ok_or_else(|| CoreError::BadScoreData(format!("bad step {step_s}")))?;
    let pitch = mdm_notation::Pitch::new(
        step,
        get_int(db, n_id, "alter")? as i32,
        get_int(db, n_id, "octave")? as i32,
    );
    let mut note = Note::new(pitch);
    note.tied = db.get_attr(n_id, "tied")?.as_boolean().unwrap_or(false);
    note.syllable = db.get_attr(n_id, "syllable")?.as_str().map(str::to_string);
    let arts = get_str(db, n_id, "articulations")?;
    for a in arts.split(',').filter(|x| !x.is_empty()) {
        note.articulations.push(articulation_from_name(a)?);
    }
    Ok(note)
}

/// Deletes a stored score and its entire entity graph (movements,
/// measures, syncs, voices, chords, rests, notes, events, MIDI events).
pub fn delete_score(db: &mut Database, score_id: EntityId) -> Result<()> {
    let mut victims: Vec<EntityId> = Vec::new();
    for m_id in db.ord_children("movement_in_score", Some(score_id))? {
        for measure in db.ord_children("measure_in_movement", Some(m_id))? {
            victims.extend(db.ord_children("sync_in_measure", Some(measure))?);
            victims.push(measure);
        }
        victims.extend(db.ord_children("control_in_movement", Some(m_id))?);
        for v_id in db.ord_children("voice_in_movement", Some(m_id))? {
            for el in db.ord_children("voice_content", Some(v_id))? {
                if db.type_of(el)? == "CHORD" {
                    victims.extend(db.ord_children("note_in_chord", Some(el))?);
                }
                victims.push(el);
            }
            for e_id in db.ord_children("event_in_voice", Some(v_id))? {
                victims.extend(db.ord_children("midi_in_event", Some(e_id))?);
                victims.push(e_id);
            }
            for text_id in db.ord_children("text_in_voice", Some(v_id))? {
                victims.extend(db.ord_children("syllable_in_text", Some(text_id))?);
                victims.push(text_id);
            }
            for g_id in db.ord_children("group_in_voice", Some(v_id))? {
                // Recursive descent collects nested GROUPs; chords are
                // already covered via voice_content.
                let o = db.schema().ordering_id("group_content")?;
                for d in db.store().descendants(o, g_id) {
                    if db.type_of(d)? == "GROUP" {
                        victims.push(d);
                    }
                }
                victims.push(g_id);
            }
            victims.push(v_id);
        }
        victims.push(m_id);
    }
    // Graphical layout hanging off the score, if present.
    for page_id in db.ord_children("page_in_score", Some(score_id))? {
        for sys_id in db.ord_children("system_on_page", Some(page_id))? {
            for staff_id in db.ord_children("staff_in_system", Some(sys_id))? {
                victims.extend(db.ord_children("degree_on_staff", Some(staff_id))?);
                victims.push(staff_id);
            }
            victims.push(sys_id);
        }
        victims.push(page_id);
    }
    victims.push(score_id);
    for id in victims {
        if db.store().exists(id) {
            db.delete_entity(id)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_notation::fixtures::{bwv578_subject, two_voice_alignment};
    use mdm_notation::rat;

    #[test]
    fn roundtrip_bwv578() {
        let mut db = Database::new();
        let original = bwv578_subject();
        let id = store_score(&mut db, &original).unwrap();
        let back = load_score(&db, id).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn roundtrip_two_voices_with_rests_dynamics_and_ties() {
        let mut db = Database::new();
        let mut movement = two_voice_alignment();
        movement.voices[0].mark_dynamic(0, Dynamic::Piano);
        movement.voices[0].mark_dynamic(3, Dynamic::Forte);
        movement.voices[1].push_rest(Duration::new(BaseDuration::Quarter));
        // A tie in the lower voice.
        let last = movement.voices[1].elements.len();
        movement.voices[1].push_chord(Chord::new(
            vec![Note::new(mdm_notation::Pitch::parse("C3").unwrap()).tied()],
            Duration::new(BaseDuration::Quarter),
        ));
        movement.voices[1].push_chord(Chord::new(
            vec![Note::new(mdm_notation::Pitch::parse("C3").unwrap())],
            Duration::new(BaseDuration::Quarter),
        ));
        let _ = last;
        let mut score = Score::new("two-voice");
        score.movements.push(movement);
        let id = store_score(&mut db, &score).unwrap();
        let back = load_score(&db, id).unwrap();
        assert_eq!(back, score);
    }

    #[test]
    fn roundtrip_tempo_ramps() {
        let mut db = Database::new();
        let mut score = bwv578_subject();
        score.movements[0].tempo.ramp(rat(4, 1), rat(8, 1), 120.0);
        score.movements[0].tempo.set_tempo(rat(10, 1), 60.0);
        let id = store_score(&mut db, &score).unwrap();
        let back = load_score(&db, id).unwrap();
        assert_eq!(back.movements[0].tempo, score.movements[0].tempo);
    }

    #[test]
    fn fig13_hierarchy_is_complete() {
        let mut db = Database::new();
        let score = bwv578_subject();
        let id = store_score(&mut db, &score).unwrap();
        // SCORE → MOVEMENT → MEASURE → SYNC.
        let movements = db.ord_children("movement_in_score", Some(id)).unwrap();
        assert_eq!(movements.len(), 1);
        let measures = db
            .ord_children("measure_in_movement", Some(movements[0]))
            .unwrap();
        assert_eq!(measures.len(), 3);
        let syncs0 = db
            .ord_children("sync_in_measure", Some(measures[0]))
            .unwrap();
        assert!(!syncs0.is_empty());
        // Chords hang from syncs AND from their voice (multiple parents).
        let voices = db
            .ord_children("voice_in_movement", Some(movements[0]))
            .unwrap();
        let voice_content = db.ord_children("voice_content", Some(voices[0])).unwrap();
        let first_chord = voice_content[0];
        assert!(db.under("chord_at_sync", first_chord, syncs0[0]).unwrap());
        assert!(db.under("voice_content", first_chord, voices[0]).unwrap());
        // Events and MIDI exist below the voice.
        let events = db.ord_children("event_in_voice", Some(voices[0])).unwrap();
        assert_eq!(events.len(), 21, "21 sounding notes, no ties");
        let midis = db.ord_children("midi_in_event", Some(events[0])).unwrap();
        assert_eq!(midis.len(), 2, "note_on + note_off");
    }

    #[test]
    fn composer_relationship_created() {
        let mut db = Database::new();
        let id = store_score(&mut db, &bwv578_subject()).unwrap();
        let composers = db.related("COMPOSER", id, "person").unwrap();
        assert_eq!(composers.len(), 1);
        assert_eq!(
            db.get_attr(composers[0], "name").unwrap().as_str(),
            Some("Johann Sebastian Bach")
        );
    }

    #[test]
    fn missing_score_is_a_typed_not_found_error() {
        let mut db = Database::new();
        let id = store_score(&mut db, &bwv578_subject()).unwrap();
        // A fabricated id fails with NoSuchScore, not a storage/model error.
        assert!(matches!(
            load_score(&db, id + 10_000),
            Err(CoreError::NoSuchScore(_))
        ));
        // An id of the wrong entity type is likewise "no such score".
        let person = db.create_entity("PERSON", &[("name", s("Bach"))]).unwrap();
        assert!(matches!(
            load_score(&db, person),
            Err(CoreError::NoSuchScore(_))
        ));
        // The real id still loads.
        assert!(load_score(&db, id).is_ok());
    }

    #[test]
    fn find_and_list_scores() {
        let mut db = Database::new();
        assert_eq!(find_score(&db, "x").unwrap(), None);
        let id = store_score(&mut db, &bwv578_subject()).unwrap();
        assert_eq!(find_score(&db, "Fuge g-moll").unwrap(), Some(id));
        assert_eq!(find_score(&db, "missing").unwrap(), None);
        let all = list_scores(&db).unwrap();
        assert_eq!(all, vec![(id, "Fuge g-moll".to_string())]);
    }
}
