//! Error type for the music data manager.

use std::fmt;

/// Errors surfaced by the MDM facade and its clients.
#[derive(Debug)]
pub enum CoreError {
    /// From the storage engine.
    Storage(mdm_storage::StorageError),
    /// From the data model.
    Model(mdm_model::ModelError),
    /// From the query language.
    Lang(mdm_lang::LangError),
    /// From DARMS encoding/decoding.
    Darms(mdm_darms::DarmsError),
    /// The requested score does not exist in the database.
    NoSuchScore(String),
    /// Stored entities could not be mapped back to notation.
    BadScoreData(String),
    /// Internal invariant violated.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Model(e) => write!(f, "model: {e}"),
            CoreError::Lang(e) => write!(f, "language: {e}"),
            CoreError::Darms(e) => write!(f, "darms: {e}"),
            CoreError::NoSuchScore(t) => write!(f, "no such score: {t}"),
            CoreError::BadScoreData(m) => write!(f, "bad score data: {m}"),
            CoreError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Lang(e) => Some(e),
            CoreError::Darms(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mdm_storage::StorageError> for CoreError {
    fn from(e: mdm_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<mdm_model::ModelError> for CoreError {
    fn from(e: mdm_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<mdm_lang::LangError> for CoreError {
    fn from(e: mdm_lang::LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<mdm_darms::DarmsError> for CoreError {
    fn from(e: mdm_darms::DarmsError) -> Self {
        CoreError::Darms(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
