//! The MDM's client programs (§2, fig. 1).
//!
//! "A music typesetting program would be a client, as would a musical
//! score editor, a compositional tool, or a program which performs
//! musicological analyses of compositions." All four candidate client
//! kinds the paper enumerates are implemented here, each working purely
//! through the MDM's services — which is the paper's point: "because all
//! clients maintain their information in the same way, they can more
//! easily communicate with each other."

use mdm_model::EntityId;
use mdm_notation::duration::Duration;
use mdm_notation::pitch::Pitch;
use mdm_notation::score::{Chord, Note, Voice, VoiceElement};
use mdm_notation::{events, Score};

use crate::error::{CoreError, Result};
use crate::mdm::MusicDataManager;
use crate::score_store;

// ----------------------------------------------------------------------
// Score editor
// ----------------------------------------------------------------------

/// A score editor client: checks a stored score out of the MDM, applies
/// edits, and commits the result back (replacing the stored entity
/// graph so derived entities — syncs, events, MIDI — stay consistent).
pub struct ScoreEditor<'a> {
    mdm: &'a mut MusicDataManager,
    score_id: EntityId,
    working: Score,
}

impl<'a> ScoreEditor<'a> {
    /// Checks out a stored score.
    pub fn checkout(mdm: &'a mut MusicDataManager, score_id: EntityId) -> Result<ScoreEditor<'a>> {
        let working = mdm.load_score(score_id)?;
        Ok(ScoreEditor {
            mdm,
            score_id,
            working,
        })
    }

    /// The working copy.
    pub fn score(&self) -> &Score {
        &self.working
    }

    /// Transposes every note of a voice by semitones.
    pub fn transpose_voice(&mut self, movement: usize, voice: usize, semitones: i32) -> Result<()> {
        let v = self.voice_mut(movement, voice)?;
        for el in &mut v.elements {
            if let VoiceElement::Chord(c) = el {
                for n in &mut c.notes {
                    n.pitch = n.pitch.transpose_semitones(semitones);
                }
            }
        }
        Ok(())
    }

    /// Transposes a voice by a *named interval*, preserving spelling —
    /// the musicianly transposition (a minor third up from E♭ is G♭, not
    /// F♯).
    pub fn transpose_voice_by_interval(
        &mut self,
        movement: usize,
        voice: usize,
        interval: mdm_notation::Interval,
        upward: bool,
    ) -> Result<()> {
        let v = self.voice_mut(movement, voice)?;
        for el in &mut v.elements {
            if let VoiceElement::Chord(c) = el {
                for n in &mut c.notes {
                    n.pitch = interval.apply(&n.pitch, upward);
                }
            }
        }
        Ok(())
    }

    /// Inserts a chord at an element position of a voice (the ordering
    /// middle-insert the paper's model makes first-class).
    pub fn insert_chord(
        &mut self,
        movement: usize,
        voice: usize,
        position: usize,
        pitch: Pitch,
        duration: Duration,
    ) -> Result<()> {
        let v = self.voice_mut(movement, voice)?;
        if position > v.elements.len() {
            return Err(CoreError::BadScoreData(format!(
                "position {position} beyond voice of {}",
                v.elements.len()
            )));
        }
        v.elements.insert(
            position,
            VoiceElement::Chord(Chord::new(vec![Note::new(pitch)], duration)),
        );
        Ok(())
    }

    /// Removes an element from a voice.
    pub fn remove_element(&mut self, movement: usize, voice: usize, position: usize) -> Result<()> {
        let v = self.voice_mut(movement, voice)?;
        if position >= v.elements.len() {
            return Err(CoreError::BadScoreData(format!("no element {position}")));
        }
        v.elements.remove(position);
        Ok(())
    }

    /// Adds a ritardando over the movement's final `beats` beats.
    pub fn add_final_ritardando(
        &mut self,
        movement: usize,
        beats: i64,
        target_bpm: f64,
    ) -> Result<()> {
        let m = self
            .working
            .movements
            .get_mut(movement)
            .ok_or_else(|| CoreError::BadScoreData(format!("no movement {movement}")))?;
        let total = m.total_beats();
        let from = total - mdm_notation::rat(beats, 1);
        if from.is_positive() {
            m.tempo.ramp(from, total, target_bpm);
        }
        Ok(())
    }

    fn voice_mut(&mut self, movement: usize, voice: usize) -> Result<&mut Voice> {
        self.working
            .movements
            .get_mut(movement)
            .and_then(|m| m.voices.get_mut(voice))
            .ok_or_else(|| CoreError::BadScoreData(format!("no voice {movement}/{voice}")))
    }

    /// Commits the working copy: the stored entity graph is replaced and
    /// the new SCORE entity id returned.
    pub fn commit(self) -> Result<EntityId> {
        score_store::delete_score(self.mdm.database_mut(), self.score_id)?;
        self.mdm.store_score(&self.working)
    }
}

// ----------------------------------------------------------------------
// Compositional tool
// ----------------------------------------------------------------------

/// A compositional client: generates scores into the MDM.
pub struct Composer;

impl Composer {
    /// Builds a canon: `voices` copies of `subject`, each entering
    /// `delay_beats` after the previous and transposed by successive
    /// `interval` semitones, padded with rests.
    pub fn canon(
        subject: &Voice,
        voices: usize,
        delay_beats: i64,
        interval: i32,
        meter: mdm_notation::TimeSignature,
        bpm: f64,
    ) -> Score {
        let mut movement =
            mdm_notation::Movement::new("canon", meter, mdm_notation::TempoMap::constant(bpm));
        for vi in 0..voices {
            let mut voice = Voice::new(
                &format!("voice {}", vi + 1),
                &subject.instrument,
                subject.clef,
                subject.key,
            );
            // Entry delay as whole-beat rests.
            for _ in 0..(vi as i64 * delay_beats) {
                voice.push_rest(Duration::new(mdm_notation::BaseDuration::Quarter));
            }
            for el in &subject.elements {
                match el {
                    VoiceElement::Chord(c) => {
                        let notes = c
                            .notes
                            .iter()
                            .map(|n| {
                                let mut t = n.clone();
                                t.pitch = t.pitch.transpose_semitones(interval * vi as i32);
                                t
                            })
                            .collect();
                        voice.push_chord(Chord::new(notes, c.duration));
                    }
                    VoiceElement::Rest(r) => voice.push_rest(r.duration),
                }
            }
            movement.voices.push(voice);
        }
        let mut score = Score::new("canon");
        score.movements.push(movement);
        score
    }

    /// Generates a deterministic random-walk melody (seeded LCG) over a
    /// scale, useful as workload material.
    pub fn random_walk(
        seed: u64,
        length: usize,
        key: mdm_notation::KeySignature,
        bpm: f64,
    ) -> Score {
        let mut movement = mdm_notation::Movement::new(
            "walk",
            mdm_notation::TimeSignature::common(),
            mdm_notation::TempoMap::constant(bpm),
        );
        let mut voice = Voice::new("walk", "piano", mdm_notation::Clef::Treble, key);
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut degree: i32 = 4; // middle of the staff
        let durations = [
            Duration::new(mdm_notation::BaseDuration::Quarter),
            Duration::new(mdm_notation::BaseDuration::Eighth),
            Duration::new(mdm_notation::BaseDuration::Half),
        ];
        for _ in 0..length {
            let step = (rng() % 5) as i32 - 2; // -2..=2 staff steps
            degree = (degree + step).clamp(-3, 12);
            let natural = mdm_notation::Clef::Treble.pitch_at(degree);
            let alter = key.alter_for(natural.step);
            let pitch = Pitch::new(natural.step, alter, natural.octave);
            let duration = durations[(rng() % 3) as usize];
            voice.push_chord(Chord::single(pitch, duration));
        }
        movement.voices.push(voice);
        let mut score = Score::new(&format!("random walk {seed}"));
        score.movements.push(movement);
        score
    }
}

// ----------------------------------------------------------------------
// Score library
// ----------------------------------------------------------------------

/// A score-library client: a thematic index over the scores stored in
/// the MDM (§2's "large collections of musical scores … the starting
/// point for most musicological research").
pub struct Library {
    index: mdm_biblio::ThematicIndex,
}

impl Library {
    /// An empty library with the given index prefix (e.g. "BWV").
    pub fn new(prefix: &str) -> Library {
        Library {
            index: mdm_biblio::ThematicIndex::new(prefix),
        }
    }

    /// The underlying thematic index.
    pub fn index(&self) -> &mdm_biblio::ThematicIndex {
        &self.index
    }

    /// Catalogs a stored score under a number, deriving the incipit from
    /// its first voice.
    pub fn catalog(
        &mut self,
        mdm: &MusicDataManager,
        score_id: EntityId,
        number: u32,
    ) -> Result<()> {
        let score = mdm.load_score(score_id)?;
        let incipit = mdm_biblio::Incipit::from_score(&score, 12);
        self.index.insert(mdm_biblio::ThematicEntry {
            number,
            title: score.title.clone(),
            setting: score
                .movements
                .first()
                .and_then(|m| m.voices.first())
                .map(|v| v.instrument.clone())
                .unwrap_or_default(),
            composed: score.composer.clone().unwrap_or_default(),
            measures: Some(score.measure_count() as u32),
            incipit,
            manuscripts: Vec::new(),
            editions: Vec::new(),
            literature: Vec::new(),
        });
        Ok(())
    }

    /// Finds cataloged works containing the melodic fragment.
    pub fn search(
        &self,
        fragment: &mdm_biblio::Incipit,
        kind: mdm_biblio::MatchKind,
    ) -> Vec<String> {
        self.index
            .search_incipit(fragment, kind)
            .into_iter()
            .map(|e| self.index.accepted_name(e))
            .collect()
    }
}

// ----------------------------------------------------------------------
// Music analysis
// ----------------------------------------------------------------------

/// A music-analysis client (§2's "systems that perform various sorts of
/// harmonic analysis, or those that determine melodic structure").
pub struct Analyst;

/// The ambitus (range) of a voice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambitus {
    /// Lowest pitch sounded.
    pub low: Pitch,
    /// Highest pitch sounded.
    pub high: Pitch,
}

impl Analyst {
    /// Histogram of melodic intervals (in semitones) within each voice.
    pub fn interval_histogram(score: &Score) -> std::collections::BTreeMap<i32, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for movement in &score.movements {
            for voice in &movement.voices {
                let mut prev: Option<i32> = None;
                for el in &voice.elements {
                    match el {
                        VoiceElement::Chord(c) => {
                            let key = c.notes.iter().map(|n| n.pitch.midi()).max();
                            if let (Some(p), Some(k)) = (prev, key) {
                                *hist.entry(k - p).or_insert(0) += 1;
                            }
                            prev = key;
                        }
                        VoiceElement::Rest(_) => prev = None,
                    }
                }
            }
        }
        hist
    }

    /// The range of a voice, if it sounds at all.
    pub fn ambitus(voice: &Voice) -> Option<Ambitus> {
        let mut notes = voice
            .elements
            .iter()
            .filter_map(VoiceElement::as_chord)
            .flat_map(|c| c.notes.iter().map(|n| n.pitch));
        let first = notes.next()?;
        let (mut low, mut high) = (first, first);
        for p in notes {
            if p.midi() < low.midi() {
                low = p;
            }
            if p.midi() > high.midi() {
                high = p;
            }
        }
        Some(Ambitus { low, high })
    }

    /// Harmonic intervals sounding at each sync of a movement (pairs of
    /// simultaneous voices), as semitone intervals modulo the octave.
    pub fn harmonic_intervals(movement: &mdm_notation::Movement) -> Vec<(f64, i32)> {
        let evs = events(movement);
        let mut out = Vec::new();
        let times: std::collections::BTreeSet<_> = evs.iter().map(|e| e.start).collect();
        for t in times {
            let sounding: Vec<i32> = evs
                .iter()
                .filter(|e| e.start <= t && t < e.end)
                .map(|e| e.key)
                .collect();
            for i in 0..sounding.len() {
                for j in i + 1..sounding.len() {
                    let interval = (sounding[i] - sounding[j]).abs() % 12;
                    out.push((t.to_f64(), interval));
                }
            }
        }
        out
    }

    /// Named harmonic intervals at every sync, from the *spelled* pitches
    /// (so C–E♭ reads as a minor third while C–D♯ reads as an augmented
    /// second — the §4.3 point that notation carries more than sound).
    pub fn named_intervals_at_syncs(
        movement: &mdm_notation::Movement,
    ) -> Vec<(mdm_notation::Rational, Vec<mdm_notation::Interval>)> {
        use mdm_notation::rational::ZERO;
        // Per voice: (onset, end, pitches) spans.
        let mut spans: Vec<(mdm_notation::Rational, mdm_notation::Rational, Vec<Pitch>)> =
            Vec::new();
        let mut onsets_all: std::collections::BTreeSet<mdm_notation::Rational> =
            std::collections::BTreeSet::new();
        for voice in &movement.voices {
            let mut t = ZERO;
            for el in &voice.elements {
                let end = t + el.duration().beats();
                if let Some(chord) = el.as_chord() {
                    spans.push((t, end, chord.notes.iter().map(|n| n.pitch).collect()));
                    onsets_all.insert(t);
                }
                t = end;
            }
        }
        let mut out = Vec::new();
        for &t in &onsets_all {
            let sounding: Vec<Pitch> = spans
                .iter()
                .filter(|(start, end, _)| *start <= t && t < *end)
                .flat_map(|(_, _, ps)| ps.iter().copied())
                .collect();
            let mut intervals = Vec::new();
            for i in 0..sounding.len() {
                for j in i + 1..sounding.len() {
                    intervals.push(mdm_notation::Interval::between(&sounding[i], &sounding[j]));
                }
            }
            if !intervals.is_empty() {
                out.push((t, intervals));
            }
        }
        out
    }

    /// The fraction of dissonant simultaneities per sync — a coarse
    /// dissonance profile over score time.
    pub fn dissonance_profile(movement: &mdm_notation::Movement) -> Vec<(f64, f64)> {
        Self::named_intervals_at_syncs(movement)
            .into_iter()
            .map(|(t, ivs)| {
                let dissonant = ivs.iter().filter(|iv| !iv.is_consonant()).count();
                (t.to_f64(), dissonant as f64 / ivs.len() as f64)
            })
            .collect()
    }

    /// Flags consecutive perfect fifths/octaves between two voices — the
    /// classic counterpoint check.
    pub fn parallel_perfects(movement: &mdm_notation::Movement, v1: usize, v2: usize) -> usize {
        let evs = events(movement);
        let times: std::collections::BTreeSet<_> = evs.iter().map(|e| e.start).collect();
        let mut prev: Option<i32> = None;
        let mut count = 0;
        for t in times {
            let pick = |v: usize| {
                evs.iter()
                    .filter(|e| e.voice == v && e.start <= t && t < e.end)
                    .map(|e| e.key)
                    .max()
            };
            if let (Some(a), Some(b)) = (pick(v1), pick(v2)) {
                let interval = (a - b).abs() % 12;
                if interval == 7 || interval == 0 {
                    if prev == Some(interval) {
                        count += 1;
                    }
                    prev = Some(interval);
                } else {
                    prev = None;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_notation::fixtures::bwv578_subject;
    use mdm_notation::{BaseDuration, KeySignature, TimeSignature};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-cli-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn editor_transpose_and_commit() {
        let dir = tmpdir("editor");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm.store_score(&bwv578_subject()).unwrap();
        let mut editor = ScoreEditor::checkout(&mut mdm, id).unwrap();
        editor.transpose_voice(0, 0, 2).unwrap();
        let new_id = editor.commit().unwrap();
        let score = mdm.load_score(new_id).unwrap();
        let first = score.movements[0].voices[0].elements[0]
            .as_chord()
            .unwrap()
            .notes[0]
            .pitch;
        assert_eq!(first.midi(), 69, "G4 up a tone is A4");
        // Old graph gone: only one score (plus its own entities) remains.
        assert_eq!(mdm.list_scores().unwrap().len(), 1);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn editor_insert_and_remove() {
        let dir = tmpdir("edit2");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm.store_score(&bwv578_subject()).unwrap();
        let mut editor = ScoreEditor::checkout(&mut mdm, id).unwrap();
        let len = editor.score().movements[0].voices[0].elements.len();
        editor
            .insert_chord(
                0,
                0,
                1,
                Pitch::parse("C5").unwrap(),
                Duration::new(BaseDuration::Quarter),
            )
            .unwrap();
        assert_eq!(
            editor.score().movements[0].voices[0].elements.len(),
            len + 1
        );
        editor.remove_element(0, 0, 1).unwrap();
        assert_eq!(editor.score().movements[0].voices[0].elements.len(), len);
        assert!(editor
            .insert_chord(
                0,
                0,
                999,
                Pitch::parse("C5").unwrap(),
                Duration::new(BaseDuration::Quarter)
            )
            .is_err());
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn editor_interval_transposition_preserves_spelling() {
        let dir = tmpdir("edit-iv");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm.store_score(&bwv578_subject()).unwrap();
        let mut editor = ScoreEditor::checkout(&mut mdm, id).unwrap();
        // Up a minor third: g minor → b-flat territory; the subject's
        // opening G4 becomes Bb4 (a semitone transposition would respell
        // it A#4).
        let m3 = mdm_notation::Interval::between(
            &Pitch::parse("C4").unwrap(),
            &Pitch::parse("Eb4").unwrap(),
        );
        editor.transpose_voice_by_interval(0, 0, m3, true).unwrap();
        let first = editor.score().movements[0].voices[0].elements[0]
            .as_chord()
            .unwrap()
            .notes[0]
            .pitch;
        assert_eq!(first.to_string(), "Bb4");
        // Bb4 in the original becomes Db5.
        let third = editor.score().movements[0].voices[0].elements[2]
            .as_chord()
            .unwrap()
            .notes[0]
            .pitch;
        assert_eq!(third.to_string(), "Db5");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn composer_canon_shape() {
        let subject = bwv578_subject().movements[0].voices[0].clone();
        let canon = Composer::canon(&subject, 3, 4, 12, TimeSignature::common(), 90.0);
        assert_eq!(canon.movements[0].voices.len(), 3);
        // Voice 2 enters 4 beats later, an octave higher.
        let v2 = &canon.movements[0].voices[1];
        assert_eq!(v2.onsets()[4], mdm_notation::rat(4, 1));
        let first_pitch = v2.elements[4].as_chord().unwrap().notes[0].pitch;
        assert_eq!(first_pitch.midi(), 67 + 12);
    }

    #[test]
    fn composer_random_walk_is_deterministic_and_in_key() {
        let a = Composer::random_walk(42, 60, KeySignature::new(-2), 100.0);
        let b = Composer::random_walk(42, 60, KeySignature::new(-2), 100.0);
        assert_eq!(a, b);
        let c = Composer::random_walk(43, 60, KeySignature::new(-2), 100.0);
        assert_ne!(a, c);
        // Every B in g minor is flattened.
        for el in &a.movements[0].voices[0].elements {
            let p = el.as_chord().unwrap().notes[0].pitch;
            if p.step == mdm_notation::Step::B {
                assert_eq!(p.alter, -1);
            }
        }
    }

    #[test]
    fn library_catalogs_and_finds() {
        let dir = tmpdir("library");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm.store_score(&bwv578_subject()).unwrap();
        let walk = Composer::random_walk(7, 40, KeySignature::natural(), 100.0);
        let id2 = mdm.store_score(&walk).unwrap();
        let mut lib = Library::new("BWV");
        lib.catalog(&mdm, id, 578).unwrap();
        lib.catalog(&mdm, id2, 9001).unwrap();
        let frag = mdm_biblio::Incipit::from_keys(vec![67, 74, 70, 69]);
        let hits = lib.search(&frag, mdm_biblio::MatchKind::Exact);
        assert_eq!(hits, vec!["BWV 578".to_string()]);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyst_intervals_and_ambitus() {
        let score = bwv578_subject();
        let hist = Analyst::interval_histogram(&score);
        assert_eq!(hist.get(&7), Some(&1), "the opening G→D leap of a fifth");
        assert!(hist.contains_key(&-4), "D5 down to Bb4");
        let amb = Analyst::ambitus(&score.movements[0].voices[0]).unwrap();
        assert_eq!(amb.low.to_string(), "D4");
        assert_eq!(amb.high.to_string(), "D5");
    }

    #[test]
    fn analyst_harmonic_intervals_on_two_voices() {
        let m = mdm_notation::fixtures::two_voice_alignment();
        let intervals = Analyst::harmonic_intervals(&m);
        assert!(!intervals.is_empty());
        // At beat 0: C5 against C3 → 0 mod 12 (octaves).
        let at0: Vec<i32> = intervals
            .iter()
            .filter(|(t, _)| *t == 0.0)
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(at0, vec![0]);
    }

    #[test]
    fn analyst_names_intervals_from_spelling() {
        let m = mdm_notation::fixtures::two_voice_alignment();
        let named = Analyst::named_intervals_at_syncs(&m);
        assert!(!named.is_empty());
        // Beat 0: C5 over C3 — a perfect 15th (double octave).
        let (t0, ivs) = &named[0];
        assert!(t0.is_zero());
        assert_eq!(ivs[0].name(), "perfect 15th");
        // The profile covers every sync with sound.
        let profile = Analyst::dissonance_profile(&m);
        assert_eq!(profile.len(), named.len());
        for (_, frac) in profile {
            assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn analyst_detects_parallel_octaves() {
        // Two voices moving in exact octaves: every consecutive sync is a
        // parallel perfect.
        let subject = bwv578_subject().movements[0].voices[0].clone();
        let canon = Composer::canon(&subject, 2, 0, 12, TimeSignature::common(), 90.0);
        let hits = Analyst::parallel_perfects(&canon.movements[0], 0, 1);
        assert!(hits > 10, "octave doubling is all parallel octaves: {hits}");
    }
}
