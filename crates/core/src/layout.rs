//! The timbral and graphical hierarchies stored as entities.
//!
//! Completes the fig. 11 census: orchestras → sections → instruments →
//! parts (the timbral aspect) and pages → systems → staves → degrees
//! (the graphical aspect). Staves get the *multiple parents* the paper
//! highlights: each staff is ordered both under its system
//! (`staff_in_system`) and under its instrument (`staff_in_instrument`).

use mdm_model::{Database, EntityId, Value};
use mdm_notation::Orchestra;

use crate::error::{CoreError, Result};

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn i(v: i64) -> Value {
    Value::Integer(v)
}

/// Stores an orchestra for a score: ORCHESTRA / SECTION / INSTRUMENT /
/// PART entities with their orderings, PERFORMS relating the orchestra
/// to the score, and `voice_in_part` attaching the movement's voices.
/// Returns the ORCHESTRA entity id.
pub fn store_orchestra(
    db: &mut Database,
    score_id: EntityId,
    orchestra: &Orchestra,
) -> Result<EntityId> {
    let orch_id = db.create_entity("ORCHESTRA", &[("name", s(&orchestra.name))])?;
    db.relate(
        "PERFORMS",
        &[("orchestra", orch_id), ("score", score_id)],
        &[],
    )?;
    // Voice entities of the score's movements, looked up by name.
    let mut voice_entities: Vec<(String, EntityId)> = Vec::new();
    for m_id in db.ord_children("movement_in_score", Some(score_id))? {
        for v_id in db.ord_children("voice_in_movement", Some(m_id))? {
            let name = db
                .get_attr(v_id, "name")?
                .as_str()
                .unwrap_or_default()
                .to_string();
            voice_entities.push((name, v_id));
        }
    }
    for section in &orchestra.sections {
        let sec_id = db.create_entity("SECTION", &[("family", s(&section.family))])?;
        db.ord_append("section_in_orchestra", Some(orch_id), sec_id)?;
        for instrument in &section.instruments {
            let inst_id = db.create_entity(
                "INSTRUMENT",
                &[
                    ("name", s(&instrument.name)),
                    ("definition", s(&instrument.definition)),
                ],
            )?;
            db.ord_append("instrument_in_section", Some(sec_id), inst_id)?;
            for part in &instrument.parts {
                let part_id = db.create_entity("PART", &[("name", s(&part.name))])?;
                db.ord_append("part_in_instrument", Some(inst_id), part_id)?;
                for vname in &part.voices {
                    for (name, v_id) in &voice_entities {
                        if name == vname
                            && db
                                .store()
                                .ordering_parent(
                                    db.schema(),
                                    db.schema().ordering_id("voice_in_part")?,
                                    *v_id,
                                )
                                .is_err()
                        {
                            db.ord_append("voice_in_part", Some(part_id), *v_id)?;
                        }
                    }
                }
            }
        }
    }
    Ok(orch_id)
}

/// Page-layout parameters.
#[derive(Debug, Clone, Copy)]
pub struct LayoutConfig {
    /// Measures notated per system line.
    pub measures_per_system: usize,
    /// System lines per page.
    pub systems_per_page: usize,
}

impl Default for LayoutConfig {
    fn default() -> LayoutConfig {
        LayoutConfig {
            measures_per_system: 4,
            systems_per_page: 6,
        }
    }
}

/// What a layout pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutSummary {
    /// Pages created.
    pub pages: usize,
    /// Systems created.
    pub systems: usize,
    /// Staves created.
    pub staves: usize,
}

/// Derives the graphical hierarchy for a stored score: PAGE entities
/// under the score, SYSTEM entities under each page, one STAFF per voice
/// under each system (each staff *also* ordered under its instrument),
/// and the nine staff DEGREE positions under each staff.
pub fn layout_score(
    db: &mut Database,
    score_id: EntityId,
    config: LayoutConfig,
) -> Result<LayoutSummary> {
    if config.measures_per_system == 0 || config.systems_per_page == 0 {
        return Err(CoreError::Internal("layout config must be positive".into()));
    }
    // Total measures across movements and the voice list (first movement
    // defines the staff complement).
    let movements = db.ord_children("movement_in_score", Some(score_id))?;
    let mut total_measures = 0usize;
    let mut voices: Vec<EntityId> = Vec::new();
    for (k, m_id) in movements.iter().enumerate() {
        total_measures += db.ord_children("measure_in_movement", Some(*m_id))?.len();
        if k == 0 {
            voices = db.ord_children("voice_in_movement", Some(*m_id))?;
        }
    }
    let total_systems = total_measures.div_ceil(config.measures_per_system).max(1);
    let total_pages = total_systems.div_ceil(config.systems_per_page);

    // Instrument entities by name, for the staff's second parent.
    let mut instruments: Vec<(String, EntityId)> = Vec::new();
    if db.schema().entity_type_id("INSTRUMENT").is_ok() {
        for &inst in db.instances_of("INSTRUMENT")? {
            let name = db
                .get_attr(inst, "name")?
                .as_str()
                .unwrap_or_default()
                .to_string();
            instruments.push((name, inst));
        }
    }

    let mut summary = LayoutSummary {
        pages: 0,
        systems: 0,
        staves: 0,
    };
    let mut system_no = 0usize;
    for page_no in 0..total_pages {
        let page_id = db.create_entity("PAGE", &[("number", i(page_no as i64 + 1))])?;
        db.ord_append("page_in_score", Some(score_id), page_id)?;
        summary.pages += 1;
        for _ in 0..config.systems_per_page {
            if system_no >= total_systems {
                break;
            }
            system_no += 1;
            let sys_id = db.create_entity("SYSTEM", &[("number", i(system_no as i64))])?;
            db.ord_append("system_on_page", Some(page_id), sys_id)?;
            summary.systems += 1;
            for (staff_no, &v_id) in voices.iter().enumerate() {
                let staff_id = db.create_entity("STAFF", &[("number", i(staff_no as i64 + 1))])?;
                db.ord_append("staff_in_system", Some(sys_id), staff_id)?;
                summary.staves += 1;
                // The staff's second parent: its instrument (§5.5's
                // multiple-parents configuration, live).
                let vinst = db
                    .get_attr(v_id, "instrument")?
                    .as_str()
                    .unwrap_or_default()
                    .to_string();
                if let Some((_, inst)) = instruments.iter().find(|(n, _)| *n == vinst) {
                    db.ord_append("staff_in_instrument", Some(*inst), staff_id)?;
                }
                for degree in 0..9 {
                    let d = db.create_entity("DEGREE", &[("position", i(degree))])?;
                    db.ord_append("degree_on_staff", Some(staff_id), d)?;
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdm::MusicDataManager;
    use mdm_notation::fixtures::bwv578_subject;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-layout-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn orchestra_entities_and_relationships() {
        let dir = tmpdir("orch");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let score = bwv578_subject();
        let id = mdm.store_score(&score).unwrap();
        let orch = Orchestra::from_voices("organ solo", &score.movements[0].voices);
        let orch_id = store_orchestra(mdm.database_mut(), id, &orch).unwrap();
        let db = mdm.database();
        // ORCHESTRA → SECTION → INSTRUMENT → PART chain.
        let sections = db
            .ord_children("section_in_orchestra", Some(orch_id))
            .unwrap();
        assert_eq!(sections.len(), 1);
        let instruments = db
            .ord_children("instrument_in_section", Some(sections[0]))
            .unwrap();
        assert_eq!(instruments.len(), 1);
        let parts = db
            .ord_children("part_in_instrument", Some(instruments[0]))
            .unwrap();
        assert_eq!(parts.len(), 1);
        // The movement's voice hangs under the part.
        let part_voices = db.ord_children("voice_in_part", Some(parts[0])).unwrap();
        assert_eq!(part_voices.len(), 1);
        // PERFORMS relates orchestra to score.
        let performed = db.related("PERFORMS", orch_id, "score").unwrap();
        assert_eq!(performed, vec![id]);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn layout_counts_and_multiple_parents() {
        let dir = tmpdir("pages");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let score = bwv578_subject(); // 3 measures, 1 voice
        let id = mdm.store_score(&score).unwrap();
        let orch = Orchestra::from_voices("organ solo", &score.movements[0].voices);
        store_orchestra(mdm.database_mut(), id, &orch).unwrap();
        let summary = layout_score(
            mdm.database_mut(),
            id,
            LayoutConfig {
                measures_per_system: 2,
                systems_per_page: 1,
            },
        )
        .unwrap();
        assert_eq!(
            summary,
            LayoutSummary {
                pages: 2,
                systems: 2,
                staves: 2
            }
        );
        let db = mdm.database();
        let pages = db.ord_children("page_in_score", Some(id)).unwrap();
        assert_eq!(pages.len(), 2);
        // Every staff has two parents: its system and its instrument.
        let staff = db.instances_of("STAFF").unwrap()[0];
        let sys_parent = db.ord_parent("staff_in_system", staff).unwrap();
        let inst_parent = db.ord_parent("staff_in_instrument", staff).unwrap();
        assert!(sys_parent.is_some());
        assert!(inst_parent.is_some());
        assert_ne!(sys_parent, inst_parent);
        // Degrees under each staff.
        let degrees = db.ord_children("degree_on_staff", Some(staff)).unwrap();
        assert_eq!(degrees.len(), 9);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn layout_rejects_zero_config() {
        let dir = tmpdir("zero");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm.store_score(&bwv578_subject()).unwrap();
        assert!(layout_score(
            mdm.database_mut(),
            id,
            LayoutConfig {
                measures_per_system: 0,
                systems_per_page: 1
            }
        )
        .is_err());
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }
}
