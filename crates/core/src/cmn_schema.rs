//! The database schema for common musical notation (§7, figs. 11 and 13).
//!
//! The schema is written in the DDL of `mdm-lang` and installed by
//! executing it — the MDM dogfoods its own data definition language. The
//! orderings exercise every configuration of §5.5: multiple levels
//! (score → movement → measure → sync), multiple orderings under one
//! parent (parts and staves under an instrument), inhomogeneous
//! orderings (chords and rests under a voice), multiple parents (a chord
//! under its sync, its voice, and its group; a staff under its
//! instrument and its system), and recursion (groups under groups).

use mdm_lang::Session;
use mdm_model::Database;

use crate::error::{CoreError, Result};

/// The CMN schema, in the paper's DDL.
pub const CMN_DDL: &str = r#"
-- Conceptual / bibliographic layer (fig. 5, §4.2)
define entity PERSON (name = string)
define entity SCORE (title = string, catalog_id = string, composer = string)
define relationship COMPOSER (person = PERSON, score = SCORE)

-- Temporal aspect (fig. 13)
define entity MOVEMENT (name = string, meter_num = integer, meter_den = integer, tempo_bpm = float, tempo_map = string)
define entity MEASURE (number = integer, start_num = integer, start_den = integer)
define entity SYNC (time_num = integer, time_den = integer, measure_number = integer, beat_num = integer, beat_den = integer)
define entity VOICE (name = string, instrument = string, clef = string, key_fifths = integer, dynamics = string)
define entity CHORD (base = string, dots = integer, tup_actual = integer, tup_normal = integer)
define entity REST (base = string, dots = integer, tup_actual = integer, tup_normal = integer)
define entity NOTE (step = string, alter = integer, octave = integer, midi_key = integer, tied = boolean, syllable = string, articulations = string)
define entity EVENT (midi_key = integer, start_num = integer, start_den = integer, end_num = integer, end_den = integer, velocity = integer)
define entity MIDI (kind = string, time_seconds = float, midi_key = integer, velocity = integer, channel = integer)
define entity MIDI_CONTROL (controller = integer, value = integer, time_seconds = float, channel = integer, beat_num = integer, beat_den = integer)
define entity GROUP (kind = string)

-- Timbral aspect (fig. 11)
define entity ORCHESTRA (name = string)
define entity SECTION (family = string)
define entity INSTRUMENT (name = string, definition = string)
define entity PART (name = string)
define relationship PERFORMS (orchestra = ORCHESTRA, score = SCORE)

-- Graphical aspect (fig. 11)
define entity PAGE (number = integer)
define entity SYSTEM (number = integer)
define entity STAFF (number = integer)
define entity DEGREE (position = integer)
define entity TEXT (content = string)
define entity SYLLABLE (content = string)
define relationship LYRIC (syllable = SYLLABLE, note = NOTE)

-- Hierarchical orderings
define ordering movement_in_score (MOVEMENT) under SCORE
define ordering measure_in_movement (MEASURE) under MOVEMENT
define ordering sync_in_measure (SYNC) under MEASURE
define ordering chord_at_sync (CHORD) under SYNC
define ordering voice_in_movement (VOICE) under MOVEMENT
define ordering voice_content (CHORD, REST) under VOICE
define ordering note_in_chord (NOTE) under CHORD
define ordering event_in_voice (EVENT) under VOICE
define ordering note_in_event (NOTE) under EVENT
define ordering midi_in_event (MIDI) under EVENT
define ordering control_in_movement (MIDI_CONTROL) under MOVEMENT
define ordering group_content (GROUP, CHORD, REST) under GROUP
define ordering group_in_voice (GROUP) under VOICE
define ordering voice_in_part (VOICE) under PART
define ordering part_in_instrument (PART) under INSTRUMENT
define ordering staff_in_instrument (STAFF) under INSTRUMENT
define ordering instrument_in_section (INSTRUMENT) under SECTION
define ordering section_in_orchestra (SECTION) under ORCHESTRA
define ordering page_in_score (PAGE) under SCORE
define ordering system_on_page (SYSTEM) under PAGE
define ordering staff_in_system (STAFF) under SYSTEM
define ordering degree_on_staff (DEGREE) under STAFF
define ordering syllable_in_text (SYLLABLE) under TEXT
define ordering text_in_voice (TEXT) under VOICE
"#;

/// Installs the CMN schema into a database (no-op if already installed).
pub fn install(db: &mut Database) -> Result<()> {
    if db.schema().entity_type_id("SCORE").is_ok() {
        return Ok(());
    }
    let mut session = Session::new();
    session
        .execute(db, CMN_DDL)
        .map_err(|e| CoreError::Internal(format!("CMN schema failed to install: {e}")))?;
    Ok(())
}

/// Descriptions for the fig. 11 census, keyed by entity name.
pub fn descriptions() -> Vec<(&'static str, &'static str)> {
    vec![
        ("SCORE", "The unit of musical composition"),
        ("MOVEMENT", "A temporal subsection of the score"),
        ("MEASURE", "A temporal subsection of the movement"),
        ("SYNC", "Sets of simultaneous events"),
        ("GROUP", "A group of contiguous chords and rests in a voice"),
        ("CHORD", "A set of notes in one voice at one sync"),
        ("EVENT", "An atomic unit of sound, one or more notes"),
        ("NOTE", "An atomic unit of music, a pitch in a chord"),
        ("REST", "A \"chord\" containing no notes"),
        ("MIDI", "A MIDI note event"),
        ("MIDI_CONTROL", "A MIDI control event at a point in time"),
        ("ORCHESTRA", "A set of instruments performing a score"),
        ("SECTION", "A family of instruments"),
        ("INSTRUMENT", "The unit of timbral definition"),
        ("PART", "Music assigned to an individual performer"),
        ("VOICE", "The unit of homophony"),
        (
            "TEXT",
            "In vocal music, a line of text associated with the notes",
        ),
        (
            "SYLLABLE",
            "The piece of text associated with a single note",
        ),
        ("PAGE", "One graphical page of the score"),
        ("SYSTEM", "One line of the score on a page"),
        (
            "STAFF",
            "A division of the system, associated with an instrument",
        ),
        ("DEGREE", "A division of the staff (line and space)"),
        ("PERSON", "A composer or performer"),
    ]
}

/// Renders the fig. 11 entity census: every entity type, its paper
/// description, and the live instance count in `db`.
pub fn census(db: &Database) -> String {
    let desc: std::collections::HashMap<_, _> = descriptions().into_iter().collect();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<56} {:>9}\n",
        "Entity type", "Description", "instances"
    ));
    out.push_str(&format!("{}\n", "-".repeat(81)));
    for e in db.schema().entity_types() {
        let d = desc.get(e.name.as_str()).copied().unwrap_or("");
        let count = db.instances_of(&e.name).map(<[u64]>::len).unwrap_or(0);
        out.push_str(&format!("{:<14} {:<56} {:>9}\n", e.name, d, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_installs_and_is_idempotent() {
        let mut db = Database::new();
        install(&mut db).unwrap();
        install(&mut db).unwrap();
        assert!(db.schema().entity_type_id("SYNC").is_ok());
        assert!(db.schema().ordering_id("note_in_chord").is_ok());
        assert!(db.schema().relationship_id("COMPOSER").is_ok());
    }

    #[test]
    fn orderings_cover_every_configuration_of_5_5() {
        let mut db = Database::new();
        install(&mut db).unwrap();
        let s = db.schema();
        // Multiple levels: SCORE → MOVEMENT → MEASURE → SYNC.
        for o in [
            "movement_in_score",
            "measure_in_movement",
            "sync_in_measure",
        ] {
            assert!(s.ordering_id(o).is_ok(), "{o}");
        }
        // Multiple orderings under one parent: INSTRUMENT covers both.
        let inst = s.entity_type_id("INSTRUMENT").unwrap();
        assert_eq!(s.orderings_with_parent(inst).len(), 2);
        // Inhomogeneous: chords and rests under a voice.
        let vc = s.ordering(s.ordering_id("voice_content").unwrap()).unwrap();
        assert_eq!(vc.children.len(), 2);
        // Multiple parents: CHORD is a child in three orderings.
        let chord = s.entity_type_id("CHORD").unwrap();
        assert!(s.orderings_with_child(chord).len() >= 3);
        // Recursive: group_content.
        let gc = s.ordering(s.ordering_id("group_content").unwrap()).unwrap();
        assert!(gc.is_recursive());
    }

    #[test]
    fn census_lists_figure11_entities() {
        let mut db = Database::new();
        install(&mut db).unwrap();
        let c = census(&db);
        assert!(c.contains("SYNC"));
        assert!(c.contains("Sets of simultaneous events"));
        assert!(c.contains("The unit of homophony"));
    }

    #[test]
    fn every_figure11_description_has_an_entity() {
        let mut db = Database::new();
        install(&mut db).unwrap();
        for (name, _) in descriptions() {
            assert!(
                db.schema().entity_type_id(name).is_ok(),
                "fig. 11 entity {name} missing from schema"
            );
        }
    }
}
