//! The Music Data Manager: "a service to other programs, known as
//! clients" (§2, fig. 1).
//!
//! One MDM owns a durable entity-relationship database (backed by the
//! storage engine) with the CMN schema installed, and exposes:
//!
//! * the data languages — DDL and QUEL with the ordering operators —
//!   via [`MusicDataManager::execute`] and [`MusicDataManager::query`];
//! * score services — [`store_score`], [`load_score`], DARMS import and
//!   export — so "a music analysis program can easily process the output
//!   of a composition program, if both use the same MDM";
//! * persistence — [`MusicDataManager::save`] checkpoints the database
//!   through the write-ahead-logged storage engine.
//!
//! [`store_score`]: MusicDataManager::store_score
//! [`load_score`]: MusicDataManager::load_score

use std::path::Path;

use mdm_lang::{Session, StmtResult, Table};
use mdm_model::{persist, Database, EntityId};
use mdm_notation::{Score, TimeSignature, Voice};
use mdm_storage::StorageEngine;

use crate::cmn_schema;
use crate::error::{CoreError, Result};
use crate::score_store;

/// The music data manager.
pub struct MusicDataManager {
    engine: StorageEngine,
    db: Database,
    session: Session,
}

impl MusicDataManager {
    /// Opens (or creates) a music database in `dir`, running storage
    /// recovery if needed, loading the persisted database, and installing
    /// the CMN schema on first use.
    pub fn open(dir: &Path) -> Result<MusicDataManager> {
        let engine = StorageEngine::open(dir)?;
        let mut db = persist::load(&engine)?;
        cmn_schema::install(&mut db)?;
        Ok(MusicDataManager {
            engine,
            db,
            session: Session::new(),
        })
    }

    /// The in-memory database (read access for clients).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (for clients that build structures
    /// directly rather than through QUEL).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The underlying storage engine (diagnostics, benchmarks).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Executes a program of DDL / QUEL statements.
    pub fn execute(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        Ok(self.session.execute(&mut self.db, text)?)
    }

    /// Executes a program and returns the last statement's rows (errors
    /// if the last statement produced no table).
    pub fn query(&mut self, text: &str) -> Result<Table> {
        let results = self.execute(text)?;
        match results.into_iter().last() {
            Some(StmtResult::Rows(t)) => Ok(t),
            other => Err(CoreError::Internal(format!(
                "query did not end in a retrieve: {other:?}"
            ))),
        }
    }

    /// Executes a *read-only* program (`range of` declarations and
    /// `retrieve` statements) and returns the last statement's rows.
    /// Takes `&self`: any number of reader clients can query one shared
    /// MDM concurrently, with no exclusive access required. Mutating
    /// statements are rejected; range declarations are local to the call
    /// rather than carried in the session.
    pub fn query_shared(&self, text: &str) -> Result<Table> {
        let mut session = Session::new();
        let results = session.execute_readonly(&self.db, text)?;
        match results.into_iter().last() {
            Some(StmtResult::Rows(t)) => Ok(t),
            other => Err(CoreError::Internal(format!(
                "query did not end in a retrieve: {other:?}"
            ))),
        }
    }

    /// Persists the database through the storage engine and checkpoints.
    pub fn save(&mut self) -> Result<()> {
        persist::save(&self.db, &self.engine)?;
        self.engine.checkpoint()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Score services
    // ------------------------------------------------------------------

    /// Stores a score, returning its SCORE entity id.
    pub fn store_score(&mut self, score: &Score) -> Result<EntityId> {
        score_store::store_score(&mut self.db, score)
    }

    /// Loads a stored score by entity id.
    pub fn load_score(&self, id: EntityId) -> Result<Score> {
        score_store::load_score(&self.db, id)
    }

    /// Finds a stored score by exact title.
    pub fn find_score(&self, title: &str) -> Result<Option<EntityId>> {
        score_store::find_score(&self.db, title)
    }

    /// Lists stored scores as (entity id, title).
    pub fn list_scores(&self) -> Result<Vec<(EntityId, String)>> {
        score_store::list_scores(&self.db)
    }

    /// Imports a DARMS-encoded voice as a one-voice score.
    pub fn import_darms(
        &mut self,
        title: &str,
        darms: &str,
        meter: TimeSignature,
    ) -> Result<EntityId> {
        let items = mdm_darms::parse(darms)?;
        let voice = mdm_darms::to_voice(&items)?;
        let mut movement =
            mdm_notation::Movement::new("imported", meter, mdm_notation::TempoMap::default());
        movement.voices.push(voice);
        let mut score = Score::new(title);
        score.movements.push(movement);
        self.store_score(&score)
    }

    /// Exports a stored score's given voice as canonical DARMS.
    pub fn export_darms(
        &self,
        score_id: EntityId,
        movement: usize,
        voice: usize,
    ) -> Result<String> {
        let score = self.load_score(score_id)?;
        let m = score
            .movements
            .get(movement)
            .ok_or_else(|| CoreError::BadScoreData(format!("no movement {movement}")))?;
        let v: &Voice = m
            .voices
            .get(voice)
            .ok_or_else(|| CoreError::BadScoreData(format!("no voice {voice}")))?;
        let items = mdm_darms::from_voice(v, m.meter)?;
        Ok(mdm_darms::emit(&mdm_darms::canonize(&items)))
    }

    /// The fig. 11 census over the live database.
    pub fn census(&self) -> String {
        cmn_schema::census(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_notation::fixtures::bwv578_subject;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-core-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn open_execute_query() {
        let dir = tmpdir("open");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
        let t = mdm.query("retrieve (PERSON.name)").unwrap();
        assert_eq!(t.len(), 1);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_and_reload_across_open() {
        let dir = tmpdir("persist");
        let id;
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            id = mdm.store_score(&bwv578_subject()).unwrap();
            mdm.save().unwrap();
        }
        let mdm = MusicDataManager::open(&dir).unwrap();
        let score = mdm.load_score(id).unwrap();
        assert_eq!(score, bwv578_subject());
        assert_eq!(mdm.find_score("Fuge g-moll").unwrap(), Some(id));
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_query_needs_no_exclusive_access() {
        let dir = tmpdir("shared-query");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
        mdm.execute("append to PERSON (name = \"Telemann\")")
            .unwrap();
        // Concurrent readers over one &MusicDataManager.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mdm = &mdm;
                s.spawn(move || {
                    let t = mdm
                        .query_shared("range of p is PERSON\nretrieve (p.name)")
                        .unwrap();
                    assert_eq!(t.len(), 2);
                });
            }
        });
        // Mutating statements are rejected on the shared path.
        assert!(mdm
            .query_shared("append to PERSON (name = \"nope\")")
            .is_err());
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quel_sees_stored_scores() {
        let dir = tmpdir("quel");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.store_score(&bwv578_subject()).unwrap();
        // The paper's §5.6 style query over real score data: notes under
        // the third chord of the subject voice.
        let t = mdm
            .query(
                "range of n is NOTE\n\
                 range of c is CHORD\n\
                 range of s is SYNC\n\
                 retrieve (n.midi_key) where n under c in note_in_chord \
                 and c under s in chord_at_sync and s.time_num = 2 and s.time_den = 1",
            )
            .unwrap();
        assert_eq!(t.len(), 1, "one note sounds at beat 2");
        assert_eq!(t.rows[0][0], mdm_model::Value::Integer(70), "Bb4");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn darms_import_export() {
        let dir = tmpdir("darms");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm
            .import_darms(
                "test fragment",
                "'G 'K2# 1Q 2Q 3H / R2W //",
                TimeSignature::common(),
            )
            .unwrap();
        let score = mdm.load_score(id).unwrap();
        assert_eq!(score.movements[0].voices[0].elements.len(), 5);
        let out = mdm.export_darms(id, 0, 0).unwrap();
        assert!(out.contains("'K2#"), "{out}");
        assert!(out.contains("21Q"), "{out}");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn census_counts_instances() {
        let dir = tmpdir("census");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.store_score(&bwv578_subject()).unwrap();
        let census = mdm.census();
        let note_line = census.lines().find(|l| l.starts_with("NOTE ")).unwrap();
        assert!(note_line.trim_end().ends_with("21"), "{note_line}");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }
}
