//! The Music Data Manager: "a service to other programs, known as
//! clients" (§2, fig. 1).
//!
//! One MDM owns a durable entity-relationship database (backed by the
//! storage engine) with the CMN schema installed, and exposes:
//!
//! * the data languages — DDL and QUEL with the ordering operators —
//!   via [`MusicDataManager::execute`] and [`MusicDataManager::query`];
//! * score services — [`store_score`], [`load_score`], DARMS import and
//!   export — so "a music analysis program can easily process the output
//!   of a composition program, if both use the same MDM";
//! * persistence — [`MusicDataManager::save`] checkpoints the database
//!   through the write-ahead-logged storage engine.
//!
//! [`store_score`]: MusicDataManager::store_score
//! [`load_score`]: MusicDataManager::load_score

use std::path::Path;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use mdm_lang::{PlanExplain, QuelMetrics, Session, StmtResult, Table};
use mdm_model::{persist, Database, EntityId, Value};
use mdm_notation::{Score, TimeSignature, Voice};
use mdm_obs::{
    Counter, HealthReport, Monitor, MonitorConfig, Registry, Snapshot, StatementStore, Tracer,
};
use mdm_storage::StorageEngine;

use crate::cmn_schema;
use crate::error::{CoreError, Result};
use crate::score_store;

/// The wire protocol version the MDM stack speaks, surfaced as the
/// `protocol` label on `mdm_build_info`. `mdm-net` owns the wire
/// constant; a test over there asserts the two stay equal.
pub const WIRE_PROTOCOL_VERSION: u16 = 4;

/// Engine table holding the statement journal: the QUEL text of every
/// successful `execute` since the last [`MusicDataManager::save`], each
/// row `seq:u64 LE ++ utf8 text`. Replayed (in sequence order) at open
/// so mutations are durable *between* whole-database checkpoints, and
/// dropped at save once the checkpoint carries their effects. Writing
/// it runs a real engine transaction — locks, buffer pool, WAL append,
/// group-commit fsync — which is also what threads genuine storage
/// spans into every traced `execute` request. Public because a replica
/// watches the replicated WAL stream for inserts into this table and
/// applies the journaled statement text to its own in-memory database,
/// keeping reads fresh between checkpoints.
pub const JOURNAL_TABLE: &str = "__stmt_journal";

/// Engine table carrying the statistics images across restarts: one row
/// per kind, a tag byte (1 = statement store, 2 = access statistics)
/// followed by the kind's own binary encoding. Rewritten on every
/// [`MusicDataManager::save`] just before the checkpoint, restored (best
/// effort — a malformed image is ignored, never fatal) at open.
const STATS_TABLE: &str = "__stats";

/// One `mdm_requests_total{client=…,api=…}` counter per public MDM entry
/// point, grouped by the kind of client the paper's fig. 1 anticipates:
/// language clients (QUEL), score/notation clients, DARMS translators,
/// persistence, and diagnostics.
struct RequestCounters {
    execute: Arc<Counter>,
    query: Arc<Counter>,
    query_shared: Arc<Counter>,
    explain: Arc<Counter>,
    store_score: Arc<Counter>,
    load_score: Arc<Counter>,
    find_score: Arc<Counter>,
    list_scores: Arc<Counter>,
    import_darms: Arc<Counter>,
    export_darms: Arc<Counter>,
    save: Arc<Counter>,
    census: Arc<Counter>,
    top: Arc<Counter>,
}

impl RequestCounters {
    fn register(registry: &Registry) -> RequestCounters {
        let c = |client, api| {
            registry.counter_labeled(
                "mdm_requests_total",
                "client requests served by the music data manager",
                &[("client", client), ("api", api)],
            )
        };
        RequestCounters {
            execute: c("quel", "execute"),
            query: c("quel", "query"),
            query_shared: c("quel", "query_shared"),
            explain: c("quel", "explain"),
            store_score: c("score", "store_score"),
            load_score: c("score", "load_score"),
            find_score: c("score", "find_score"),
            list_scores: c("score", "list_scores"),
            import_darms: c("darms", "import"),
            export_darms: c("darms", "export"),
            save: c("persist", "save"),
            census: c("diagnostics", "census"),
            top: c("diagnostics", "top"),
        }
    }
}

/// The music data manager.
pub struct MusicDataManager {
    engine: StorageEngine,
    db: Database,
    session: Session,
    registry: Registry,
    quel: Arc<QuelMetrics>,
    requests: RequestCounters,
    tracer: Tracer,
    /// Per-fingerprint statement statistics, shared with every session
    /// this MDM hands out and persisted through [`save`](Self::save).
    stmt_store: Arc<StatementStore>,
    /// The continuous-monitoring subsystem: time-series recorder and
    /// health rules over [`registry`](Self::metrics_registry). Opened
    /// passive (on-demand sampling, no thread); servers call
    /// [`Monitor::enable_sampling`] through
    /// [`monitor`](Self::monitor) to start the background sampler.
    monitor: Arc<Monitor>,
    /// Next statement-journal sequence number (max persisted + 1).
    journal_seq: u64,
    /// Replica mode: the durable state is owned by a replication
    /// stream, so every local write path (execute, save) is refused.
    replica: bool,
}

impl MusicDataManager {
    /// Opens (or creates) a music database in `dir`, running storage
    /// recovery if needed, loading the persisted database, and installing
    /// the CMN schema on first use.
    ///
    /// One [`Registry`] spans every layer: the storage engine, the QUEL
    /// pipeline, and the MDM's own request counters all register into it,
    /// so [`metrics_snapshot`](Self::metrics_snapshot) captures the whole
    /// stack at once.
    pub fn open(dir: &Path) -> Result<MusicDataManager> {
        let registry = Registry::new();
        let engine =
            StorageEngine::open_with_registry(dir, mdm_storage::DEFAULT_POOL_PAGES, &registry)?;
        Self::finish_open(engine, registry)
    }

    /// As [`MusicDataManager::open`] with an explicit buffer-pool
    /// capacity, sourcing every storage file from `vfs`. Fault-injection
    /// harnesses use this to interpose on each I/O the full stack
    /// performs — schema install, journal appends, saves — while
    /// production callers use the plain-file default.
    pub fn open_with_vfs(
        dir: &Path,
        pool_pages: usize,
        vfs: &dyn mdm_storage::Vfs,
    ) -> Result<MusicDataManager> {
        let registry = Registry::new();
        let engine = StorageEngine::open_with_vfs(dir, pool_pages, &registry, vfs)?;
        Self::finish_open(engine, registry)
    }

    fn finish_open(engine: StorageEngine, registry: Registry) -> Result<MusicDataManager> {
        let quel = QuelMetrics::register(&registry);
        let requests = RequestCounters::register(&registry);
        let tracer = Tracer::new();
        tracer.register_metrics(&registry);
        registry
            .gauge_labeled(
                "mdm_build_info",
                "build metadata carried as labels; the value is always 1",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("protocol", "4"), // = WIRE_PROTOCOL_VERSION (labels are &str)
                ],
            )
            .set(1);
        registry
            .gauge(
                "mdm_process_start_seconds",
                "unix time at which this MDM opened its store",
            )
            .set(
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0),
            );
        let mut db = persist::load(&engine)?;
        cmn_schema::install(&mut db)?;
        let stmt_store = Arc::new(StatementStore::new());
        load_stats(&engine, &stmt_store, &db)?;
        let mut session = Session::with_metrics(Arc::clone(&quel));
        // Journal replay runs before the store is attached: replayed
        // statements recreate their access-statistics side effects but
        // are not re-recorded as fresh executions.
        let journal_seq = replay_journal(&engine, &mut session, &mut db)?;
        session.set_statement_store(Arc::clone(&stmt_store));
        session.set_lock_registry(registry.clone());
        // The monitor opens passive — no background thread until a
        // server enables sampling — but carries the default health
        // rules (and process gauges) from the first moment, so
        // `$alerts` and `\health` are meaningful even embedded.
        let monitor = Monitor::start(registry.clone(), MonitorConfig::disabled());
        monitor.seed_default_rules();
        session.set_monitor(Arc::clone(&monitor));
        // A replica marker in the data dir survives restarts: the
        // engine opened in replica mode, and the MDM must match.
        let replica = engine.is_replica();
        Ok(MusicDataManager {
            engine,
            db,
            session,
            registry,
            quel,
            requests,
            tracer,
            stmt_store,
            monitor,
            journal_seq,
            replica,
        })
    }

    /// Flips replica mode, on the MDM and its engine together. A
    /// replica refuses [`execute`](Self::execute) and
    /// [`save`](Self::save) — its WAL is fed by
    /// [`StorageEngine::replica_apply`] and a local append would
    /// collide with the primary's LSN space. Promoting a caught-up
    /// replica is `set_replica(false)`: the LSN space simply continues.
    /// The role sticks across restarts (a marker file in the data dir).
    pub fn set_replica(&mut self, on: bool) -> Result<()> {
        self.engine.set_replica(on)?;
        self.replica = on;
        Ok(())
    }

    /// Whether this MDM is currently a replica.
    pub fn is_replica(&self) -> bool {
        self.replica
    }

    /// The tracer every layer under this MDM records spans through. The
    /// network server adopts it for its per-request root spans; the
    /// shell and tests tune sampling and slow thresholds on it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A point-in-time snapshot of every metric in the MDM's registry —
    /// storage engine, QUEL pipeline, and request counters together.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The continuous-monitoring subsystem: the time-series recorder
    /// and health rules engine over this MDM's registry. Passive until
    /// a caller enables sampling.
    pub fn monitor(&self) -> Arc<Monitor> {
        Arc::clone(&self.monitor)
    }

    /// The rules engine's current verdict — what `/healthz` and the
    /// wire `Health` request serve.
    pub fn health(&self) -> HealthReport {
        self.monitor.health()
    }

    /// The registry all MDM layers report into (shares state with the
    /// engine's [`StorageEngine::metrics_registry`]).
    pub fn metrics_registry(&self) -> Registry {
        self.registry.clone()
    }

    /// The in-memory database (read access for clients).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (for clients that build structures
    /// directly rather than through QUEL).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The underlying storage engine (diagnostics, benchmarks).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Executes a program of DDL / QUEL statements. On success the
    /// program text is appended to the engine's statement journal in a
    /// real (WAL-logged, group-committed) transaction, so the mutation
    /// survives a crash even before the next [`save`](Self::save).
    pub fn execute(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        self.refuse_if_replica()?;
        self.requests.execute.inc();
        let results = self.run(text)?;
        self.journal_append(text)?;
        Ok(results)
    }

    /// Applies a statement that arrived through the replication stream
    /// to the in-memory database only — no journal append (the journal
    /// row itself arrives in the replicated WAL) and no replica-mode
    /// refusal. Best effort, like journal replay at open: a statement
    /// the replica's current image cannot execute is skipped; the next
    /// checkpoint reload resynchronizes from storage.
    pub fn apply_replicated_statement(&mut self, text: &str) -> bool {
        self.session.execute(&mut self.db, text).is_ok()
    }

    /// Rebuilds the in-memory database from the engine's current pages:
    /// persisted image, CMN schema, statistics, journal replay — the
    /// same sequence `open` runs. A replica calls this after folding a
    /// replicated checkpoint so its reads reflect exactly the storage
    /// state, discarding any drift the best-effort live statement
    /// application accumulated.
    pub fn reload_from_storage(&mut self) -> Result<()> {
        let mut db = persist::load(&self.engine)?;
        cmn_schema::install(&mut db)?;
        load_stats(&self.engine, &self.stmt_store, &db)?;
        let mut session = Session::with_metrics(Arc::clone(&self.quel));
        let journal_seq = replay_journal(&self.engine, &mut session, &mut db)?;
        session.set_statement_store(Arc::clone(&self.stmt_store));
        session.set_lock_registry(self.registry.clone());
        session.set_monitor(Arc::clone(&self.monitor));
        self.db = db;
        self.session = session;
        self.journal_seq = journal_seq;
        Ok(())
    }

    /// Appends one executed program to the statement journal.
    fn journal_append(&mut self, text: &str) -> Result<()> {
        let table = match self.engine.table_id(JOURNAL_TABLE) {
            Ok(t) => t,
            Err(_) => self.engine.create_table(JOURNAL_TABLE)?,
        };
        let mut body = Vec::with_capacity(8 + text.len());
        body.extend_from_slice(&self.journal_seq.to_le_bytes());
        body.extend_from_slice(text.as_bytes());
        let mut txn = self.engine.begin()?;
        self.engine.insert(&mut txn, table, &body)?;
        self.engine.commit(txn)?;
        self.journal_seq += 1;
        Ok(())
    }

    fn run(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        Ok(self.session.execute(&mut self.db, text)?)
    }

    /// Executes a program and returns the last statement's rows (errors
    /// if the last statement produced no table).
    pub fn query(&mut self, text: &str) -> Result<Table> {
        self.requests.query.inc();
        let results = self.run(text)?;
        match results.into_iter().last() {
            Some(StmtResult::Rows(t)) => Ok(t),
            other => Err(CoreError::Internal(format!(
                "query did not end in a retrieve: {other:?}"
            ))),
        }
    }

    /// Executes a *read-only* program (`range of` declarations and
    /// `retrieve` statements) and returns the last statement's rows.
    /// Takes `&self`: any number of reader clients can query one shared
    /// MDM concurrently, with no exclusive access required. Mutating
    /// statements are rejected; range declarations are local to the call
    /// rather than carried in the session.
    ///
    /// The call pins an engine [`ReadSnapshot`](mdm_storage::ReadSnapshot)
    /// for its duration: any
    /// storage read it triggers resolves through MVCC visibility rather
    /// than the lock manager, so shared queries take no read locks and
    /// can never deadlock or abort under wait-die.
    pub fn query_shared(&self, text: &str) -> Result<Table> {
        self.requests.query_shared.inc();
        let _pinned = self.engine.snapshot();
        let mut session = self.fresh_session();
        let results = session.execute_readonly(&self.db, text)?;
        match results.into_iter().last() {
            Some(StmtResult::Rows(t)) => Ok(t),
            other => Err(CoreError::Internal(format!(
                "query did not end in a retrieve: {other:?}"
            ))),
        }
    }

    /// Explains (and executes) a read-only program: `range of`
    /// declarations plus `retrieve` statements. Returns the access paths
    /// the QUEL planner chose — per-variable scan / index-eq /
    /// index-range / ord decisions with estimated row counts — alongside
    /// the rows, which is what the shell's `\plan` renders. Mutating
    /// statements are rejected, so nothing is journaled.
    pub fn explain(&mut self, text: &str) -> Result<(PlanExplain, Table)> {
        self.requests.explain.inc();
        Ok(self.session.explain(&self.db, text)?)
    }

    /// [`explain`] on the shared read path: takes `&self` so the server
    /// can answer EXPLAIN requests under its read lock, concurrently
    /// with queries. Range declarations are local to the call.
    ///
    /// [`explain`]: MusicDataManager::explain
    pub fn explain_shared(&self, text: &str) -> Result<(PlanExplain, Table)> {
        self.requests.explain.inc();
        let mut session = self.fresh_session();
        Ok(session.explain(&self.db, text)?)
    }

    /// A throwaway session wired like the persistent one: same metrics,
    /// same statement store (so shared-path queries are recorded and
    /// `$statements` sees the full history), same lock registry.
    fn fresh_session(&self) -> Session {
        let mut session = Session::with_metrics(Arc::clone(&self.quel));
        session.set_statement_store(Arc::clone(&self.stmt_store));
        session.set_lock_registry(self.registry.clone());
        session.set_monitor(Arc::clone(&self.monitor));
        session
    }

    /// The statement store every session of this MDM records into.
    pub fn statement_store(&self) -> Arc<StatementStore> {
        Arc::clone(&self.stmt_store)
    }

    /// The `limit` most expensive statement fingerprints, by total
    /// execution time, as a result table (what the shell's `\top`
    /// renders, locally or over the wire).
    pub fn statement_top(&self, limit: usize) -> Table {
        self.requests.top.inc();
        let int = |u: u64| Value::Integer(u as i64);
        let columns = [
            "fingerprint",
            "calls",
            "total_micros",
            "p50_micros",
            "p99_micros",
            "rows_returned",
            "rows_scanned",
        ];
        let rows = self
            .stmt_store
            .top(limit)
            .into_iter()
            .map(|s| {
                vec![
                    Value::String(s.fingerprint.clone()),
                    int(s.calls),
                    int(s.total_micros),
                    int(s.p50_micros()),
                    int(s.p99_micros()),
                    int(s.rows_returned),
                    int(s.rows_scanned),
                ]
            })
            .collect();
        Table {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
        }
    }

    /// Persists the database through the storage engine and checkpoints.
    /// The statement journal is dropped afterwards: the checkpointed
    /// image now carries every journaled statement's effect, so a
    /// reopen must not replay them a second time.
    pub fn save(&mut self) -> Result<()> {
        if self.replica {
            return Err(CoreError::Storage(mdm_storage::StorageError::Replication(
                "a replica's durable state is owned by the replication stream".into(),
            )));
        }
        self.requests.save.inc();
        persist::save(&self.db, &self.engine)?;
        self.write_stats_image()?;
        if self.engine.table_id(JOURNAL_TABLE).is_ok() {
            self.engine.drop_table(JOURNAL_TABLE)?;
        }
        self.journal_seq = 0;
        self.engine.checkpoint()?;
        Ok(())
    }

    /// Rewrites the [`STATS_TABLE`] image: the statement store and the
    /// access statistics, each tagged, so the checkpoint carries them.
    fn write_stats_image(&mut self) -> Result<()> {
        if self.engine.table_id(STATS_TABLE).is_ok() {
            self.engine.drop_table(STATS_TABLE)?;
        }
        let table = self.engine.create_table(STATS_TABLE)?;
        let mut txn = self.engine.begin()?;
        for (tag, payload) in [
            (1u8, self.stmt_store.encode()),
            (2u8, self.db.stats().encode()),
        ] {
            let mut body = Vec::with_capacity(1 + payload.len());
            body.push(tag);
            body.extend_from_slice(&payload);
            self.engine.insert(&mut txn, table, &body)?;
        }
        self.engine.commit(txn)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Score services
    // ------------------------------------------------------------------

    /// Stores a score, returning its SCORE entity id.
    pub fn store_score(&mut self, score: &Score) -> Result<EntityId> {
        self.refuse_if_replica()?;
        self.requests.store_score.inc();
        score_store::store_score(&mut self.db, score)
    }

    /// Typed refusal shared by the write-path entry points.
    fn refuse_if_replica(&self) -> Result<()> {
        if self.replica {
            return Err(CoreError::Storage(mdm_storage::StorageError::Replication(
                "this node is a replica; writes must go to the primary".into(),
            )));
        }
        Ok(())
    }

    /// Loads a stored score by entity id.
    pub fn load_score(&self, id: EntityId) -> Result<Score> {
        self.requests.load_score.inc();
        score_store::load_score(&self.db, id)
    }

    /// Finds a stored score by exact title.
    pub fn find_score(&self, title: &str) -> Result<Option<EntityId>> {
        self.requests.find_score.inc();
        score_store::find_score(&self.db, title)
    }

    /// Lists stored scores as (entity id, title).
    pub fn list_scores(&self) -> Result<Vec<(EntityId, String)>> {
        self.requests.list_scores.inc();
        score_store::list_scores(&self.db)
    }

    /// Imports a DARMS-encoded voice as a one-voice score.
    pub fn import_darms(
        &mut self,
        title: &str,
        darms: &str,
        meter: TimeSignature,
    ) -> Result<EntityId> {
        self.refuse_if_replica()?;
        self.requests.import_darms.inc();
        let items = mdm_darms::parse(darms)?;
        let voice = mdm_darms::to_voice(&items)?;
        let mut movement =
            mdm_notation::Movement::new("imported", meter, mdm_notation::TempoMap::default());
        movement.voices.push(voice);
        let mut score = Score::new(title);
        score.movements.push(movement);
        score_store::store_score(&mut self.db, &score)
    }

    /// Exports a stored score's given voice as canonical DARMS.
    pub fn export_darms(
        &self,
        score_id: EntityId,
        movement: usize,
        voice: usize,
    ) -> Result<String> {
        self.requests.export_darms.inc();
        let score = score_store::load_score(&self.db, score_id)?;
        let m = score
            .movements
            .get(movement)
            .ok_or_else(|| CoreError::BadScoreData(format!("no movement {movement}")))?;
        let v: &Voice = m
            .voices
            .get(voice)
            .ok_or_else(|| CoreError::BadScoreData(format!("no voice {voice}")))?;
        let items = mdm_darms::from_voice(v, m.meter)?;
        Ok(mdm_darms::emit(&mdm_darms::canonize(&items)))
    }

    /// The fig. 11 census over the live database.
    pub fn census(&self) -> String {
        self.requests.census.inc();
        cmn_schema::census(&self.db)
    }
}

/// Restores the persisted statistics images, if present. Best effort:
/// rows with unknown tags or malformed payloads are skipped — statistics
/// must never fail an open.
fn load_stats(engine: &StorageEngine, store: &StatementStore, db: &Database) -> Result<()> {
    let Ok(table) = engine.table_id(STATS_TABLE) else {
        return Ok(());
    };
    // Lock-free snapshot read: stats restore never contends with (or
    // aborts under) concurrent writers.
    let rows = engine.snapshot().scan(table)?;
    for (_, body) in rows {
        match body.split_first() {
            Some((1, rest)) => {
                store.restore(rest);
            }
            Some((2, rest)) => {
                db.stats().restore(rest);
            }
            _ => {}
        }
    }
    Ok(())
}

/// Replays the statement journal (if any) into `db` in sequence order,
/// returning the next free sequence number. A statement that no longer
/// executes cleanly (e.g. its table was since dropped by DDL that was
/// itself lost) is skipped rather than failing the open: the journal is
/// best-effort crash durability, not a second source of truth.
fn replay_journal(engine: &StorageEngine, session: &mut Session, db: &mut Database) -> Result<u64> {
    let Ok(table) = engine.table_id(JOURNAL_TABLE) else {
        return Ok(0);
    };
    // Snapshot read: one consistent view of the journal, no locks.
    let rows = engine.snapshot().scan(table)?;
    let mut entries: Vec<(u64, String)> = Vec::with_capacity(rows.len());
    for (_, body) in rows {
        if body.len() < 8 {
            continue;
        }
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        if let Ok(text) = String::from_utf8(body[8..].to_vec()) {
            entries.push((seq, text));
        }
    }
    entries.sort_by_key(|(seq, _)| *seq);
    let mut next = 0;
    for (seq, text) in entries {
        next = next.max(seq + 1);
        let _ = session.execute(db, &text);
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_notation::fixtures::bwv578_subject;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-core-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    /// Crash injected at the fsync of a journal commit: the statement
    /// whose commit never became durable must vanish wholesale on
    /// reopen, the ones before it must replay, and the store must keep
    /// working.
    #[test]
    fn journal_replay_survives_a_crash_mid_append() {
        use mdm_storage::{At, FaultController, FaultKind, FaultPlan};

        // Probe: the same workload fault-free, to learn which fsync
        // carries the third statement's journal commit.
        let sync_target = {
            let dir = tmpdir("journal-crash-probe");
            let ctl = FaultController::new(FaultPlan::none());
            let mut mdm = MusicDataManager::open_with_vfs(&dir, 64, &ctl.vfs()).unwrap();
            mdm.execute("define entity JOURNALED (n = int)").unwrap();
            mdm.execute("append to JOURNALED (n = 1)").unwrap();
            mdm.execute("append to JOURNALED (n = 2)").unwrap();
            let s = ctl.syncs();
            std::mem::forget(mdm);
            std::fs::remove_dir_all(&dir).ok();
            s
        };

        let dir = tmpdir("journal-crash");
        let ctl =
            FaultController::new(FaultPlan::none().with(At::Sync(sync_target), FaultKind::Crash));
        let mut mdm = MusicDataManager::open_with_vfs(&dir, 64, &ctl.vfs()).unwrap();
        mdm.execute("define entity JOURNALED (n = int)").unwrap();
        mdm.execute("append to JOURNALED (n = 1)").unwrap();
        mdm.execute("append to JOURNALED (n = 2)").unwrap();
        mdm.execute("append to JOURNALED (n = 3)")
            .expect_err("the crashed commit must surface an error");
        assert!(ctl.crashed(), "the planted crash must have fired");
        std::mem::forget(mdm); // the "process" died: no shutdown checkpoint

        // Reopen on plain files: recovery plus journal replay restore
        // exactly the durable statements.
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let t = mdm
            .query("range of j is JOURNALED\nretrieve (j.n)")
            .unwrap();
        assert_eq!(t.len(), 2, "rows after recovery: {:?}", t.rows);
        // The reopened store accepts new work end-to-end.
        mdm.execute("append to JOURNALED (n = 4)").unwrap();
        let t = mdm
            .query("range of j is JOURNALED\nretrieve (j.n)")
            .unwrap();
        assert_eq!(t.len(), 3);
        mdm.save().unwrap();
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_execute_query() {
        let dir = tmpdir("open");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
        let t = mdm.query("retrieve (PERSON.name)").unwrap();
        assert_eq!(t.len(), 1);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_and_reload_across_open() {
        let dir = tmpdir("persist");
        let id;
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            id = mdm.store_score(&bwv578_subject()).unwrap();
            mdm.save().unwrap();
        }
        let mdm = MusicDataManager::open(&dir).unwrap();
        let score = mdm.load_score(id).unwrap();
        assert_eq!(score, bwv578_subject());
        assert_eq!(mdm.find_score("Fuge g-moll").unwrap(), Some(id));
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_query_needs_no_exclusive_access() {
        let dir = tmpdir("shared-query");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
        mdm.execute("append to PERSON (name = \"Telemann\")")
            .unwrap();
        // Concurrent readers over one &MusicDataManager.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mdm = &mdm;
                s.spawn(move || {
                    let t = mdm
                        .query_shared("range of p is PERSON\nretrieve (p.name)")
                        .unwrap();
                    assert_eq!(t.len(), 2);
                });
            }
        });
        // Mutating statements are rejected on the shared path.
        assert!(mdm
            .query_shared("append to PERSON (name = \"nope\")")
            .is_err());
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quel_sees_stored_scores() {
        let dir = tmpdir("quel");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.store_score(&bwv578_subject()).unwrap();
        // The paper's §5.6 style query over real score data: notes under
        // the third chord of the subject voice.
        let t = mdm
            .query(
                "range of n is NOTE\n\
                 range of c is CHORD\n\
                 range of s is SYNC\n\
                 retrieve (n.midi_key) where n under c in note_in_chord \
                 and c under s in chord_at_sync and s.time_num = 2 and s.time_den = 1",
            )
            .unwrap();
        assert_eq!(t.len(), 1, "one note sounds at beat 2");
        assert_eq!(t.rows[0][0], mdm_model::Value::Integer(70), "Bb4");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn darms_import_export() {
        let dir = tmpdir("darms");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let id = mdm
            .import_darms(
                "test fragment",
                "'G 'K2# 1Q 2Q 3H / R2W //",
                TimeSignature::common(),
            )
            .unwrap();
        let score = mdm.load_score(id).unwrap();
        assert_eq!(score.movements[0].voices[0].elements.len(), 5);
        let out = mdm.export_darms(id, 0, 0).unwrap();
        assert!(out.contains("'K2#"), "{out}");
        assert!(out.contains("21Q"), "{out}");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_surface_reports_requests_and_engine_activity() {
        let dir = tmpdir("metrics");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
        assert_eq!(mdm.query("retrieve (PERSON.name)").unwrap().len(), 1);
        mdm.query_shared("retrieve (PERSON.name)").unwrap();
        let id = mdm.store_score(&bwv578_subject()).unwrap();
        mdm.load_score(id).unwrap();
        mdm.find_score("Fuge g-moll").unwrap();
        mdm.list_scores().unwrap();
        mdm.import_darms("frag", "'G 1Q 2Q //", TimeSignature::common())
            .unwrap();
        mdm.export_darms(id, 0, 0).unwrap();
        mdm.census();
        mdm.save().unwrap();

        let snap = mdm.metrics_snapshot();
        let req = |client, api| {
            snap.counter_with("mdm_requests_total", &[("client", client), ("api", api)])
                .unwrap_or(0)
        };
        // Every public entry point counts exactly its own invocations —
        // internal reuse (query→run, export→score_store) must not
        // double-count.
        assert_eq!(req("quel", "execute"), 1);
        assert_eq!(req("quel", "query"), 1);
        assert_eq!(req("quel", "query_shared"), 1);
        assert_eq!(req("score", "store_score"), 1);
        assert_eq!(req("score", "load_score"), 1);
        assert_eq!(req("score", "find_score"), 1);
        assert_eq!(req("score", "list_scores"), 1);
        assert_eq!(req("darms", "import"), 1);
        assert_eq!(req("darms", "export"), 1);
        assert_eq!(req("persist", "save"), 1);
        assert_eq!(req("diagnostics", "census"), 1);

        // The engine and QUEL pipeline report into the same registry.
        assert!(snap.counter("mdm_txn_begins_total").unwrap() > 0);
        assert!(snap.counter("mdm_wal_appends_total").unwrap() > 0);
        assert!(snap.counter("mdm_quel_rows_returned_total").unwrap() >= 2);
        assert!(snap.histogram("mdm_quel_exec_micros").unwrap().count > 0);
        assert_eq!(
            mdm.engine()
                .metrics_snapshot()
                .counter("mdm_txn_begins_total"),
            snap.counter("mdm_txn_begins_total"),
            "engine and MDM share one registry"
        );
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `$locks` must prove the snapshot-read story: while a writer
    /// holds an exclusive lock and a long snapshot scan is pinned open,
    /// a shared QUEL query sees zero shared (read) locks held, the
    /// writer's exclusive lock, and the MVCC gauges riding along.
    #[test]
    fn locks_entity_shows_zero_read_locks_during_snapshot_scans() {
        let dir = tmpdir("mvcc-locks");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();

        // A writer sits on an exclusive table lock for the whole check.
        let engine = mdm.engine().clone();
        let contended = engine.create_table("contended").unwrap();
        let mut writer = engine.begin().unwrap();
        engine.insert(&mut writer, contended, b"in flight").unwrap();

        // The long-running snapshot scan the issue pins: held open
        // across the query below.
        let long_scan = engine.snapshot();
        assert_eq!(long_scan.scan(contended).unwrap().len(), 0);

        let t = mdm
            .query_shared("range of l is $locks retrieve (l.name, l.value)")
            .unwrap();
        let value = |name: &str| {
            t.rows.iter().find_map(|r| match (&r[0], &r[1]) {
                (Value::String(n), Value::Integer(v)) if n == name => Some(*v),
                _ => None,
            })
        };
        assert_eq!(
            value("mdm_lock_held_shared"),
            Some(0),
            "snapshot reads must hold zero read locks"
        );
        assert!(
            value("mdm_lock_held_exclusive").unwrap() >= 1,
            "the writer's exclusive lock should be visible"
        );
        assert!(
            value("mdm_mvcc_snapshots_open").unwrap() >= 1,
            "the pinned snapshot should show in the MVCC gauges"
        );
        assert!(
            value("mdm_mvcc_snapshots_total").unwrap() >= 1,
            "snapshot opens should be counted"
        );

        drop(long_scan);
        engine.abort(writer).unwrap();
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn statement_journal_survives_reopen_without_save() {
        let dir = tmpdir("journal");
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
            mdm.execute("range of p is PERSON\nappend to PERSON (name = \"Telemann\")")
                .unwrap();
            // No save: the rows exist only as journaled statements.
        }
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            let t = mdm.query("retrieve (PERSON.name)").unwrap();
            assert_eq!(t.len(), 2, "journal replayed both appends");
            // Save folds the journal into the checkpoint and drops it.
            mdm.save().unwrap();
            assert!(mdm.engine().table_id("__stmt_journal").is_err());
        }
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        let t = mdm.query("retrieve (PERSON.name)").unwrap();
        assert_eq!(t.len(), 2, "no double replay after save");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_info_and_start_time_registered_at_open() {
        let dir = tmpdir("buildinfo");
        let mdm = MusicDataManager::open(&dir).unwrap();
        let snap = mdm.metrics_snapshot();
        let info = snap
            .entries
            .iter()
            .find(|e| e.name == "mdm_build_info")
            .expect("mdm_build_info registered");
        assert!(info
            .labels
            .iter()
            .any(|(k, v)| k == "version" && v == env!("CARGO_PKG_VERSION")));
        assert!(info
            .labels
            .iter()
            .any(|(k, v)| k == "protocol" && *v == WIRE_PROTOCOL_VERSION.to_string()));
        let start = snap.gauge("mdm_process_start_seconds").unwrap();
        assert!(start > 1_500_000_000, "plausible unix time, got {start}");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `define index` through the full MDM stack: the DDL is journaled
    /// (survives reopen without save), folded into the checkpoint by
    /// save (survives reopen after the journal is dropped), and the
    /// planner uses it — `explain` reports an index probe, not a scan.
    #[test]
    fn index_ddl_survives_journal_replay_and_save() {
        let dir = tmpdir("index-ddl");
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            for i in 0..20 {
                mdm.execute(&format!("append to PERSON (name = \"p{i}\")"))
                    .unwrap();
            }
            mdm.execute("define index person_by_name on PERSON (name)")
                .unwrap();
            // No save: the index definition exists only in the journal.
        }
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            assert!(mdm.database().index_defs().contains_key("person_by_name"));
            let (ex, t) = mdm
                .explain("range of p is PERSON\nretrieve (p.name) where p.name = \"p7\"")
                .unwrap();
            assert_eq!(t.len(), 1);
            assert_eq!(ex.vars[0].path, "index-eq(name)");
            assert_eq!(ex.rows_scanned, 1, "one probe, not a 20-row scan");
            mdm.save().unwrap();
        }
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        assert!(mdm.database().index_defs().contains_key("person_by_name"));
        let (ex, _) = mdm
            .explain("range of p is PERSON\nretrieve (p.name) where p.name = \"p7\"")
            .unwrap();
        assert_eq!(ex.vars[0].path, "index-eq(name)");
        // Mutations are rejected on the explain path.
        assert!(mdm.explain("append to PERSON (name = \"x\")").is_err());
        let snap = mdm.metrics_snapshot();
        assert_eq!(
            snap.counter_with(
                "mdm_requests_total",
                &[("client", "quel"), ("api", "explain")]
            ),
            Some(2)
        );
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The statistics subsystem end to end through the engine: recorded
    /// on both the exclusive and shared query paths, surfaced by
    /// `statement_top` and `$statements`, persisted by save, restored at
    /// open (journal replay must not re-record the replayed statements).
    #[test]
    fn statement_statistics_survive_save_and_reopen() {
        let q = "range of p is PERSON\nretrieve (p.name)";
        let fp = mdm_lang::fingerprint(q);
        let dir = tmpdir("stats-persist");
        {
            let mut mdm = MusicDataManager::open(&dir).unwrap();
            mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
            mdm.query(q).unwrap();
            mdm.query_shared(q).unwrap();
            let top = mdm.statement_top(10);
            let calls = top
                .rows
                .iter()
                .find_map(|r| (r[0] == Value::String(fp.clone())).then(|| r[1].clone()));
            assert_eq!(
                calls,
                Some(Value::Integer(2)),
                "exclusive and shared paths share one store: {top}"
            );
            mdm.save().unwrap();
        }
        let mdm = MusicDataManager::open(&dir).unwrap();
        // The restored history is queryable through ordinary QUEL.
        let t = mdm
            .query_shared("range of st is $statements\nretrieve (st.fingerprint, st.calls)")
            .unwrap();
        let restored = t
            .rows
            .iter()
            .find(|r| r[0] == Value::String(fp.clone()))
            .unwrap_or_else(|| panic!("restored fingerprint missing: {t}"));
        assert_eq!(restored[1], Value::Integer(2));
        // Access statistics are restored too (appends is cumulative and
        // must not be re-counted by journal replay after a save).
        let t = mdm
            .query_shared(
                "range of t is $tables\n\
                 retrieve (t.appends) where t.name = \"PERSON\"",
            )
            .unwrap();
        assert_eq!(t.rows, vec![vec![Value::Integer(1)]]);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The monitoring subsystem through the full MDM stack: the default
    /// rules are seeded at open, `$metrics`/`$alerts` answer on the
    /// shared read path, process gauges register, and a tripped rule
    /// flips [`MusicDataManager::health`].
    #[test]
    fn monitor_and_health_through_the_stack() {
        let dir = tmpdir("monitor");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.execute("append to PERSON (name = \"Bach\")").unwrap();
        assert!(!mdm.monitor().is_running(), "embedded opens stay passive");
        let h = mdm.health();
        assert!(h.healthy);
        assert!(
            h.alerts.iter().any(|a| a.rule == "wal_poisoned"),
            "default rules seeded at open: {:?}",
            h.alerts.iter().map(|a| a.rule.clone()).collect::<Vec<_>>()
        );
        // $metrics sees the whole registry, process gauges included.
        let t = mdm
            .query_shared(
                "range of m is $metrics\n\
                 retrieve (m.name, m.value) where m.name = \"mdm_process_threads\"",
            )
            .unwrap();
        assert_eq!(t.len(), 1, "{t}");
        if cfg!(target_os = "linux") {
            assert!(
                matches!(t.rows[0][1], Value::Float(v) if v >= 1.0),
                "thread count read from /proc/self: {t}"
            );
        }
        // $alerts is queryable and initially all-ok.
        let t = mdm
            .query_shared("range of a is $alerts retrieve (a.rule) where a.state = \"firing\"")
            .unwrap();
        assert!(t.is_empty(), "{t}");
        // Poisoning the WAL gauge trips the seeded critical rule on the
        // next sample.
        mdm.metrics_registry()
            .gauge(
                "mdm_wal_poisoned",
                "1 if a failed WAL fsync has poisoned the commit path (reopen to recover)",
            )
            .set(1);
        mdm.monitor().sample_now();
        let h = mdm.health();
        assert!(!h.healthy, "wal_poisoned fires: {:?}", h.alerts);
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn census_counts_instances() {
        let dir = tmpdir("census");
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        mdm.store_score(&bwv578_subject()).unwrap();
        let census = mdm.census();
        let note_line = census.lines().find(|l| l.starts_with("NOTE ")).unwrap();
        assert!(note_line.trim_end().ends_with("21"), "{note_line}");
        drop(mdm);
        std::fs::remove_dir_all(&dir).ok();
    }
}
