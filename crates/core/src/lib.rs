//! # mdm-core
//!
//! The Music Data Manager (MDM) of Rubenstein's *A Database Design for
//! Musical Information* (SIGMOD 1987): a database back end for musical
//! applications, serving clients through a shared entity-relationship
//! database extended with hierarchical ordering.
//!
//! * [`mdm`] — the [`MusicDataManager`] facade: a durable ER database
//!   with the CMN schema installed, DDL/QUEL execution, score storage,
//!   and DARMS import/export.
//! * [`cmn_schema`] — the §7 database schema for common musical notation
//!   (the fig. 11 entities, the fig. 13 temporal hierarchy), written in
//!   the system's own DDL.
//! * [`score_store`] — decomposing notation scores into entities and
//!   reassembling them.
//! * [`clients`] — the four §2 client programs: score editor,
//!   compositional tool, score library, and music analysis.
//!
//! ```
//! use mdm_core::MusicDataManager;
//! use mdm_notation::fixtures::bwv578_subject;
//!
//! let dir = std::env::temp_dir().join(format!("mdm-doc-core-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let mut mdm = MusicDataManager::open(&dir).unwrap();
//! let id = mdm.store_score(&bwv578_subject()).unwrap();
//!
//! // Any client can now query the same data through QUEL (§5.6):
//! let notes = mdm.query(
//!     "range of n is NOTE retrieve (n.midi_key) where n.step = \"G\"",
//! ).unwrap();
//! assert!(notes.len() > 0);
//! # drop(mdm); std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod clients;
pub mod cmn_schema;
pub mod error;
pub mod layout;
pub mod mdm;
pub mod score_store;

pub use clients::{Ambitus, Analyst, Composer, Library, ScoreEditor};
pub use error::{CoreError, Result};
pub use layout::{layout_score, store_orchestra, LayoutConfig, LayoutSummary};
pub use mdm::{MusicDataManager, WIRE_PROTOCOL_VERSION};
pub use score_store::{delete_score, find_score, list_scores, load_score, store_score};
