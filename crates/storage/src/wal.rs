//! The write-ahead log.
//!
//! Every mutation is logged before commit; the log is the source of truth
//! for crash recovery. Records are framed as
//! `[len: u32][checksum: u32][payload: len bytes]`; a truncated or
//! checksum-failing frame ends replay (torn-write tolerance).
//!
//! Durability contract: the log file is `fsync`ed on [`Wal::sync`], which
//! the engine calls at every commit and before flushing data pages. Dirty
//! data pages evicted between commits are written without an extra sync;
//! recovery replays from the last checkpoint, so process crashes are always
//! recovered exactly and OS crashes are recovered up to the last log sync.

use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::backend::{FileVfs, StorageBackend, Vfs};
use crate::error::Result;
use crate::page::{PageId, Rid};

/// Transaction identifier: a monotonically increasing timestamp, also used
/// by the wait-die deadlock policy.
pub type TxnId = u64;

/// Table identifier as recorded in the catalog.
pub type TableId = u32;

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit; everything logged for `txn` is now durable.
    Commit { txn: TxnId },
    /// Transaction abort; its effects were rolled back in place.
    Abort { txn: TxnId },
    /// A record insert.
    Insert {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        body: Vec<u8>,
    },
    /// A record update, with before- and after-images.
    Update {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// A record delete, with the before-image.
    Delete {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
    },
    /// An index-entry insert. Logical: recovery replays index records
    /// into freshly reset trees rather than trusting tree pages on disk
    /// (a crash can tear a multi-page split), so no page association or
    /// page-LSN is needed — durability rides the transaction's commit
    /// fsync like every other record of the transaction.
    IndexInsert {
        txn: TxnId,
        table: TableId,
        index: String,
        key: Vec<u8>,
        rid: Rid,
    },
    /// An index-entry delete (logical; see [`WalRecord::IndexInsert`]).
    IndexDelete {
        txn: TxnId,
        table: TableId,
        index: String,
        key: Vec<u8>,
        rid: Rid,
    },
    /// Structural: a heap file grew by linking `new_page` after `from_page`.
    /// Redo-only; never undone (an extra empty page is harmless).
    LinkPage {
        table: TableId,
        from_page: PageId,
        new_page: PageId,
    },
    /// Structural: full serialized catalog after a DDL change. Latest wins.
    CatalogSnapshot { bytes: Vec<u8> },
    /// Structural: a full image of a page, logged (and synced) before the
    /// page is rewritten in place. A torn in-place write can interleave
    /// two generations of a page whose older rows predate the log's last
    /// checkpoint; replaying the image restores the page wholesale, the
    /// way Postgres full-page writes and the InnoDB doublewrite buffer
    /// do. Redo-only; never undone.
    PageImage { page: PageId, bytes: Vec<u8> },
}

impl WalRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Commit { txn }
            | WalRecord::Abort { txn }
            | WalRecord::Insert { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::IndexInsert { txn, .. }
            | WalRecord::IndexDelete { txn, .. } => Some(*txn),
            WalRecord::LinkPage { .. }
            | WalRecord::CatalogSnapshot { .. }
            | WalRecord::PageImage { .. } => None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        fn put_rid(out: &mut Vec<u8>, rid: Rid) {
            out.extend_from_slice(&rid.page.to_le_bytes());
            out.extend_from_slice(&rid.slot.to_le_bytes());
        }
        match self {
            WalRecord::Begin { txn } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Commit { txn } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Insert {
                txn,
                table,
                rid,
                body,
            } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, body);
            }
            WalRecord::Update {
                txn,
                table,
                rid,
                old,
                new,
            } => {
                out.push(5);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, old);
                put_bytes(out, new);
            }
            WalRecord::Delete {
                txn,
                table,
                rid,
                old,
            } => {
                out.push(6);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, old);
            }
            WalRecord::LinkPage {
                table,
                from_page,
                new_page,
            } => {
                out.push(7);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&from_page.to_le_bytes());
                out.extend_from_slice(&new_page.to_le_bytes());
            }
            WalRecord::CatalogSnapshot { bytes } => {
                out.push(8);
                put_bytes(out, bytes);
            }
            WalRecord::PageImage { page, bytes } => {
                out.push(9);
                out.extend_from_slice(&page.to_le_bytes());
                put_bytes(out, bytes);
            }
            WalRecord::IndexInsert {
                txn,
                table,
                index,
                key,
                rid,
            } => {
                out.push(10);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_bytes(out, index.as_bytes());
                put_bytes(out, key);
                put_rid(out, *rid);
            }
            WalRecord::IndexDelete {
                txn,
                table,
                index,
                key,
                rid,
            } => {
                out.push(11);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_bytes(out, index.as_bytes());
                put_bytes(out, key);
                put_rid(out, *rid);
            }
        }
    }

    fn decode(buf: &[u8]) -> Option<WalRecord> {
        struct Cursor<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> Cursor<'a> {
            fn u8(&mut self) -> Option<u8> {
                let v = *self.buf.get(self.pos)?;
                self.pos += 1;
                Some(v)
            }
            fn u16(&mut self) -> Option<u16> {
                let b = self.buf.get(self.pos..self.pos + 2)?;
                self.pos += 2;
                Some(u16::from_le_bytes(b.try_into().ok()?))
            }
            fn u32(&mut self) -> Option<u32> {
                let b = self.buf.get(self.pos..self.pos + 4)?;
                self.pos += 4;
                Some(u32::from_le_bytes(b.try_into().ok()?))
            }
            fn u64(&mut self) -> Option<u64> {
                let b = self.buf.get(self.pos..self.pos + 8)?;
                self.pos += 8;
                Some(u64::from_le_bytes(b.try_into().ok()?))
            }
            fn bytes(&mut self) -> Option<Vec<u8>> {
                let len = self.u32()? as usize;
                let b = self.buf.get(self.pos..self.pos + len)?;
                self.pos += len;
                Some(b.to_vec())
            }
            fn rid(&mut self) -> Option<Rid> {
                Some(Rid::new(self.u64()?, self.u16()?))
            }
        }
        let mut c = Cursor { buf, pos: 0 };
        let rec = match c.u8()? {
            1 => WalRecord::Begin { txn: c.u64()? },
            2 => WalRecord::Commit { txn: c.u64()? },
            3 => WalRecord::Abort { txn: c.u64()? },
            4 => WalRecord::Insert {
                txn: c.u64()?,
                table: c.u32()?,
                rid: c.rid()?,
                body: c.bytes()?,
            },
            5 => WalRecord::Update {
                txn: c.u64()?,
                table: c.u32()?,
                rid: c.rid()?,
                old: c.bytes()?,
                new: c.bytes()?,
            },
            6 => WalRecord::Delete {
                txn: c.u64()?,
                table: c.u32()?,
                rid: c.rid()?,
                old: c.bytes()?,
            },
            7 => WalRecord::LinkPage {
                table: c.u32()?,
                from_page: c.u64()?,
                new_page: c.u64()?,
            },
            8 => WalRecord::CatalogSnapshot { bytes: c.bytes()? },
            9 => WalRecord::PageImage {
                page: c.u64()?,
                bytes: c.bytes()?,
            },
            10 => WalRecord::IndexInsert {
                txn: c.u64()?,
                table: c.u32()?,
                index: String::from_utf8(c.bytes()?).ok()?,
                key: c.bytes()?,
                rid: c.rid()?,
            },
            11 => WalRecord::IndexDelete {
                txn: c.u64()?,
                table: c.u32()?,
                index: String::from_utf8(c.bytes()?).ok()?,
                key: c.bytes()?,
                rid: c.rid()?,
            },
            _ => return None,
        };
        (c.pos == buf.len()).then_some(rec)
    }
}

/// FNV-1a, used as the frame checksum.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only log writer over `wal.log`.
///
/// Frames are buffered in memory and written to the backend at the
/// current append offset on flush. A failed flush leaves the buffer (and
/// the append offset) untouched, so a retry rewrites the whole buffer at
/// the same position — positioned writes make the retry overwrite any
/// partial data the failed attempt left behind.
pub struct Wal {
    backend: Arc<dyn StorageBackend>,
    /// Encoded frames not yet handed to the OS.
    buf: Vec<u8>,
    /// Append offset: length of the file as of the last successful flush.
    file_len: u64,
    path: PathBuf,
    appended: u64,
}

impl Wal {
    /// Opens (creating if absent) the log in `dir`, positioned for append.
    pub fn open(dir: &Path) -> Result<Wal> {
        Self::open_with(dir, &FileVfs)
    }

    /// As [`Wal::open`], sourcing the backend from `vfs`.
    pub fn open_with(dir: &Path, vfs: &dyn Vfs) -> Result<Wal> {
        let path = dir.join("wal.log");
        let backend = vfs.open(&path)?;
        let file_len = backend.len()?;
        Ok(Wal {
            backend,
            buf: Vec::new(),
            file_len,
            path,
            appended: 0,
        })
    }

    /// Appends one record (buffered; call [`Wal::sync`] to make durable).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let mut payload = Vec::with_capacity(64);
        rec.encode(&mut payload);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&checksum(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.appended += 1;
        Ok(())
    }

    /// Writes buffered frames to the OS at the append offset.
    fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.backend.write_at(&self.buf, self.file_len)?;
        self.file_len += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes buffered frames and syncs to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.backend.sync()?;
        Ok(())
    }

    /// Flushes buffered frames to the OS and returns the backend for the
    /// caller to [`StorageBackend::sync`] on. Group commit uses this so
    /// the slow fsync can run *outside* the log latch: the leader flushes
    /// under the latch (cheap), then fsyncs the shared backend handle
    /// while other transactions keep appending.
    pub fn flush_to_os(&mut self) -> Result<Arc<dyn StorageBackend>> {
        self.flush()?;
        Ok(Arc::clone(&self.backend))
    }

    /// Truncates the log to empty (after a checkpoint has flushed all data
    /// pages and the catalog).
    pub fn truncate(&mut self) -> Result<()> {
        self.buf.clear();
        self.backend.truncate(0)?;
        self.file_len = 0;
        self.backend.sync()?;
        Ok(())
    }

    /// Number of records appended since open (diagnostics).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Reads every valid record from the start of the log. Stops cleanly at
    /// the first torn or corrupt frame, returning the records read so far
    /// and the byte offset where valid data ended.
    pub fn replay(dir: &Path) -> Result<(Vec<WalRecord>, u64)> {
        let path = dir.join("wal.log");
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos: usize = 0;
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= buf.len() => e,
                _ => break, // torn tail
            };
            let payload = &buf[start..end];
            if checksum(payload) != sum {
                break;
            }
            match WalRecord::decode(payload) {
                Some(rec) => records.push(rec),
                None => break,
            }
            pos = end;
        }
        Ok((records, pos as u64))
    }

    /// Path of the log file (used by failure-injection tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-wal-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: 7 },
            WalRecord::Insert {
                txn: 7,
                table: 2,
                rid: Rid::new(3, 1),
                body: b"hello".to_vec(),
            },
            WalRecord::Update {
                txn: 7,
                table: 2,
                rid: Rid::new(3, 1),
                old: b"hello".to_vec(),
                new: b"world!".to_vec(),
            },
            WalRecord::Delete {
                txn: 7,
                table: 2,
                rid: Rid::new(3, 1),
                old: b"world!".to_vec(),
            },
            WalRecord::LinkPage {
                table: 2,
                from_page: 3,
                new_page: 9,
            },
            WalRecord::CatalogSnapshot {
                bytes: vec![1, 2, 3],
            },
            WalRecord::PageImage {
                page: 3,
                bytes: vec![0xAB; 64],
            },
            WalRecord::IndexInsert {
                txn: 7,
                table: 2,
                index: "by_key".to_string(),
                key: b"hello".to_vec(),
                rid: Rid::new(3, 1),
            },
            WalRecord::IndexDelete {
                txn: 7,
                table: 2,
                index: "by_key".to_string(),
                key: b"hello".to_vec(),
                rid: Rid::new(3, 1),
            },
            WalRecord::Commit { txn: 7 },
            WalRecord::Abort { txn: 8 },
        ]
    }

    #[test]
    fn roundtrip_all_record_types() {
        let dir = tmpdir("rt");
        let recs = sample_records();
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (read, _) = Wal::replay(&dir).unwrap();
        assert_eq!(read, recs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        let dir = tmpdir("none");
        std::fs::create_dir_all(&dir).unwrap();
        let (read, off) = Wal::replay(&dir).unwrap();
        assert!(read.is_empty());
        assert_eq!(off, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = tmpdir("torn");
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        // Append garbage simulating a torn write.
        let path = dir.join("wal.log");
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[0xFF, 0x13, 0x00]);
        std::fs::write(&path, &torn).unwrap();
        let (read, off) = Wal::replay(&dir).unwrap();
        assert_eq!(read.len(), sample_records().len());
        assert_eq!(off, full.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let dir = tmpdir("crc");
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let path = dir.join("wal.log");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *second* frame.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload = 8 + first_len + 8;
        bytes[second_payload] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (read, _) = Wal::replay(&dir).unwrap();
        assert_eq!(read.len(), 1, "only the intact first frame survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_empties_log() {
        let dir = tmpdir("trunc");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&WalRecord::Begin { txn: 1 }).unwrap();
        wal.sync().unwrap();
        wal.truncate().unwrap();
        wal.append(&WalRecord::Begin { txn: 2 }).unwrap();
        wal.sync().unwrap();
        let (read, _) = Wal::replay(&dir).unwrap();
        assert_eq!(read, vec![WalRecord::Begin { txn: 2 }]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
