//! The write-ahead log.
//!
//! Every mutation is logged before commit; the log is the source of truth
//! for crash recovery. Records are framed as
//! `[len: u32][checksum: u32][payload: len bytes]`; a truncated or
//! checksum-failing frame ends replay (torn-write tolerance).
//!
//! Durability contract: the log file is `fsync`ed on [`Wal::sync`], which
//! the engine calls at every commit and before flushing data pages. Dirty
//! data pages evicted between commits are written without an extra sync;
//! recovery replays from the last checkpoint, so process crashes are always
//! recovered exactly and OS crashes are recovered up to the last log sync.

use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::backend::{FileVfs, StorageBackend, Vfs};
use crate::error::{Result, StorageError};
use crate::page::{PageId, Rid};

/// Transaction identifier: a monotonically increasing timestamp, also used
/// by the wait-die deadlock policy.
pub type TxnId = u64;

/// Table identifier as recorded in the catalog.
pub type TableId = u32;

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit; everything logged for `txn` is now durable.
    Commit { txn: TxnId },
    /// Transaction abort; its effects were rolled back in place.
    Abort { txn: TxnId },
    /// A record insert.
    Insert {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        body: Vec<u8>,
    },
    /// A record update, with before- and after-images.
    Update {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// A record delete, with the before-image.
    Delete {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
    },
    /// An index-entry insert. Logical: recovery replays index records
    /// into freshly reset trees rather than trusting tree pages on disk
    /// (a crash can tear a multi-page split), so no page association or
    /// page-LSN is needed — durability rides the transaction's commit
    /// fsync like every other record of the transaction.
    IndexInsert {
        txn: TxnId,
        table: TableId,
        index: String,
        key: Vec<u8>,
        rid: Rid,
    },
    /// An index-entry delete (logical; see [`WalRecord::IndexInsert`]).
    IndexDelete {
        txn: TxnId,
        table: TableId,
        index: String,
        key: Vec<u8>,
        rid: Rid,
    },
    /// Structural: a heap file grew by linking `new_page` after `from_page`.
    /// Redo-only; never undone (an extra empty page is harmless).
    LinkPage {
        table: TableId,
        from_page: PageId,
        new_page: PageId,
    },
    /// Structural: full serialized catalog after a DDL change. Latest wins.
    CatalogSnapshot { bytes: Vec<u8> },
    /// Structural: a full image of a page, logged (and synced) before the
    /// page is rewritten in place. A torn in-place write can interleave
    /// two generations of a page whose older rows predate the log's last
    /// checkpoint; replaying the image restores the page wholesale, the
    /// way Postgres full-page writes and the InnoDB doublewrite buffer
    /// do. Redo-only; never undone.
    PageImage { page: PageId, bytes: Vec<u8> },
    /// Structural: everything before this record has been folded into the
    /// data pages and the log is about to rotate. A no-op for local
    /// recovery (the wildcard redo arm skips it); replicas use it as the
    /// signal that the stream up to here is checkpoint-consistent and can
    /// be folded into their own pages and their local log rotated.
    Checkpoint,
}

impl WalRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Commit { txn }
            | WalRecord::Abort { txn }
            | WalRecord::Insert { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::IndexInsert { txn, .. }
            | WalRecord::IndexDelete { txn, .. } => Some(*txn),
            WalRecord::LinkPage { .. }
            | WalRecord::CatalogSnapshot { .. }
            | WalRecord::PageImage { .. }
            | WalRecord::Checkpoint => None,
        }
    }

    /// Serializes the record payload (no frame header) into `out`.
    /// Public so replication can ship the exact on-disk encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        fn put_rid(out: &mut Vec<u8>, rid: Rid) {
            out.extend_from_slice(&rid.page.to_le_bytes());
            out.extend_from_slice(&rid.slot.to_le_bytes());
        }
        match self {
            WalRecord::Begin { txn } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Commit { txn } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Insert {
                txn,
                table,
                rid,
                body,
            } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, body);
            }
            WalRecord::Update {
                txn,
                table,
                rid,
                old,
                new,
            } => {
                out.push(5);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, old);
                put_bytes(out, new);
            }
            WalRecord::Delete {
                txn,
                table,
                rid,
                old,
            } => {
                out.push(6);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, old);
            }
            WalRecord::LinkPage {
                table,
                from_page,
                new_page,
            } => {
                out.push(7);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&from_page.to_le_bytes());
                out.extend_from_slice(&new_page.to_le_bytes());
            }
            WalRecord::CatalogSnapshot { bytes } => {
                out.push(8);
                put_bytes(out, bytes);
            }
            WalRecord::PageImage { page, bytes } => {
                out.push(9);
                out.extend_from_slice(&page.to_le_bytes());
                put_bytes(out, bytes);
            }
            WalRecord::IndexInsert {
                txn,
                table,
                index,
                key,
                rid,
            } => {
                out.push(10);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_bytes(out, index.as_bytes());
                put_bytes(out, key);
                put_rid(out, *rid);
            }
            WalRecord::IndexDelete {
                txn,
                table,
                index,
                key,
                rid,
            } => {
                out.push(11);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                put_bytes(out, index.as_bytes());
                put_bytes(out, key);
                put_rid(out, *rid);
            }
            WalRecord::Checkpoint => {
                out.push(12);
            }
        }
    }

    /// Decodes one record payload. Public counterpart of
    /// [`WalRecord::encode`] for replication consumers.
    pub fn decode(buf: &[u8]) -> Option<WalRecord> {
        struct Cursor<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> Cursor<'a> {
            fn u8(&mut self) -> Option<u8> {
                let v = *self.buf.get(self.pos)?;
                self.pos += 1;
                Some(v)
            }
            fn u16(&mut self) -> Option<u16> {
                let b = self.buf.get(self.pos..self.pos + 2)?;
                self.pos += 2;
                Some(u16::from_le_bytes(b.try_into().ok()?))
            }
            fn u32(&mut self) -> Option<u32> {
                let b = self.buf.get(self.pos..self.pos + 4)?;
                self.pos += 4;
                Some(u32::from_le_bytes(b.try_into().ok()?))
            }
            fn u64(&mut self) -> Option<u64> {
                let b = self.buf.get(self.pos..self.pos + 8)?;
                self.pos += 8;
                Some(u64::from_le_bytes(b.try_into().ok()?))
            }
            fn bytes(&mut self) -> Option<Vec<u8>> {
                let len = self.u32()? as usize;
                let b = self.buf.get(self.pos..self.pos + len)?;
                self.pos += len;
                Some(b.to_vec())
            }
            fn rid(&mut self) -> Option<Rid> {
                Some(Rid::new(self.u64()?, self.u16()?))
            }
        }
        let mut c = Cursor { buf, pos: 0 };
        let rec = match c.u8()? {
            1 => WalRecord::Begin { txn: c.u64()? },
            2 => WalRecord::Commit { txn: c.u64()? },
            3 => WalRecord::Abort { txn: c.u64()? },
            4 => WalRecord::Insert {
                txn: c.u64()?,
                table: c.u32()?,
                rid: c.rid()?,
                body: c.bytes()?,
            },
            5 => WalRecord::Update {
                txn: c.u64()?,
                table: c.u32()?,
                rid: c.rid()?,
                old: c.bytes()?,
                new: c.bytes()?,
            },
            6 => WalRecord::Delete {
                txn: c.u64()?,
                table: c.u32()?,
                rid: c.rid()?,
                old: c.bytes()?,
            },
            7 => WalRecord::LinkPage {
                table: c.u32()?,
                from_page: c.u64()?,
                new_page: c.u64()?,
            },
            8 => WalRecord::CatalogSnapshot { bytes: c.bytes()? },
            9 => WalRecord::PageImage {
                page: c.u64()?,
                bytes: c.bytes()?,
            },
            10 => WalRecord::IndexInsert {
                txn: c.u64()?,
                table: c.u32()?,
                index: String::from_utf8(c.bytes()?).ok()?,
                key: c.bytes()?,
                rid: c.rid()?,
            },
            11 => WalRecord::IndexDelete {
                txn: c.u64()?,
                table: c.u32()?,
                index: String::from_utf8(c.bytes()?).ok()?,
                key: c.bytes()?,
                rid: c.rid()?,
            },
            12 => WalRecord::Checkpoint,
            _ => return None,
        };
        (c.pos == buf.len()).then_some(rec)
    }
}

/// FNV-1a, used as the frame checksum.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Parses every valid frame in `buf`. Returns the decoded records, the
/// byte offset at which each frame starts, and the offset where valid
/// data ends (the first torn or corrupt frame, or end of buffer).
fn parse_frames(buf: &[u8]) -> (Vec<WalRecord>, Vec<usize>, usize) {
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos: usize = 0;
    while pos + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= buf.len() => e,
            _ => break, // torn tail
        };
        let payload = &buf[start..end];
        if checksum(payload) != sum {
            break;
        }
        match WalRecord::decode(payload) {
            Some(rec) => {
                records.push(rec);
                offsets.push(pos);
            }
            None => break,
        }
        pos = end;
    }
    (records, offsets, pos)
}

/// Reads a little-endian u64 sidecar file, defaulting to 0 when absent
/// or malformed. Sidecars hold log-sequence watermarks; they are written
/// with [`write_u64_sidecar`]'s write-fsync-rename dance so a reader
/// never observes a half-written value.
fn read_u64_sidecar(path: &Path) -> u64 {
    std::fs::read(path)
        .ok()
        .and_then(|b| {
            b.get(..8)
                .map(|x| u64::from_le_bytes(x.try_into().unwrap()))
        })
        .unwrap_or(0)
}

fn write_u64_sidecar(path: &Path, v: u64) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, v.to_le_bytes())?;
    File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Name of an archive segment whose first record has sequence `start`.
fn segment_name(start: u64) -> String {
    format!("seg-{start:016x}.log")
}

/// Iterator over `(lsn, record)` pairs from archive segments and the
/// live log, produced by [`Wal::read_from`]. Files are parsed lazily,
/// one at a time; records below the cursor (duplicates from a crash
/// between archiving and truncation) are skipped, so the yielded LSNs
/// are strictly increasing.
pub struct WalRangeIter {
    files: std::vec::IntoIter<(u64, PathBuf)>,
    current: std::vec::IntoIter<(u64, WalRecord)>,
    cursor: u64,
}

impl Iterator for WalRangeIter {
    type Item = (u64, WalRecord);

    fn next(&mut self) -> Option<(u64, WalRecord)> {
        loop {
            if let Some((lsn, rec)) = self.current.next() {
                if lsn >= self.cursor {
                    self.cursor = lsn + 1;
                    return Some((lsn, rec));
                }
                continue;
            }
            let (start, path) = self.files.next()?;
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(_) => continue, // absent live log or vanished segment
            };
            let (records, _, _) = parse_frames(&bytes);
            self.current = records
                .into_iter()
                .enumerate()
                .map(|(i, r)| (start + i as u64, r))
                .collect::<Vec<_>>()
                .into_iter();
        }
    }
}

/// Append-only log writer over `wal.log`.
///
/// Frames are buffered in memory and written to the backend at the
/// current append offset on flush. A failed flush leaves the buffer (and
/// the append offset) untouched, so a retry rewrites the whole buffer at
/// the same position — positioned writes make the retry overwrite any
/// partial data the failed attempt left behind.
pub struct Wal {
    backend: Arc<dyn StorageBackend>,
    /// Encoded frames not yet handed to the OS.
    buf: Vec<u8>,
    /// Append offset: length of the file as of the last successful flush.
    file_len: u64,
    path: PathBuf,
    dir: PathBuf,
    appended: u64,
    /// LSN (global record index for this database) of the first record
    /// in the live log. Persisted in the `wal.base` sidecar so record
    /// numbering survives log rotation.
    base_lsn: u64,
    /// LSN the next appended record will receive.
    next_lsn: u64,
    /// Everything below this LSN has been handed to the OS (flushed).
    /// Durability additionally requires a backend sync; the engine
    /// tracks the synced watermark.
    flushed_lsn: u64,
    /// Archive directory (`<dir>/wal-archive`), when archive mode is on.
    /// Rotation then copies outgoing frames into immutable segments
    /// instead of discarding them, keeping the full history replayable.
    archive: Option<PathBuf>,
}

impl Wal {
    /// Opens (creating if absent) the log in `dir`, positioned for append.
    pub fn open(dir: &Path) -> Result<Wal> {
        Self::open_with(dir, &FileVfs)
    }

    /// As [`Wal::open`], sourcing the backend from `vfs`.
    ///
    /// LSN bookkeeping: the `wal.base` sidecar names the LSN of the live
    /// log's first record, and `wal-archive/archive.end` (when archiving)
    /// names the first LSN not yet archived. When the live log holds
    /// records the sidecar base is authoritative — renumbering existing
    /// records would corrupt the stream — and an `archive.end` ahead of
    /// it just means a crash landed between archiving and truncation
    /// (readers dedup the overlap). When the log is empty the base is
    /// free to advance to `max(base, archive.end)`, which repairs the
    /// crash window between truncation and the sidecar update.
    pub fn open_with(dir: &Path, vfs: &dyn Vfs) -> Result<Wal> {
        let path = dir.join("wal.log");
        let backend = vfs.open(&path)?;
        let file_len = backend.len()?;
        let archive_dir = dir.join("wal-archive");
        let archive = archive_dir.is_dir().then_some(archive_dir);
        let base_sidecar = dir.join("wal.base");
        let sidecar_base = read_u64_sidecar(&base_sidecar);
        let archive_end = archive
            .as_ref()
            .map(|a| read_u64_sidecar(&a.join("archive.end")))
            .unwrap_or(0);
        let live_records = match std::fs::read(&path) {
            Ok(bytes) => parse_frames(&bytes).0.len() as u64,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        let base_lsn = if live_records > 0 {
            sidecar_base
        } else {
            sidecar_base.max(archive_end)
        };
        if live_records == 0 && base_lsn != sidecar_base {
            write_u64_sidecar(&base_sidecar, base_lsn)?;
        }
        let next_lsn = base_lsn + live_records;
        Ok(Wal {
            backend,
            buf: Vec::new(),
            file_len,
            path,
            dir: dir.to_path_buf(),
            appended: 0,
            base_lsn,
            next_lsn,
            flushed_lsn: next_lsn,
            archive,
        })
    }

    /// Appends one record (buffered; call [`Wal::sync`] to make durable).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let mut payload = Vec::with_capacity(64);
        rec.encode(&mut payload);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&checksum(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.appended += 1;
        self.next_lsn += 1;
        Ok(())
    }

    /// Writes buffered frames to the OS at the append offset.
    fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.backend.write_at(&self.buf, self.file_len)?;
        self.file_len += self.buf.len() as u64;
        self.buf.clear();
        self.flushed_lsn = self.next_lsn;
        Ok(())
    }

    /// Flushes buffered frames and syncs to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.backend.sync()?;
        Ok(())
    }

    /// Flushes buffered frames to the OS and returns the backend for the
    /// caller to [`StorageBackend::sync`] on. Group commit uses this so
    /// the slow fsync can run *outside* the log latch: the leader flushes
    /// under the latch (cheap), then fsyncs the shared backend handle
    /// while other transactions keep appending.
    pub fn flush_to_os(&mut self) -> Result<Arc<dyn StorageBackend>> {
        self.flush()?;
        Ok(Arc::clone(&self.backend))
    }

    /// Truncates the log to empty (after a checkpoint has flushed all data
    /// pages and the catalog). In archive mode the outgoing frames are
    /// first copied into an immutable segment file, so rotation never
    /// discards history.
    ///
    /// Crash-ordering: segment (write, fsync, rename), then
    /// `archive.end`, then the backend truncate, then `wal.base`. Every
    /// window between those steps is repaired at the next open by the
    /// reconciliation in [`Wal::open_with`] plus reader-side LSN dedup.
    pub fn truncate(&mut self) -> Result<()> {
        self.flush()?;
        if let Some(arch) = self.archive.clone() {
            let end_path = arch.join("archive.end");
            let from = read_u64_sidecar(&end_path).max(self.base_lsn);
            if self.next_lsn > from {
                let bytes = std::fs::read(&self.path)?;
                let (records, offsets, valid_end) = parse_frames(&bytes);
                let skip = (from - self.base_lsn) as usize;
                if skip < records.len() {
                    let start = offsets[skip];
                    let tmp = arch.join(format!("{}.tmp", segment_name(from)));
                    let seg = arch.join(segment_name(from));
                    std::fs::write(&tmp, &bytes[start..valid_end])?;
                    File::open(&tmp)?.sync_all()?;
                    std::fs::rename(&tmp, &seg)?;
                }
                write_u64_sidecar(&end_path, self.next_lsn)?;
            }
        }
        self.backend.truncate(0)?;
        self.file_len = 0;
        self.backend.sync()?;
        self.base_lsn = self.next_lsn;
        self.flushed_lsn = self.next_lsn;
        write_u64_sidecar(&self.dir.join("wal.base"), self.base_lsn)?;
        Ok(())
    }

    /// Number of records appended since open (diagnostics).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// LSN the next appended record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// LSN of the first record in the live log.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// Everything below this LSN has been written to the OS. Durable
    /// only after a subsequent backend sync.
    pub fn flushed_lsn(&self) -> u64 {
        self.flushed_lsn
    }

    /// Whether rotation archives outgoing frames into segment files.
    pub fn archive_enabled(&self) -> bool {
        self.archive.is_some()
    }

    /// Turns on archive mode: from now on [`Wal::truncate`] copies
    /// outgoing frames into `<dir>/wal-archive/seg-<lsn>.log` segments.
    /// Returns `true` if the mode was newly enabled (callers that need a
    /// complete history seed a full snapshot into the log right after).
    /// Archive mode is sticky: the directory's existence re-enables it
    /// at every subsequent open.
    pub fn enable_archive(&mut self) -> Result<bool> {
        if self.archive.is_some() {
            return Ok(false);
        }
        let arch = self.dir.join("wal-archive");
        std::fs::create_dir_all(&arch)?;
        // Nothing has been archived yet; anything already rotated away
        // is only represented by the data pages, which is why callers
        // snapshot them into the log when this returns true.
        write_u64_sidecar(&arch.join("archive.end"), self.base_lsn)?;
        self.archive = Some(arch);
        Ok(true)
    }

    /// Re-bases an empty log at `lsn`. Used when a fresh replica joins a
    /// primary whose history starts at a snapshot: the first batch it
    /// receives begins at the snapshot LSN, not 0.
    pub fn reset_base(&mut self, lsn: u64) -> Result<()> {
        if self.next_lsn != self.base_lsn || !self.buf.is_empty() || self.file_len != 0 {
            return Err(StorageError::Replication(format!(
                "cannot re-base a non-empty log (base {}, next {})",
                self.base_lsn, self.next_lsn
            )));
        }
        write_u64_sidecar(&self.dir.join("wal.base"), lsn)?;
        self.base_lsn = lsn;
        self.next_lsn = lsn;
        self.flushed_lsn = lsn;
        Ok(())
    }

    /// Iterates `(lsn, record)` pairs at and above `from_lsn`, spanning
    /// archive segments and the live log. Only OS-flushed frames are
    /// visible; callers wanting durable-only records additionally cap at
    /// the engine's synced watermark.
    pub fn read_from(&self, from_lsn: u64) -> Result<WalRangeIter> {
        Self::read_dir_from(&self.dir, from_lsn)
    }

    /// As [`Wal::read_from`], over a database directory without an open
    /// log handle (point-in-time restore reads a cold source this way).
    pub fn read_dir_from(dir: &Path, from_lsn: u64) -> Result<WalRangeIter> {
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        let arch = dir.join("wal-archive");
        if arch.is_dir() {
            for entry in std::fs::read_dir(&arch)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(hex) = name
                    .strip_prefix("seg-")
                    .and_then(|s| s.strip_suffix(".log"))
                {
                    if let Ok(start) = u64::from_str_radix(hex, 16) {
                        segs.push((start, entry.path()));
                    }
                }
            }
        }
        segs.sort();
        // Skip segments that end at or before the requested start; a
        // segment's end is the next segment's start (modulo crash
        // overlap, which only extends it).
        let keep_from = segs
            .iter()
            .position(|&(start, _)| start > from_lsn)
            .map(|i| i.saturating_sub(1))
            .unwrap_or_else(|| segs.len().saturating_sub(1));
        let mut files: Vec<(u64, PathBuf)> = segs.split_off(keep_from.min(segs.len()));
        files.push((read_u64_sidecar(&dir.join("wal.base")), dir.join("wal.log")));
        Ok(WalRangeIter {
            files: files.into_iter(),
            current: Vec::new().into_iter(),
            cursor: from_lsn,
        })
    }

    /// Writes `records` as a fresh framed `wal.log` in `dir`, with its
    /// `wal.base` sidecar set to `base_lsn`, and fsyncs both.
    /// Point-in-time restore synthesizes a destination log from archived
    /// history with this; `base_lsn` must be the sequence number of the
    /// first record (histories that start at a snapshot seed begin above
    /// zero).
    pub fn write_log(dir: &Path, base_lsn: u64, records: &[WalRecord]) -> Result<()> {
        write_u64_sidecar(&dir.join("wal.base"), base_lsn)?;
        let mut buf = Vec::new();
        for rec in records {
            let mut payload = Vec::with_capacity(64);
            rec.encode(&mut payload);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&checksum(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        let path = dir.join("wal.log");
        std::fs::write(&path, &buf)?;
        File::open(&path)?.sync_all()?;
        Ok(())
    }

    /// Reads every valid record from the start of the log. Stops cleanly at
    /// the first torn or corrupt frame, returning the records read so far
    /// and the byte offset where valid data ended.
    pub fn replay(dir: &Path) -> Result<(Vec<WalRecord>, u64)> {
        let path = dir.join("wal.log");
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (records, _, pos) = parse_frames(&buf);
        Ok((records, pos as u64))
    }

    /// Path of the log file (used by failure-injection tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-wal-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: 7 },
            WalRecord::Insert {
                txn: 7,
                table: 2,
                rid: Rid::new(3, 1),
                body: b"hello".to_vec(),
            },
            WalRecord::Update {
                txn: 7,
                table: 2,
                rid: Rid::new(3, 1),
                old: b"hello".to_vec(),
                new: b"world!".to_vec(),
            },
            WalRecord::Delete {
                txn: 7,
                table: 2,
                rid: Rid::new(3, 1),
                old: b"world!".to_vec(),
            },
            WalRecord::LinkPage {
                table: 2,
                from_page: 3,
                new_page: 9,
            },
            WalRecord::CatalogSnapshot {
                bytes: vec![1, 2, 3],
            },
            WalRecord::PageImage {
                page: 3,
                bytes: vec![0xAB; 64],
            },
            WalRecord::IndexInsert {
                txn: 7,
                table: 2,
                index: "by_key".to_string(),
                key: b"hello".to_vec(),
                rid: Rid::new(3, 1),
            },
            WalRecord::IndexDelete {
                txn: 7,
                table: 2,
                index: "by_key".to_string(),
                key: b"hello".to_vec(),
                rid: Rid::new(3, 1),
            },
            WalRecord::Checkpoint,
            WalRecord::Commit { txn: 7 },
            WalRecord::Abort { txn: 8 },
        ]
    }

    #[test]
    fn roundtrip_all_record_types() {
        let dir = tmpdir("rt");
        let recs = sample_records();
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (read, _) = Wal::replay(&dir).unwrap();
        assert_eq!(read, recs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        let dir = tmpdir("none");
        std::fs::create_dir_all(&dir).unwrap();
        let (read, off) = Wal::replay(&dir).unwrap();
        assert!(read.is_empty());
        assert_eq!(off, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = tmpdir("torn");
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        // Append garbage simulating a torn write.
        let path = dir.join("wal.log");
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[0xFF, 0x13, 0x00]);
        std::fs::write(&path, &torn).unwrap();
        let (read, off) = Wal::replay(&dir).unwrap();
        assert_eq!(read.len(), sample_records().len());
        assert_eq!(off, full.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let dir = tmpdir("crc");
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let path = dir.join("wal.log");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *second* frame.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload = 8 + first_len + 8;
        bytes[second_payload] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (read, _) = Wal::replay(&dir).unwrap();
        assert_eq!(read.len(), 1, "only the intact first frame survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every record ever appended is re-readable by LSN, including across
    /// segment/rotation boundaries, and `read_from` starts exactly at the
    /// requested LSN.
    #[test]
    fn read_from_spans_rotation_boundaries() {
        let dir = tmpdir("lsn");
        std::fs::create_dir_all(&dir).unwrap();
        let mut wal = Wal::open(&dir).unwrap();
        assert!(wal.enable_archive().unwrap());
        let mk = |i: u64| WalRecord::Insert {
            txn: i,
            table: 1,
            rid: Rid::new(i, 0),
            body: i.to_le_bytes().to_vec(),
        };
        let mut all = Vec::new();
        // Three generations separated by rotations, plus a buffered-but-
        // flushed tail in the live log.
        for generation in 0..3u64 {
            for i in 0..5u64 {
                let rec = mk(generation * 5 + i);
                wal.append(&rec).unwrap();
                all.push(rec);
            }
            wal.sync().unwrap();
            wal.truncate().unwrap();
        }
        for i in 15..18u64 {
            let rec = mk(i);
            wal.append(&rec).unwrap();
            all.push(rec);
        }
        wal.sync().unwrap();
        assert_eq!(wal.next_lsn(), 18);
        assert_eq!(wal.base_lsn(), 15);

        let read: Vec<(u64, WalRecord)> = wal.read_from(0).unwrap().collect();
        assert_eq!(read.len(), all.len());
        for (i, (lsn, rec)) in read.iter().enumerate() {
            assert_eq!(*lsn, i as u64, "LSNs are dense and ordered");
            assert_eq!(rec, &all[i]);
        }
        // A mid-stream start lands exactly on the requested LSN, even
        // when it falls inside an archived segment.
        for start in [0u64, 3, 5, 7, 12, 15, 17] {
            let tail: Vec<(u64, WalRecord)> = wal.read_from(start).unwrap().collect();
            assert_eq!(tail.first().map(|(l, _)| *l), Some(start));
            assert_eq!(tail.len() as u64, 18 - start);
        }
        assert_eq!(wal.read_from(18).unwrap().count(), 0);

        // LSNs survive reopen: the sidecars re-anchor the live log.
        drop(wal);
        let wal = Wal::open(&dir).unwrap();
        assert_eq!(wal.next_lsn(), 18);
        assert_eq!(wal.base_lsn(), 15);
        assert!(wal.archive_enabled(), "archive mode is sticky across opens");
        assert_eq!(wal.read_from(0).unwrap().count(), 18);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_base_rebases_only_empty_logs() {
        let dir = tmpdir("rebase");
        std::fs::create_dir_all(&dir).unwrap();
        let mut wal = Wal::open(&dir).unwrap();
        wal.reset_base(42).unwrap();
        assert_eq!(wal.next_lsn(), 42);
        wal.append(&WalRecord::Begin { txn: 1 }).unwrap();
        wal.sync().unwrap();
        assert!(wal.reset_base(99).is_err(), "non-empty log refuses re-base");
        drop(wal);
        let wal = Wal::open(&dir).unwrap();
        assert_eq!(wal.base_lsn(), 42);
        assert_eq!(wal.next_lsn(), 43);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_empties_log() {
        let dir = tmpdir("trunc");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&WalRecord::Begin { txn: 1 }).unwrap();
        wal.sync().unwrap();
        wal.truncate().unwrap();
        wal.append(&WalRecord::Begin { txn: 2 }).unwrap();
        wal.sync().unwrap();
        let (read, _) = Wal::replay(&dir).unwrap();
        assert_eq!(read, vec![WalRecord::Begin { txn: 2 }]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
