//! Deterministic fault injection over [`StorageBackend`].
//!
//! [`FaultVfs`] wraps the production file backend so that every write,
//! fsync, and truncate the engine issues — across *all* of its files —
//! passes through one totally-ordered operation counter. A scripted
//! [`FaultPlan`] names operations by index and attaches a [`FaultKind`]
//! to each; the same workload against the same plan always injects at
//! the same I/O, which is what makes crash-point *enumeration* possible:
//! run once cleanly to count the boundaries, then replay once per
//! boundary with a crash planted there (see [`crate::torture`]).
//!
//! # The crash model
//!
//! Writes pass straight through to the real file, but before each one
//! the layer records an undo entry (the bytes being overwritten, clipped
//! to the old file length). A successful fsync clears the file's undo
//! log and notes the synced length. A simulated crash rolls every
//! file's undo log back in reverse and truncates to the synced length —
//! the real file then holds exactly the bytes an OS crash would have
//! preserved: everything fsynced, nothing after. Reads are not counted
//! as boundaries (they cannot lose data) but fail once crashed, as does
//! every other operation, so a crashed engine cannot quietly heal
//! itself; reopening with a plain [`FileVfs`](crate::backend::FileVfs)
//! is the only way forward, exactly like a real reboot.
//!
//! Injected errors are ordinary [`io::Error`]s whose message carries the
//! [`FAULT_MSG`] prefix, so they surface through the engine as typed
//! [`StorageError::Io`](crate::error::StorageError::Io) values — never
//! panics — and tests can tell injected failures from real ones.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use mdm_obs::{Counter, Registry};

use crate::backend::{FileBackend, StorageBackend, Vfs};

/// Message prefix of every injected [`io::Error`].
pub const FAULT_MSG: &str = "mdm-fault";

/// True if an I/O error was manufactured by this module.
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().contains(FAULT_MSG)
}

/// What to inject when a planned operation index is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// This one operation fails with an injected error; the bytes are
    /// untouched and later operations proceed normally.
    FailIo,
    /// Simulated machine crash at this operation: un-synced bytes of
    /// every file are dropped and all further I/O fails.
    Crash,
    /// Torn write: the first `keep` bytes of this write persist, then
    /// the machine crashes. At a sync or truncate, degrades to `Crash`.
    TornWrite {
        /// Bytes of the write that reach the platter before the crash.
        keep: usize,
    },
    /// Short write: only `keep` bytes land and the operation errors,
    /// but the machine stays up (the caller may retry). At a sync or
    /// truncate, degrades to `FailIo`.
    ShortWrite {
        /// Bytes of the write that land before the error.
        keep: usize,
    },
    /// The fsync reports success without making anything durable; a
    /// later crash still drops the "synced" bytes. At a write or
    /// truncate, degrades to `FailIo`.
    LyingFsync,
    /// The fsync fails — and, as on Linux, the dirty bytes it covered
    /// are dropped and marked clean, so retrying proves nothing
    /// (fsyncgate). At a write or truncate, degrades to `FailIo`.
    FailFsync,
}

/// Names one I/O operation for a fault to land on. Operations are
/// counted per [`FaultController`], across every file it opened, in
/// execution order; reads are not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum At {
    /// The `n`th counted operation (writes, truncates, and syncs).
    Op(u64),
    /// The `n`th write or truncate.
    Write(u64),
    /// The `n`th sync.
    Sync(u64),
}

/// A scripted list of faults, each armed at one operation index. Every
/// fault fires at most once.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(At, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (count boundaries without injecting anything).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, at: At, kind: FaultKind) -> FaultPlan {
        self.faults.push((at, kind));
        self
    }
}

/// Which class of operation is asking for a fault decision.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Write,
    Sync,
}

/// One undo entry: the bytes that sat at `offset` before an un-synced
/// write or truncate (clipped to the file length of the time).
struct UndoEntry {
    offset: u64,
    old: Vec<u8>,
}

/// Per-file state: the real backend plus the undo log of un-synced
/// mutations. The undo lock is only taken while the controller's plan
/// lock is held, so the lock order is fixed.
struct FaultFile {
    backend: Arc<dyn StorageBackend>,
    undo: Mutex<UndoLog>,
}

struct UndoLog {
    entries: Vec<UndoEntry>,
    synced_len: u64,
}

impl FaultFile {
    /// Records the pre-image of a write of `len` bytes at `offset`.
    fn record_write_undo(&self, len: usize, offset: u64) -> io::Result<()> {
        let file_len = self.backend.len()?;
        let end = (offset + len as u64).min(file_len);
        let old = if offset < end {
            let mut b = vec![0u8; (end - offset) as usize];
            self.backend.read_at(&mut b, offset)?;
            b
        } else {
            Vec::new()
        };
        self.undo
            .lock()
            .unwrap()
            .entries
            .push(UndoEntry { offset, old });
        Ok(())
    }

    /// Records the tail a truncate to `new_len` is about to cut off.
    fn record_truncate_undo(&self, new_len: u64) -> io::Result<()> {
        let file_len = self.backend.len()?;
        if new_len < file_len {
            let mut b = vec![0u8; (file_len - new_len) as usize];
            self.backend.read_at(&mut b, new_len)?;
            self.undo.lock().unwrap().entries.push(UndoEntry {
                offset: new_len,
                old: b,
            });
        }
        Ok(())
    }

    /// Drops every un-synced mutation: restores pre-images in reverse
    /// and truncates back to the synced length, leaving the real file
    /// holding exactly what an OS crash would have preserved.
    fn drop_unsynced(&self) -> io::Result<()> {
        let mut undo = self.undo.lock().unwrap();
        for entry in undo.entries.drain(..).rev() {
            if !entry.old.is_empty() {
                self.backend.write_at(&entry.old, entry.offset)?;
            }
        }
        self.backend.truncate(undo.synced_len)?;
        Ok(())
    }

    /// A successful fsync: the file's current bytes are now the durable
    /// baseline.
    fn mark_synced(&self) -> io::Result<()> {
        let mut undo = self.undo.lock().unwrap();
        undo.entries.clear();
        undo.synced_len = self.backend.len()?;
        Ok(())
    }
}

struct FaultInner {
    plan: Vec<(At, FaultKind)>,
    next_op: u64,
    next_write: u64,
    next_sync: u64,
    crashed: bool,
    files: Vec<Arc<FaultFile>>,
    /// One human-readable line per counted operation, kept only when
    /// tracing is on: lets the torture harness name a boundary ("op 27:
    /// sync wal.log") when reporting a violation there.
    trace: Option<Vec<String>>,
}

impl FaultInner {
    fn trace_op(&mut self, file: &str, what: std::fmt::Arguments<'_>) {
        if let Some(trace) = &mut self.trace {
            trace.push(format!("op {}: {} {file}", self.next_op, what));
        }
    }
}

impl FaultInner {
    /// Counts this operation and pulls the fault (if any) armed for it.
    fn take_fault(&mut self, class: OpClass) -> Option<FaultKind> {
        let op = self.next_op;
        self.next_op += 1;
        let class_idx = match class {
            OpClass::Write => {
                let i = self.next_write;
                self.next_write += 1;
                i
            }
            OpClass::Sync => {
                let i = self.next_sync;
                self.next_sync += 1;
                i
            }
        };
        let hit = self.plan.iter().position(|&(at, _)| match at {
            At::Op(n) => n == op,
            At::Write(n) => class == OpClass::Write && n == class_idx,
            At::Sync(n) => class == OpClass::Sync && n == class_idx,
        })?;
        Some(self.plan.swap_remove(hit).1)
    }

    /// Simulated machine crash: every file loses its un-synced bytes
    /// and all further I/O fails.
    fn crash(&mut self) -> io::Result<()> {
        self.crashed = true;
        for file in &self.files {
            file.drop_unsynced()?;
        }
        Ok(())
    }
}

struct FaultShared {
    inner: Mutex<FaultInner>,
    ops: Arc<Counter>,
    injected: Arc<Counter>,
    crashes: Arc<Counter>,
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("{FAULT_MSG}: injected {what}"))
}

fn crashed_err() -> io::Error {
    io::Error::other(format!("{FAULT_MSG}: simulated crash"))
}

/// Handle for scripting and observing a fault-injected engine run.
/// Clone-cheap; all clones share the plan, the operation counter, and
/// the crash flag.
#[derive(Clone)]
pub struct FaultController {
    shared: Arc<FaultShared>,
}

impl FaultController {
    /// Creates a controller armed with `plan`.
    pub fn new(plan: FaultPlan) -> FaultController {
        FaultController {
            shared: Arc::new(FaultShared {
                inner: Mutex::new(FaultInner {
                    plan: plan.faults,
                    next_op: 0,
                    next_write: 0,
                    next_sync: 0,
                    crashed: false,
                    files: Vec::new(),
                    trace: None,
                }),
                ops: Counter::new(),
                injected: Counter::new(),
                crashes: Counter::new(),
            }),
        }
    }

    /// A [`Vfs`] whose every opened file is fault-wrapped under this
    /// controller. Hand it to
    /// [`StorageEngine::open_with_vfs`](crate::StorageEngine::open_with_vfs).
    pub fn vfs(&self) -> FaultVfs {
        FaultVfs {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Total counted operations (writes + truncates + syncs) so far.
    /// After a clean run this is the number of crash boundaries the
    /// workload exposes.
    pub fn ops(&self) -> u64 {
        self.shared.ops.get()
    }

    /// Writes and truncates counted so far.
    pub fn writes(&self) -> u64 {
        self.shared.inner.lock().unwrap().next_write
    }

    /// Syncs counted so far.
    pub fn syncs(&self) -> u64 {
        self.shared.inner.lock().unwrap().next_sync
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.shared.injected.get()
    }

    /// True once a simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.shared.inner.lock().unwrap().crashed
    }

    /// Turns on per-operation tracing: each counted operation records a
    /// line like `op 27: sync wal.log`. Enable before any I/O happens.
    pub fn enable_trace(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.trace.is_none() {
            inner.trace = Some(Vec::new());
        }
    }

    /// The recorded operation trace (empty unless tracing was enabled).
    pub fn trace(&self) -> Vec<String> {
        self.shared
            .inner
            .lock()
            .unwrap()
            .trace
            .clone()
            .unwrap_or_default()
    }

    /// Registers the controller's counters as `mdm_fault_*` metrics.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter_handle(
            "mdm_fault_ops_total",
            "I/O operations counted by the fault layer (crash boundaries)",
            &[],
            Arc::clone(&self.shared.ops),
        );
        registry.register_counter_handle(
            "mdm_fault_injected_total",
            "faults injected by the scripted plan",
            &[],
            Arc::clone(&self.shared.injected),
        );
        registry.register_counter_handle(
            "mdm_fault_crashes_total",
            "simulated machine crashes fired",
            &[],
            Arc::clone(&self.shared.crashes),
        );
    }
}

/// The [`Vfs`] half of fault injection; obtained from
/// [`FaultController::vfs`].
pub struct FaultVfs {
    shared: Arc<FaultShared>,
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path) -> io::Result<Arc<dyn StorageBackend>> {
        let backend: Arc<dyn StorageBackend> = Arc::new(FileBackend::open(path)?);
        let synced_len = backend.len()?;
        let file = Arc::new(FaultFile {
            backend,
            undo: Mutex::new(UndoLog {
                entries: Vec::new(),
                synced_len,
            }),
        });
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.crashed {
            return Err(crashed_err());
        }
        inner.files.push(Arc::clone(&file));
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        Ok(Arc::new(FaultDisk {
            shared: Arc::clone(&self.shared),
            file,
            name,
        }))
    }
}

/// A fault-wrapped [`StorageBackend`] over one file.
pub struct FaultDisk {
    shared: Arc<FaultShared>,
    file: Arc<FaultFile>,
    name: String,
}

impl StorageBackend for FaultDisk {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        // Reads are not crash boundaries, but a crashed machine serves
        // none.
        if self.shared.inner.lock().unwrap().crashed {
            return Err(crashed_err());
        }
        self.file.backend.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.crashed {
            return Err(crashed_err());
        }
        inner.trace_op(
            &self.name,
            format_args!("write {} bytes at {offset} in", buf.len()),
        );
        self.shared.ops.inc();
        match inner.take_fault(OpClass::Write) {
            None => {
                self.file.record_write_undo(buf.len(), offset)?;
                self.file.backend.write_at(buf, offset)
            }
            Some(FaultKind::TornWrite { keep }) => {
                self.shared.injected.inc();
                self.shared.crashes.inc();
                inner.crash()?;
                // The torn prefix persists *after* the rollback: it is
                // part of what the dying machine managed to push out.
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.file.backend.write_at(&buf[..keep], offset)?;
                }
                Err(crashed_err())
            }
            Some(FaultKind::ShortWrite { keep }) => {
                self.shared.injected.inc();
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.file.record_write_undo(keep, offset)?;
                    self.file.backend.write_at(&buf[..keep], offset)?;
                }
                Err(injected_err("short write"))
            }
            Some(FaultKind::Crash) => {
                self.shared.injected.inc();
                self.shared.crashes.inc();
                inner.crash()?;
                Err(crashed_err())
            }
            // Sync-only kinds degrade to a plain one-shot error here.
            Some(FaultKind::FailIo | FaultKind::LyingFsync | FaultKind::FailFsync) => {
                self.shared.injected.inc();
                Err(injected_err("write error"))
            }
        }
    }

    fn sync(&self) -> io::Result<()> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.crashed {
            return Err(crashed_err());
        }
        inner.trace_op(&self.name, format_args!("sync"));
        self.shared.ops.inc();
        match inner.take_fault(OpClass::Sync) {
            None => {
                self.file.backend.sync()?;
                self.file.mark_synced()
            }
            Some(FaultKind::LyingFsync) => {
                // Reports success; the undo log stays armed, so a later
                // crash drops the bytes this sync claimed to persist.
                self.shared.injected.inc();
                Ok(())
            }
            Some(FaultKind::FailFsync) => {
                // fsyncgate: the error *and* the data loss — the dirty
                // bytes are dropped and marked clean, so a later sync
                // succeeding proves nothing about them.
                self.shared.injected.inc();
                self.file.drop_unsynced()?;
                Err(injected_err("fsync failure (unsynced bytes dropped)"))
            }
            Some(FaultKind::Crash | FaultKind::TornWrite { .. }) => {
                self.shared.injected.inc();
                self.shared.crashes.inc();
                inner.crash()?;
                Err(crashed_err())
            }
            Some(FaultKind::FailIo | FaultKind::ShortWrite { .. }) => {
                // Error without data loss: the kernel kept the pages
                // dirty (the benign fsync failure).
                self.shared.injected.inc();
                Err(injected_err("fsync error"))
            }
        }
    }

    fn len(&self) -> io::Result<u64> {
        if self.shared.inner.lock().unwrap().crashed {
            return Err(crashed_err());
        }
        self.file.backend.len()
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.crashed {
            return Err(crashed_err());
        }
        inner.trace_op(&self.name, format_args!("truncate to {len}"));
        self.shared.ops.inc();
        match inner.take_fault(OpClass::Write) {
            None => {
                self.file.record_truncate_undo(len)?;
                self.file.backend.truncate(len)
            }
            Some(FaultKind::Crash | FaultKind::TornWrite { .. }) => {
                self.shared.injected.inc();
                self.shared.crashes.inc();
                inner.crash()?;
                Err(crashed_err())
            }
            Some(_) => {
                self.shared.injected.inc();
                Err(injected_err("truncate error"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-fault-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn raw(path: &Path) -> Vec<u8> {
        std::fs::read(path).unwrap_or_default()
    }

    #[test]
    fn crash_rolls_back_to_synced_state() {
        let dir = tmpdir("crash");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(FaultPlan::none().with(At::Op(3), FaultKind::Crash));
        let b = ctl.vfs().open(&path).unwrap();
        b.write_at(b"durable!", 0).unwrap(); // op 0
        b.sync().unwrap(); // op 1
        b.write_at(b"VOLATILE", 0).unwrap(); // op 2: unsynced overwrite
        let err = b.write_at(b"x", 100).unwrap_err(); // op 3: crash
        assert!(is_injected(&err));
        assert!(ctl.crashed());
        assert!(b.write_at(b"y", 0).is_err(), "all I/O fails post-crash");
        assert_eq!(raw(&path), b"durable!", "unsynced write rolled back");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_drops_unsynced_extension() {
        let dir = tmpdir("ext");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(FaultPlan::none().with(At::Op(2), FaultKind::Crash));
        let b = ctl.vfs().open(&path).unwrap();
        b.write_at(b"base", 0).unwrap();
        b.sync().unwrap();
        b.write_at(b"tail", 4).unwrap_err(); // op 2: crash before the append lands
        assert_eq!(
            raw(&path),
            b"base",
            "extension dropped back to synced length"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let dir = tmpdir("torn");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(
            FaultPlan::none().with(At::Write(1), FaultKind::TornWrite { keep: 3 }),
        );
        let b = ctl.vfs().open(&path).unwrap();
        b.write_at(b"old-data", 0).unwrap();
        b.sync().unwrap();
        b.write_at(b"new-data", 0).unwrap_err();
        assert_eq!(
            raw(&path),
            b"new-data"[..3]
                .iter()
                .chain(&b"-data"[..])
                .copied()
                .collect::<Vec<u8>>(),
            "first 3 bytes of the torn write persist over the synced image"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lying_fsync_leaves_bytes_vulnerable() {
        let dir = tmpdir("lying");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(
            FaultPlan::none()
                .with(At::Sync(1), FaultKind::LyingFsync)
                .with(At::Op(4), FaultKind::Crash),
        );
        let b = ctl.vfs().open(&path).unwrap();
        b.write_at(b"safe", 0).unwrap(); // op 0
        b.sync().unwrap(); // op 1 (sync 0): real
        b.write_at(b"gone", 4).unwrap(); // op 2
        b.sync().unwrap(); // op 3 (sync 1): LIES
        b.write_at(b"x", 0).unwrap_err(); // op 4: crash
        assert_eq!(raw(&path), b"safe", "bytes behind the lying fsync are lost");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_fsync_drops_dirty_bytes() {
        let dir = tmpdir("fsyncgate");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(FaultPlan::none().with(At::Sync(1), FaultKind::FailFsync));
        let b = ctl.vfs().open(&path).unwrap();
        b.write_at(b"stable", 0).unwrap();
        b.sync().unwrap();
        b.write_at(b"DOOMED", 6).unwrap();
        let err = b.sync().unwrap_err();
        assert!(is_injected(&err));
        // The machine is still up; a retry "succeeds" — but the dropped
        // bytes are gone for good, exactly the fsyncgate trap.
        b.sync().unwrap();
        assert_eq!(raw(&path), b"stable");
        assert!(!ctl.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_persists_prefix_and_errors() {
        let dir = tmpdir("short");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(
            FaultPlan::none().with(At::Write(0), FaultKind::ShortWrite { keep: 2 }),
        );
        let b = ctl.vfs().open(&path).unwrap();
        let err = b.write_at(b"abcdef", 0).unwrap_err();
        assert!(is_injected(&err));
        assert_eq!(raw(&path), b"ab", "only the short prefix landed");
        // Machine still up: the caller's retry overwrites the partial.
        b.write_at(b"abcdef", 0).unwrap();
        b.sync().unwrap();
        assert_eq!(raw(&path), b"abcdef");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_io_is_one_shot() {
        let dir = tmpdir("oneshot");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(FaultPlan::none().with(At::Op(0), FaultKind::FailIo));
        let b = ctl.vfs().open(&path).unwrap();
        assert!(b.write_at(b"no", 0).is_err());
        b.write_at(b"yes", 0).unwrap();
        assert_eq!(ctl.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ops_counter_spans_files() {
        let dir = tmpdir("twofiles");
        let ctl = FaultController::new(FaultPlan::none());
        let a = ctl.vfs().open(&dir.join("a.bin")).unwrap();
        let b = ctl.vfs().open(&dir.join("b.bin")).unwrap();
        a.write_at(b"1", 0).unwrap();
        b.write_at(b"2", 0).unwrap();
        a.sync().unwrap();
        assert_eq!(ctl.ops(), 3);
        assert_eq!(ctl.writes(), 2);
        assert_eq!(ctl.syncs(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_rolls_back_truncate() {
        let dir = tmpdir("trunc");
        let path = dir.join("f.bin");
        let ctl = FaultController::new(FaultPlan::none().with(At::Op(3), FaultKind::Crash));
        let b = ctl.vfs().open(&path).unwrap();
        b.write_at(b"keep-me-around", 0).unwrap(); // op 0
        b.sync().unwrap(); // op 1
        b.truncate(0).unwrap(); // op 2: unsynced truncate
        b.write_at(b"z", 0).unwrap_err(); // op 3: crash
        assert_eq!(raw(&path), b"keep-me-around", "unsynced truncate undone");
        std::fs::remove_dir_all(&dir).ok();
    }
}
