//! The disk manager: page-granular I/O against the single database file.
//!
//! All I/O goes through positioned reads/writes against a
//! [`StorageBackend`] (plain `pread`/`pwrite` in production), so the
//! manager is usable through a shared reference from many threads at
//! once: concurrent page reads and writes need no latch at all. Only
//! file *extension* is serialized, by a small allocation mutex, so
//! `num_pages` and the file length move together.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::backend::{FileVfs, StorageBackend, Vfs};
use crate::error::Result;
use crate::page::{PageId, PAGE_SIZE};

/// Performs page reads and writes against `data.db`. Page ids are file
/// offsets divided by [`PAGE_SIZE`]; allocation extends the file.
pub struct DiskManager {
    backend: Arc<dyn StorageBackend>,
    /// Serializes file extension (`allocate_page` / `ensure_page`).
    alloc: Mutex<()>,
    num_pages: AtomicU64,
}

impl DiskManager {
    /// Opens (or creates) the database file in `dir`. If the file is new,
    /// page 0 is allocated zeroed so it can serve as the catalog root.
    pub fn open(dir: &Path) -> Result<DiskManager> {
        Self::open_with(dir, &FileVfs)
    }

    /// As [`DiskManager::open`], sourcing the backend from `vfs`.
    ///
    /// A file length that is not a multiple of the page size means the
    /// last page-extension write was torn mid-crash; the partial tail is
    /// dropped (the page was never linked durably — recovery redo
    /// re-extends and rewrites it from the log).
    pub fn open_with(dir: &Path, vfs: &dyn Vfs) -> Result<DiskManager> {
        let backend = vfs.open(&dir.join("data.db"))?;
        let len = backend.len()?;
        let torn = len % PAGE_SIZE as u64;
        if torn != 0 {
            backend.truncate(len - torn)?;
        }
        let dm = DiskManager {
            backend,
            alloc: Mutex::new(()),
            num_pages: AtomicU64::new((len - torn) / PAGE_SIZE as u64),
        };
        if dm.num_pages() == 0 {
            dm.allocate_page()?; // page 0: catalog root
        }
        Ok(dm)
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u64 {
        self.num_pages.load(Ordering::Acquire)
    }

    /// Reads a page into `buf` (which must be `PAGE_SIZE` bytes).
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if page >= self.num_pages() {
            return Err(crate::error::StorageError::PageNotFound(page));
        }
        self.backend.read_at(buf, page * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Writes a page from `buf` (which must be `PAGE_SIZE` bytes).
    pub fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if page >= self.num_pages() {
            return Err(crate::error::StorageError::PageNotFound(page));
        }
        self.backend.write_at(buf, page * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Appends a zeroed page and returns its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        let _guard = self.alloc.lock().unwrap();
        let id = self.num_pages.load(Ordering::Relaxed);
        self.backend
            .write_at(&[0u8; PAGE_SIZE], id * PAGE_SIZE as u64)?;
        self.num_pages.store(id + 1, Ordering::Release);
        Ok(id)
    }

    /// Ensures pages up to and including `page` exist, allocating zeroed
    /// pages as needed. Used by recovery redo.
    pub fn ensure_page(&self, page: PageId) -> Result<()> {
        let _guard = self.alloc.lock().unwrap();
        let mut next = self.num_pages.load(Ordering::Relaxed);
        while next <= page {
            self.backend
                .write_at(&[0u8; PAGE_SIZE], next * PAGE_SIZE as u64)?;
            next += 1;
            self.num_pages.store(next, Ordering::Release);
        }
        Ok(())
    }

    /// Flushes file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.backend.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-disk-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn new_file_has_page_zero() {
        let dir = tmpdir("new");
        let dm = DiskManager::open(&dir).unwrap();
        assert_eq!(dm.num_pages(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_roundtrip_across_reopen() {
        let dir = tmpdir("rw");
        let pid;
        {
            let dm = DiskManager::open(&dir).unwrap();
            pid = dm.allocate_page().unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            buf[0] = 0xAB;
            buf[PAGE_SIZE - 1] = 0xCD;
            dm.write_page(pid, &buf).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&dir).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        dm.read_page(pid, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
        assert_eq!(buf[PAGE_SIZE - 1], 0xCD);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_past_end_fails() {
        let dir = tmpdir("oob");
        let dm = DiskManager::open(&dir).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            dm.read_page(99, &mut buf),
            Err(StorageError::PageNotFound(99))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_page_extends() {
        let dir = tmpdir("ensure");
        let dm = DiskManager::open(&dir).unwrap();
        dm.ensure_page(7).unwrap();
        assert_eq!(dm.num_pages(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_on_open() {
        let dir = tmpdir("torntail");
        {
            let dm = DiskManager::open(&dir).unwrap();
            dm.allocate_page().unwrap();
            dm.sync().unwrap();
        }
        // Simulate a page-extension write torn mid-crash: a partial page
        // dangles past the last full one.
        let path = dir.join("data.db");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xEE; 100]);
        std::fs::write(&path, &bytes).unwrap();
        let dm = DiskManager::open(&dir).unwrap();
        assert_eq!(dm.num_pages(), 2, "partial tail page is not counted");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            2 * PAGE_SIZE as u64,
            "partial tail is truncated away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_reference_io_from_threads() {
        let dir = tmpdir("shared");
        let dm = DiskManager::open(&dir).unwrap();
        let pids: Vec<_> = (0..8).map(|_| dm.allocate_page().unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &pid) in pids.iter().enumerate() {
                let dm = &dm;
                s.spawn(move || {
                    let mut buf = vec![0u8; PAGE_SIZE];
                    buf[0] = i as u8 + 1;
                    dm.write_page(pid, &buf).unwrap();
                });
            }
        });
        for (i, &pid) in pids.iter().enumerate() {
            let mut buf = vec![0u8; PAGE_SIZE];
            dm.read_page(pid, &mut buf).unwrap();
            assert_eq!(buf[0], i as u8 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
