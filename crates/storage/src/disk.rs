//! The disk manager: page-granular I/O against the single database file.
//!
//! All I/O goes through positioned reads/writes (`pread`/`pwrite` via
//! [`std::os::unix::fs::FileExt`]), so the manager is usable through a
//! shared reference from many threads at once: concurrent page reads
//! and writes need no latch at all. Only file *extension* is serialized,
//! by a small allocation mutex, so `num_pages` and the file length move
//! together.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};

/// Performs page reads and writes against `data.db`. Page ids are file
/// offsets divided by [`PAGE_SIZE`]; allocation extends the file.
pub struct DiskManager {
    file: File,
    /// Serializes file extension (`allocate_page` / `ensure_page`).
    alloc: Mutex<()>,
    num_pages: AtomicU64,
}

impl DiskManager {
    /// Opens (or creates) the database file in `dir`. If the file is new,
    /// page 0 is allocated zeroed so it can serve as the catalog root.
    pub fn open(dir: &Path) -> Result<DiskManager> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("data.db");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "data file length {len} is not a multiple of the page size"
            )));
        }
        let dm = DiskManager {
            file,
            alloc: Mutex::new(()),
            num_pages: AtomicU64::new(len / PAGE_SIZE as u64),
        };
        if dm.num_pages() == 0 {
            dm.allocate_page()?; // page 0: catalog root
        }
        Ok(dm)
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u64 {
        self.num_pages.load(Ordering::Acquire)
    }

    /// Reads a page into `buf` (which must be `PAGE_SIZE` bytes).
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if page >= self.num_pages() {
            return Err(StorageError::PageNotFound(page));
        }
        self.file.read_exact_at(buf, page * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Writes a page from `buf` (which must be `PAGE_SIZE` bytes).
    pub fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if page >= self.num_pages() {
            return Err(StorageError::PageNotFound(page));
        }
        self.file.write_all_at(buf, page * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Appends a zeroed page and returns its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        let _guard = self.alloc.lock().unwrap();
        let id = self.num_pages.load(Ordering::Relaxed);
        self.file
            .write_all_at(&[0u8; PAGE_SIZE], id * PAGE_SIZE as u64)?;
        self.num_pages.store(id + 1, Ordering::Release);
        Ok(id)
    }

    /// Ensures pages up to and including `page` exist, allocating zeroed
    /// pages as needed. Used by recovery redo.
    pub fn ensure_page(&self, page: PageId) -> Result<()> {
        let _guard = self.alloc.lock().unwrap();
        let mut next = self.num_pages.load(Ordering::Relaxed);
        while next <= page {
            self.file
                .write_all_at(&[0u8; PAGE_SIZE], next * PAGE_SIZE as u64)?;
            next += 1;
            self.num_pages.store(next, Ordering::Release);
        }
        Ok(())
    }

    /// Flushes file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-disk-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn new_file_has_page_zero() {
        let dir = tmpdir("new");
        let dm = DiskManager::open(&dir).unwrap();
        assert_eq!(dm.num_pages(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_roundtrip_across_reopen() {
        let dir = tmpdir("rw");
        let pid;
        {
            let dm = DiskManager::open(&dir).unwrap();
            pid = dm.allocate_page().unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            buf[0] = 0xAB;
            buf[PAGE_SIZE - 1] = 0xCD;
            dm.write_page(pid, &buf).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&dir).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        dm.read_page(pid, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
        assert_eq!(buf[PAGE_SIZE - 1], 0xCD);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_past_end_fails() {
        let dir = tmpdir("oob");
        let dm = DiskManager::open(&dir).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            dm.read_page(99, &mut buf),
            Err(StorageError::PageNotFound(99))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_page_extends() {
        let dir = tmpdir("ensure");
        let dm = DiskManager::open(&dir).unwrap();
        dm.ensure_page(7).unwrap();
        assert_eq!(dm.num_pages(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_reference_io_from_threads() {
        let dir = tmpdir("shared");
        let dm = DiskManager::open(&dir).unwrap();
        let pids: Vec<_> = (0..8).map(|_| dm.allocate_page().unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &pid) in pids.iter().enumerate() {
                let dm = &dm;
                s.spawn(move || {
                    let mut buf = vec![0u8; PAGE_SIZE];
                    buf[0] = i as u8 + 1;
                    dm.write_page(pid, &buf).unwrap();
                });
            }
        });
        for (i, &pid) in pids.iter().enumerate() {
            let mut buf = vec![0u8; PAGE_SIZE];
            dm.read_page(pid, &mut buf).unwrap();
            assert_eq!(buf[0], i as u8 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
