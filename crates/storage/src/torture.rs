//! Crash-point torture harness.
//!
//! The harness answers one question exhaustively: *is there any single
//! I/O boundary at which a crash loses committed data, resurrects
//! uncommitted data, or leaves the database unopenable?*
//!
//! It works in two passes:
//!
//! 1. **Enumeration.** Run a fixed, deterministic workload against an
//!    engine whose files are wrapped by a [`FaultController`] with an
//!    empty plan. Every write, truncate, and fsync increments the
//!    controller's operation counter; the final count `N` is the number
//!    of distinct crash boundaries the workload exposes.
//! 2. **Exploration.** For each boundary `b < N` (optionally strided),
//!    replay the identical workload in a fresh directory with
//!    [`FaultKind::Crash`] planted at [`At::Op`]`(b)`. The fault layer
//!    drops every byte the engine never fsynced — the kernel page cache
//!    dying with the machine — then the harness reopens the directory
//!    with the plain [`FileVfs`](crate::backend::FileVfs) and checks
//!    invariants against a ledger it kept while driving the workload:
//!
//!    * every transaction whose `commit` returned `Ok` is fully visible;
//!    * every transaction that aborted, or never reached `commit`, is
//!      fully invisible;
//!    * the single transaction (at most one — the workload is
//!      single-threaded) whose `commit` returned `Err` is *atomic*:
//!      fully visible or fully invisible, never partial;
//!    * recovery returns typed errors, never panics; and
//!    * the reopened engine still accepts and serves writes.
//!
//! A second sweep plants [`FaultKind::TornWrite`] at each write
//! boundary instead, persisting a partial sector on the way down —
//! exercising the WAL's torn-tail tolerance and the pager's
//! garbage-page hardening.
//!
//! The workload is intentionally single-threaded: determinism is what
//! lets one counted run stand in for every replay, so each explored
//! boundary is a *real* state the engine could have died in.

use std::collections::BTreeSet;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::time::Instant;

use mdm_obs::Registry;

use crate::engine::StorageEngine;
use crate::error::Result;
use crate::fault::{At, FaultController, FaultKind, FaultPlan};
use crate::page::Rid;
use crate::wal::TableId;

/// Histogram bounds (µs) for crash-recovery reopen latency.
const REOPEN_MICROS_BOUNDS: &[u64] = &[
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Heap-only tables the workload writes into.
const TABLES: [&str; 2] = ["torture_a", "torture_b"];

/// A third table carrying a secondary index: every explored crash point
/// additionally verifies that the index and the heap agree exactly.
const IDX_TABLE: &str = "torture_c";
const IDX_NAME: &str = "by_body";

/// Tuning for a torture sweep.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Transaction rounds in the workload. More rounds expose more
    /// boundaries (and a longer WAL) at linear cost per replay.
    pub rounds: usize,
    /// Buffer pool capacity in pages. Kept small so the workload forces
    /// evictions, putting the flush barrier and dirty-page writes on
    /// the boundary list.
    pub pool_pages: usize,
    /// Explore every `stride`-th boundary (1 = all of them).
    pub stride: u64,
    /// Also run the torn-write sweep.
    pub torn_writes: bool,
}

impl TortureConfig {
    /// The full sweep: every boundary, both fault kinds.
    pub fn full() -> TortureConfig {
        TortureConfig {
            rounds: 80,
            pool_pages: 16,
            stride: 1,
            torn_writes: true,
        }
    }

    /// A strided smoke-test sweep, cheap enough for debug builds.
    pub fn smoke() -> TortureConfig {
        TortureConfig {
            rounds: 40,
            pool_pages: 16,
            stride: 9,
            torn_writes: true,
        }
    }
}

/// Everything a sweep learned.
#[derive(Debug, Default)]
pub struct TortureReport {
    /// Crash boundaries the clean run exposed (writes + truncates + fsyncs).
    pub boundaries: u64,
    /// Write/truncate boundaries among them.
    pub writes: u64,
    /// Fsync boundaries among them.
    pub syncs: u64,
    /// Distinct injected-crash states actually explored and verified.
    pub crash_points: u64,
    /// Invariant violations, in discovery order. Empty means the engine
    /// survived every explored crash.
    pub violations: Vec<String>,
    /// Wall-clock reopen (recovery) latency per explored crash, in µs.
    pub reopen_micros: Vec<u64>,
}

impl TortureReport {
    /// The `p`-th percentile (0.0..=1.0) of reopen latency, in µs.
    pub fn reopen_percentile(&self, p: f64) -> u64 {
        if self.reopen_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.reopen_micros.clone();
        sorted.sort_unstable();
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Mean reopen latency in µs.
    pub fn reopen_mean(&self) -> u64 {
        if self.reopen_micros.is_empty() {
            return 0;
        }
        self.reopen_micros.iter().sum::<u64>() / self.reopen_micros.len() as u64
    }
}

// ----------------------------------------------------------------------
// Ledger: what must / may be on disk after the crash
// ----------------------------------------------------------------------

/// One transaction's net effect on visible rows, as `(table, body)`
/// pairs. Bodies are unique across the whole workload, so sets suffice.
#[derive(Debug, Default, Clone)]
struct Effects {
    added: Vec<(String, String)>,
    removed: Vec<(String, String)>,
}

/// The oracle the workload maintains while driving the engine. Public
/// (with opaque internals) so harnesses outside this crate — the
/// replication pair sweep, point-in-time-restore checks — can drive
/// [`run_workload_with`] and hand the resulting oracle to
/// [`verify_reopen`]. `Clone` lets them snapshot the oracle mid-run and
/// verify a restore against the state as of that moment.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    /// Tables whose `create_table` returned `Ok` (hence durably
    /// snapshotted — `create_table` syncs the catalog).
    tables: Vec<String>,
    /// Rows every correct recovery must surface.
    committed: BTreeSet<(String, String)>,
    /// The effects of the one transaction whose commit returned `Err`:
    /// the crash may have landed either side of its durability point,
    /// so recovery may surface it fully applied or fully absent — but
    /// nothing in between.
    unknown: Option<Effects>,
    /// Whether `create_index` on [`IDX_TABLE`] returned `Ok` (it syncs
    /// the catalog, so the index must exist after any later crash).
    index_ready: bool,
}

impl Ledger {
    fn apply(&mut self, eff: Effects) {
        for r in &eff.removed {
            self.committed.remove(r);
        }
        for a in eff.added {
            self.committed.insert(a);
        }
    }

    /// The committed set with the unknown transaction applied on top.
    fn with_unknown(&self) -> Option<BTreeSet<(String, String)>> {
        self.unknown.as_ref().map(|eff| {
            let mut s = self.committed.clone();
            for r in &eff.removed {
                s.remove(r);
            }
            for a in &eff.added {
                s.insert(a.clone());
            }
            s
        })
    }
}

// ----------------------------------------------------------------------
// Workload
// ----------------------------------------------------------------------

fn body_for(round: usize, i: usize) -> String {
    // Varying sizes force page growth, chain extension, and evictions.
    let pad = "x".repeat(24 + (round * 37 + i * 11) % 180);
    format!("t{}-r{round}-i{i}:{pad}", round % 2)
}

/// Drives the deterministic workload, recording into `ledger` what a
/// post-crash recovery must (and must not) surface. Returns early once
/// the injected crash makes commits impossible.
fn run_workload(engine: &StorageEngine, rounds: usize, ledger: &mut Ledger) {
    run_workload_with(engine, rounds, ledger, &mut |_, _| {});
}

/// As the private workload driver, invoking `hook(round, ledger)` after
/// every settled round (committed or aborted). External harnesses hang
/// replication pulls or oracle snapshots on the hook; it must not touch
/// the engine in ways that add counted I/O if boundary determinism
/// across runs matters (reads are not counted).
pub fn run_workload_with(
    engine: &StorageEngine,
    rounds: usize,
    ledger: &mut Ledger,
    hook: &mut dyn FnMut(usize, &Ledger),
) {
    let mut ids: Vec<TableId> = Vec::new();
    for name in TABLES {
        match engine.create_table(name) {
            Ok(id) => {
                ids.push(id);
                ledger.tables.push(name.to_string());
            }
            Err(_) => return, // crash during setup: nothing committed
        }
    }
    let Ok(cid) = engine.create_table(IDX_TABLE) else {
        return;
    };
    ledger.tables.push(IDX_TABLE.to_string());
    if engine.create_index(cid, IDX_NAME).is_err() {
        return;
    }
    ledger.index_ready = true;
    // Rows visible to committed readers: (table index, rid, body).
    let mut live: Vec<(usize, Rid, String)> = Vec::new();
    // Same, for the indexed table: (rid, body) — the body is the key.
    let mut live_c: Vec<(Rid, String)> = Vec::new();
    for r in 0..rounds {
        if r % 10 == 9 {
            // A mid-checkpoint crash surfaces as Err here; committed
            // state is already durable, so just keep driving.
            let _ = engine.checkpoint();
        }
        let t = r % 2;
        let Ok(mut txn) = engine.begin() else { return };
        let mut eff = Effects::default();
        let mut live_add: Vec<(usize, Rid, String)> = Vec::new();
        let mut live_del: Vec<usize> = Vec::new();
        let mut broke = false;
        for i in 0..(1 + r % 2) {
            let body = body_for(r, i);
            match engine.insert(&mut txn, ids[t], body.as_bytes()) {
                Ok(rid) => {
                    eff.added.push((TABLES[t].to_string(), body.clone()));
                    live_add.push((t, rid, body));
                }
                Err(_) => {
                    broke = true;
                    break;
                }
            }
        }
        // Indexed-table traffic rides in the same transaction, so index
        // maintenance shares the commit/abort/crash fate of heap writes.
        let mut live_c_add: Vec<(Rid, String)> = Vec::new();
        let mut live_c_del: Vec<usize> = Vec::new();
        if !broke {
            let body = format!("c-r{r}:{}", "z".repeat(24 + (r * 41) % 170));
            let ok = engine
                .insert(&mut txn, cid, body.as_bytes())
                .and_then(|rid| {
                    engine
                        .index_insert(&mut txn, cid, IDX_NAME, body.as_bytes(), rid)
                        .map(|()| rid)
                });
            match ok {
                Ok(rid) => {
                    eff.added.push((IDX_TABLE.to_string(), body.clone()));
                    live_c_add.push((rid, body));
                }
                Err(_) => broke = true,
            }
        }
        if !broke && r % 4 == 2 && !live_c.is_empty() {
            // Update a row: the key changes, so the index sees a
            // delete + insert pair around the heap rewrite.
            let v = (r * 29) % live_c.len();
            let (vrid, vbody) = live_c[v].clone();
            let nb = format!("c-r{r}-upd:{}", "w".repeat(24 + (r * 59) % 150));
            let ok = engine
                .index_delete(&mut txn, cid, IDX_NAME, vbody.as_bytes(), vrid)
                .and_then(|()| engine.update(&mut txn, cid, vrid, nb.as_bytes()))
                .and_then(|nrid| {
                    engine
                        .index_insert(&mut txn, cid, IDX_NAME, nb.as_bytes(), nrid)
                        .map(|()| nrid)
                });
            match ok {
                Ok(nrid) => {
                    eff.removed.push((IDX_TABLE.to_string(), vbody));
                    eff.added.push((IDX_TABLE.to_string(), nb.clone()));
                    live_c_del.push(v);
                    live_c_add.push((nrid, nb));
                }
                Err(_) => broke = true,
            }
        }
        if !broke && r % 3 == 1 && !live_c.is_empty() {
            let v = (r * 13) % live_c.len();
            // Skip the row the update above just moved: its rid is stale.
            if !live_c_del.contains(&v) {
                let (vrid, vbody) = live_c[v].clone();
                let ok = engine
                    .index_delete(&mut txn, cid, IDX_NAME, vbody.as_bytes(), vrid)
                    .and_then(|()| engine.delete(&mut txn, cid, vrid));
                match ok {
                    Ok(_) => {
                        eff.removed.push((IDX_TABLE.to_string(), vbody));
                        live_c_del.push(v);
                    }
                    Err(_) => broke = true,
                }
            }
        }
        if !broke && r % 4 == 2 && !live.is_empty() {
            let v = (r * 31) % live.len();
            let (vt, vrid, vbody) = live[v].clone();
            let nb = format!("t{vt}-r{r}-upd:{}", "y".repeat(24 + (r * 53) % 160));
            match engine.update(&mut txn, ids[vt], vrid, nb.as_bytes()) {
                Ok(nrid) => {
                    eff.removed.push((TABLES[vt].to_string(), vbody));
                    eff.added.push((TABLES[vt].to_string(), nb.clone()));
                    live_del.push(v);
                    live_add.push((vt, nrid, nb));
                }
                Err(_) => broke = true,
            }
        }
        if !broke && r % 5 == 3 && !live.is_empty() {
            let v = (r * 17) % live.len();
            // Skip the row the update above just moved: its rid is stale.
            if !live_del.contains(&v) {
                let (vt, vrid, vbody) = live[v].clone();
                match engine.delete(&mut txn, ids[vt], vrid) {
                    Ok(_) => {
                        eff.removed.push((TABLES[vt].to_string(), vbody));
                        live_del.push(v);
                    }
                    Err(_) => broke = true,
                }
            }
        }
        if broke || r % 7 == 6 {
            // Aborted (deliberately or by the crash): must be invisible
            // after recovery either way, so the ledger records nothing.
            let _ = engine.abort(txn);
            hook(r, ledger);
            continue;
        }
        match engine.commit(txn) {
            Ok(()) => {
                ledger.apply(eff);
                live_del.sort_unstable_by(|a, b| b.cmp(a));
                for v in live_del {
                    live.swap_remove(v);
                }
                live.extend(live_add);
                live_c_del.sort_unstable_by(|a, b| b.cmp(a));
                for v in live_c_del {
                    live_c.swap_remove(v);
                }
                live_c.extend(live_c_add);
            }
            Err(_) => {
                // Commit outcome unknowable: the crash landed somewhere
                // in the durability protocol. Atomicity still required.
                ledger.unknown = Some(eff);
                return;
            }
        }
        hook(r, ledger);
    }
}

// ----------------------------------------------------------------------
// Verification
// ----------------------------------------------------------------------

/// Reopens `dir` with the plain file VFS and checks every invariant the
/// ledger implies. Returns the reopen (recovery) latency in µs, or
/// `None` if the reopen itself failed. Public so external harnesses
/// (the replication pair sweep, restore verification) can point the
/// same oracle at a different directory — a promoted replica, a
/// point-in-time restore destination.
pub fn verify_reopen(
    dir: &Path,
    pool_pages: usize,
    ledger: &Ledger,
    what: &str,
    violations: &mut Vec<String>,
) -> Option<u64> {
    let started = Instant::now();
    let opened = panic::catch_unwind(AssertUnwindSafe(|| {
        StorageEngine::open_with_capacity(dir, pool_pages)
    }));
    let micros = started.elapsed().as_micros() as u64;
    let engine = match opened {
        Err(_) => {
            violations.push(format!("{what}: recovery panicked"));
            return None;
        }
        Ok(Err(e)) => {
            violations.push(format!("{what}: recovery failed: {e}"));
            return None;
        }
        Ok(Ok(engine)) => engine,
    };

    // Gather what recovery actually surfaced.
    let mut actual: BTreeSet<(String, String)> = BTreeSet::new();
    let mut scan_ok = true;
    match engine.begin() {
        Ok(mut txn) => {
            for name in &ledger.tables {
                match engine.table_id(name) {
                    Ok(id) => match engine.scan(&mut txn, id) {
                        Ok(rows) => {
                            for (_, body) in rows {
                                actual.insert((
                                    name.clone(),
                                    String::from_utf8_lossy(&body).into_owned(),
                                ));
                            }
                        }
                        Err(e) => {
                            violations.push(format!("{what}: scan of {name} failed: {e}"));
                            scan_ok = false;
                        }
                    },
                    Err(e) => {
                        violations.push(format!("{what}: committed table {name} lost: {e}"));
                        scan_ok = false;
                    }
                }
            }
            let _ = engine.commit(txn);
        }
        Err(e) => {
            violations.push(format!("{what}: begin failed after recovery: {e}"));
            scan_ok = false;
        }
    }

    if scan_ok {
        let matches_base = actual == ledger.committed;
        let matches_unknown = ledger.with_unknown().is_some_and(|with| actual == with);
        if !matches_base && !matches_unknown {
            let missing: Vec<_> = ledger.committed.difference(&actual).take(3).collect();
            let phantom: Vec<_> = actual.difference(&ledger.committed).take(3).collect();
            violations.push(format!(
                "{what}: durability/atomicity violated \
                 (missing committed rows: {missing:?}; unexpected rows: {phantom:?})"
            ));
        }
    }

    // Snapshot-read probe: a lock-free snapshot opened on the reopened
    // engine must surface exactly what the 2PL scan above did — MVCC
    // version metadata (tuple stamps, the persisted transaction-id
    // floor) must come through recovery intact at every explored
    // boundary, or the visibility rule would hide committed rows or
    // resurrect losers here.
    if scan_ok {
        let snap = engine.snapshot();
        let mut via_snapshot: BTreeSet<(String, String)> = BTreeSet::new();
        let mut snap_ok = true;
        for name in &ledger.tables {
            let Ok(id) = engine.table_id(name) else {
                continue; // already reported by the 2PL pass
            };
            match snap.scan(id) {
                Ok(rows) => {
                    for (_, body) in rows {
                        via_snapshot
                            .insert((name.clone(), String::from_utf8_lossy(&body).into_owned()));
                    }
                }
                Err(e) => {
                    violations.push(format!("{what}: snapshot scan of {name} failed: {e}"));
                    snap_ok = false;
                }
            }
        }
        if snap_ok && via_snapshot != actual {
            let missing: Vec<_> = actual.difference(&via_snapshot).take(3).collect();
            let phantom: Vec<_> = via_snapshot.difference(&actual).take(3).collect();
            violations.push(format!(
                "{what}: snapshot read diverges from locked scan after recovery \
                 (missing: {missing:?}; unexpected: {phantom:?})"
            ));
        }
    }

    // Index/heap agreement on the indexed table. Recovery either
    // replayed the index exactly from the log or flagged it for rebuild
    // (it predates the log after a checkpoint truncation); in the
    // latter case the harness rebuilds it as the owning layer would.
    // Either way the index must then match the heap exactly — whichever
    // side of an unknown-outcome commit the heap landed on.
    if ledger.index_ready {
        verify_index(&engine, what, violations);
    }

    // The survivor must still accept writes.
    let probe = (|| -> Result<bool> {
        let table = match engine.table_id("torture_probe") {
            Ok(id) => id,
            Err(_) => engine.create_table("torture_probe")?,
        };
        let mut txn = engine.begin()?;
        let rid = engine.insert(&mut txn, table, b"probe")?;
        let back = engine.get(&mut txn, table, rid)?;
        engine.commit(txn)?;
        Ok(back.as_deref() == Some(b"probe".as_slice()))
    })();
    match probe {
        Ok(true) => {}
        Ok(false) => violations.push(format!("{what}: probe row unreadable after recovery")),
        Err(e) => violations.push(format!("{what}: engine not writable after recovery: {e}")),
    }
    Some(micros)
}

/// Checks that [`IDX_NAME`] holds exactly one entry per heap row of
/// [`IDX_TABLE`], keyed by the row body — rebuilding it first when
/// recovery reported the log did not cover the index's lifetime.
fn verify_index(engine: &StorageEngine, what: &str, violations: &mut Vec<String>) {
    let check = (|| -> Result<Option<String>> {
        let t = engine.table_id(IDX_TABLE)?;
        if engine.indexes_need_rebuild() {
            let mut txn = engine.begin()?;
            for (rid, body) in engine.scan(&mut txn, t)? {
                engine.index_insert(&mut txn, t, IDX_NAME, &body, rid)?;
            }
            engine.commit(txn)?;
            engine.mark_indexes_rebuilt();
        }
        let mut txn = engine.begin()?;
        let heap: BTreeSet<(Vec<u8>, Rid)> = engine
            .scan(&mut txn, t)?
            .into_iter()
            .map(|(rid, body)| (body, rid))
            .collect();
        let idx: BTreeSet<(Vec<u8>, Rid)> = engine
            .index_range(&mut txn, t, IDX_NAME, None, None)?
            .into_iter()
            .collect();
        engine.commit(txn)?;
        if heap == idx {
            return Ok(None);
        }
        let fmt = |s: &BTreeSet<(Vec<u8>, Rid)>, o: &BTreeSet<(Vec<u8>, Rid)>| -> Vec<String> {
            s.difference(o)
                .take(3)
                .map(|(k, rid)| format!("{}@{rid:?}", String::from_utf8_lossy(k)))
                .collect()
        };
        let missing = fmt(&heap, &idx);
        let phantom = fmt(&idx, &heap);
        Ok(Some(format!(
            "index missing entries: {missing:?}; phantom entries: {phantom:?}"
        )))
    })();
    match check {
        Ok(None) => {}
        Ok(Some(diff)) => violations.push(format!("{what}: index/heap divergence — {diff}")),
        Err(e) => violations.push(format!("{what}: index verification failed: {e}")),
    }
}

// ----------------------------------------------------------------------
// Sweep driver
// ----------------------------------------------------------------------

/// Runs the workload once under `ctl`'s plan in `dir`, recording the
/// oracle into `ledger`. An open that dies mid-crash is fine: the
/// ledger stays empty and verification checks the empty state.
fn run_one(dir: &Path, cfg: &TortureConfig, ctl: &FaultController, ledger: &mut Ledger) {
    let _ = fs::remove_dir_all(dir);
    if let Ok(engine) =
        StorageEngine::open_with_vfs(dir, cfg.pool_pages, &Registry::new(), &ctl.vfs())
    {
        run_workload(&engine, cfg.rounds, ledger);
        // Dropping the engine attempts a shutdown checkpoint; in crash
        // runs whose boundary lands there, the crash fires *inside* it.
    }
}

/// The crash-point exploration sweep. `scratch` is a directory the
/// sweep may fill with (and delete) per-boundary database directories.
/// Fault-layer totals land in `registry` as `mdm_fault_*` metrics.
pub fn crash_point_sweep(
    scratch: &Path,
    cfg: &TortureConfig,
    registry: &Registry,
) -> TortureReport {
    let m_ops = registry.counter(
        "mdm_fault_ops_total",
        "I/O operations counted by the fault layer (crash boundaries)",
    );
    let m_injected = registry.counter(
        "mdm_fault_injected_total",
        "faults injected by scripted plans",
    );
    let m_crashes = registry.counter("mdm_fault_crashes_total", "simulated machine crashes fired");
    let m_points = registry.counter(
        "mdm_fault_crash_points_total",
        "distinct crash boundaries explored and verified",
    );
    let m_violations = registry.counter(
        "mdm_fault_violations_total",
        "invariant violations found by the torture harness",
    );
    let h_reopen = registry.histogram(
        "mdm_fault_reopen_micros",
        "crash-recovery reopen latency (µs)",
        REOPEN_MICROS_BOUNDS,
    );

    let mut report = TortureReport::default();
    let stride = cfg.stride.max(1);

    // Pass 1: clean run enumerates the boundaries (including those in
    // the engine's shutdown checkpoint — drop before counting). The op
    // trace names each boundary in any violation reported against it.
    let clean = FaultController::new(FaultPlan::none());
    clean.enable_trace();
    let clean_dir = scratch.join("clean");
    {
        let mut ledger = Ledger::default();
        run_one(&clean_dir, cfg, &clean, &mut ledger);
        if ledger.tables.len() < TABLES.len() + 1 || !ledger.index_ready || ledger.unknown.is_some()
        {
            report
                .violations
                .push("clean run failed without any fault injected".to_string());
        }
    }
    let _ = fs::remove_dir_all(&clean_dir);
    let trace = clean.trace();
    report.boundaries = clean.ops();
    report.writes = clean.writes();
    report.syncs = clean.syncs();
    m_ops.add(report.boundaries);
    if report.boundaries == 0 {
        return report;
    }

    // Pass 2a: a hard crash at every (strided) boundary.
    let mut b = 0;
    while b < report.boundaries {
        let dir = scratch.join(format!("crash-{b}"));
        let ctl = FaultController::new(FaultPlan::none().with(At::Op(b), FaultKind::Crash));
        let mut ledger = Ledger::default();
        run_one(&dir, cfg, &ctl, &mut ledger);
        m_ops.add(ctl.ops());
        m_injected.add(ctl.injected());
        if ctl.crashed() {
            m_crashes.inc();
            report.crash_points += 1;
            m_points.inc();
            let what = match trace.get(b as usize) {
                Some(desc) => format!("crash at {desc}"),
                None => format!("crash at op {b}"),
            };
            if let Some(us) =
                verify_reopen(&dir, cfg.pool_pages, &ledger, &what, &mut report.violations)
            {
                report.reopen_micros.push(us);
                h_reopen.observe(us);
            }
        } else {
            report.violations.push(format!(
                "crash at op {b}: boundary never reached (nondeterministic workload?)"
            ));
        }
        let _ = fs::remove_dir_all(&dir);
        b += stride;
    }

    // Pass 2b: a torn write (partial sector persists, then crash) at
    // every (strided) write boundary.
    if cfg.torn_writes {
        let mut w = 0;
        while w < report.writes {
            let keep = 1 + (w as usize * 97) % 700;
            let dir = scratch.join(format!("torn-{w}"));
            let ctl = FaultController::new(
                FaultPlan::none().with(At::Write(w), FaultKind::TornWrite { keep }),
            );
            let mut ledger = Ledger::default();
            run_one(&dir, cfg, &ctl, &mut ledger);
            m_ops.add(ctl.ops());
            m_injected.add(ctl.injected());
            if ctl.crashed() {
                m_crashes.inc();
                report.crash_points += 1;
                m_points.inc();
                let what = format!("torn write {w} (keep {keep})");
                if let Some(us) =
                    verify_reopen(&dir, cfg.pool_pages, &ledger, &what, &mut report.violations)
                {
                    report.reopen_micros.push(us);
                    h_reopen.observe(us);
                }
            } else {
                report.violations.push(format!(
                    "torn write {w}: boundary never reached (nondeterministic workload?)"
                ));
            }
            let _ = fs::remove_dir_all(&dir);
            w += stride;
        }
    }

    m_violations.add(report.violations.len() as u64);
    report
}
