//! Crash recovery: repeat history, then undo losers.
//!
//! Recovery replays the write-ahead log onto the on-disk state (which may
//! reflect any prefix of page flushes): structural records re-link heap
//! chains and restore the latest catalog, data records are re-applied
//! idempotently via [`HeapFile::apply_at`], and finally the operations of
//! transactions without a `Commit` record are undone in reverse order.
//!
//! Secondary indexes are recovered *logically*: tree pages on disk may
//! reflect any prefix of a multi-page split, so every index is reset to a
//! fresh empty tree and its `IndexInsert`/`IndexDelete` records are
//! replayed into it — exact multiset reconstruction, provided the log
//! covers the index's whole lifetime. That coverage is witnessed by a
//! catalog snapshot in which the index does not yet exist (its creation,
//! and hence every entry it ever held, must then sit later in the log).
//! Indexes older than the log — they survived a checkpoint truncation —
//! cannot be reconstructed and are flagged for rebuild by the layer
//! above, which owns the key extraction logic. After a clean shutdown the
//! log is empty and indexes persist on disk untouched.

use std::collections::HashSet;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::catalog::{self, Catalog};
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::page::{self, PageType, PAGE_SIZE};
use crate::wal::{TxnId, WalRecord};

/// What recovery did, for logging and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Number of log records replayed.
    pub replayed: usize,
    /// Transactions whose effects were redone.
    pub committed: usize,
    /// Transactions whose effects were rolled back.
    pub undone: usize,
    /// Whether any secondary index could not be replayed from the log
    /// (it predates the log's horizon) and was left empty, needing a
    /// rebuild by the layer above.
    pub indexes_reset: bool,
    /// Secondary indexes reconstructed exactly from their log records.
    pub indexes_replayed: usize,
}

/// Replays `records` against the pool. `disk_catalog` is the catalog as
/// loaded from page 0 — `None` when the chain was unreadable (a torn
/// catalog-page write), in which case a snapshot or page image in the
/// log must rebuild it. Returns the outcome and the recovered catalog
/// (with fresh index roots if any indexes existed).
pub fn recover(
    pool: &BufferPool,
    records: &[WalRecord],
    disk_catalog: Option<Catalog>,
) -> Result<(RecoveryOutcome, Catalog)> {
    let mut outcome = RecoveryOutcome {
        replayed: records.len(),
        ..RecoveryOutcome::default()
    };
    if records.is_empty() {
        return disk_catalog
            .map(|c| (outcome, c))
            .ok_or_else(|| StorageError::Corrupt("catalog unreadable and log empty".into()));
    }

    // Classify transactions. Aborted ones are *not* losers: their
    // rollback already happened in place, at the point in history where
    // their Abort record sits — the redo pass repeats it there.
    let mut begun: HashSet<TxnId> = HashSet::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    for rec in records {
        match rec {
            WalRecord::Begin { txn } => {
                begun.insert(*txn);
            }
            WalRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            WalRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            _ => {}
        }
    }
    outcome.committed = committed.len();
    outcome.undone = begun
        .iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .count();

    // Redo pass: repeat history — *including* each aborted
    // transaction's in-place rollback, replayed at its Abort record's
    // position. Deferring those rollbacks to the end would be wrong: a
    // slot freed by an abort may have been reused by a later committed
    // insert, and a late undo would stomp the reused slot (the torture
    // sweep finds exactly this). `pending` accumulates the undo images
    // of not-yet-resolved transactions as the scan walks forward.
    type UndoImages = Vec<(crate::page::Rid, Option<Vec<u8>>)>;
    let mut pending: std::collections::HashMap<TxnId, UndoImages> =
        std::collections::HashMap::new();
    for rec in records {
        match rec {
            WalRecord::Insert { txn, rid, body, .. } => {
                HeapFile::apply_at(pool, *rid, Some(body))?;
                if !committed.contains(txn) {
                    pending.entry(*txn).or_default().push((*rid, None));
                }
            }
            WalRecord::Update {
                txn, rid, old, new, ..
            } => {
                HeapFile::apply_at(pool, *rid, Some(new))?;
                if !committed.contains(txn) {
                    pending
                        .entry(*txn)
                        .or_default()
                        .push((*rid, Some(old.clone())));
                }
            }
            WalRecord::Delete { txn, rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, None)?;
                if !committed.contains(txn) {
                    pending
                        .entry(*txn)
                        .or_default()
                        .push((*rid, Some(old.clone())));
                }
            }
            WalRecord::Abort { txn } => {
                if let Some(ops) = pending.remove(txn) {
                    for (rid, img) in ops.iter().rev() {
                        HeapFile::apply_at(pool, *rid, img.as_deref())?;
                    }
                }
            }
            WalRecord::LinkPage {
                from_page,
                new_page,
                ..
            } => {
                HeapFile::redo_link(pool, *from_page, *new_page)?;
            }
            // A full image logged before an in-place rewrite: restore
            // the page wholesale (the on-disk copy may be torn), then
            // let any later records replay on top.
            WalRecord::PageImage { page, bytes } if bytes.len() == PAGE_SIZE => {
                pool.ensure_page(*page)?;
                pool.with_page_mut(*page, |d| d.copy_from_slice(bytes))?;
            }
            _ => {}
        }
    }

    // Undo pass: roll back losers — neither committed nor aborted, i.e.
    // in flight at the crash — in reverse log order.
    for rec in records.iter().rev() {
        let Some(txn) = rec.txn() else { continue };
        if committed.contains(&txn) || aborted.contains(&txn) {
            continue;
        }
        match rec {
            WalRecord::Insert { rid, .. } => {
                HeapFile::apply_at(pool, *rid, None)?;
            }
            WalRecord::Update { rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, Some(old))?;
            }
            WalRecord::Delete { rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, Some(old))?;
            }
            _ => {}
        }
    }

    // The catalog to finish recovery under: the latest snapshot in the
    // log wins; otherwise the copy read from page 0; otherwise re-read
    // page 0 now — the redo pass above has just restored it from its
    // logged image (any in-place catalog rewrite is preceded by one).
    let mut snapshot = None;
    for rec in records {
        if let WalRecord::CatalogSnapshot { bytes } = rec {
            snapshot = Some(Catalog::from_bytes(bytes)?);
        }
    }
    let mut catalog = match snapshot.or(disk_catalog) {
        Some(c) => c,
        None => catalog::load(pool)?,
    };

    // Ensure every table's first heap page exists and is formatted (the
    // catalog may reference pages that were allocated but never flushed).
    for meta in catalog.tables.values() {
        pool.ensure_page(meta.first_page)?;
        pool.with_page_mut(meta.first_page, |d| {
            if page::page_type(d) != PageType::Heap {
                page::format_page(d, PageType::Heap);
            }
        })?;
    }

    // Secondary indexes: reset every tree to a fresh empty root (the
    // old pages may hold a torn split), then replay each index's logical
    // records into it. Replay is exact only when the log covers the
    // index's entire lifetime, witnessed by a catalog snapshot that
    // lacks the index — its creation and every entry must then come
    // later. The *last* such snapshot is the replay fence: records
    // before it belong to an older incarnation (drop + recreate).
    for meta in catalog.tables.values_mut() {
        for idx in meta.indexes.values_mut() {
            let fresh = BTree::create(pool)?;
            idx.root = fresh.root();
        }
    }
    let index_keys: Vec<(crate::wal::TableId, String)> = catalog
        .tables
        .values()
        .flat_map(|m| m.indexes.keys().map(|i| (m.id, i.clone())))
        .collect();
    let mut fence: std::collections::HashMap<&(crate::wal::TableId, String), Option<usize>> =
        index_keys.iter().map(|k| (k, None)).collect();
    for (pos, rec) in records.iter().enumerate() {
        let WalRecord::CatalogSnapshot { bytes } = rec else {
            continue;
        };
        let Ok(snap) = Catalog::from_bytes(bytes) else {
            continue;
        };
        for key in &index_keys {
            let present = snap
                .tables
                .values()
                .any(|m| m.id == key.0 && m.indexes.contains_key(&key.1));
            if !present {
                fence.insert(key, Some(pos));
            }
        }
    }
    outcome.indexes_reset = fence.values().any(Option::is_none);
    outcome.indexes_replayed = fence.values().filter(|f| f.is_some()).count();

    // Redo the covered indexes' history, mirroring the heap redo pass:
    // repeat every operation in order, replay each aborted transaction's
    // reversal at its Abort record, then undo losers' leftovers at the
    // end. Starting from a fresh tree with the complete history in hand,
    // this reconstructs the exact entry multiset.
    if outcome.indexes_replayed > 0 {
        let trees: std::collections::HashMap<(crate::wal::TableId, String), BTree> = catalog
            .tables
            .values()
            .flat_map(|m| {
                m.indexes
                    .iter()
                    .map(|(i, im)| ((m.id, i.clone()), BTree::open(im.root)))
            })
            .collect();
        // (tree key, entry was inserted, index key, packed rid)
        type IndexUndo = Vec<((crate::wal::TableId, String), bool, Vec<u8>, u64)>;
        let mut pending_idx: std::collections::HashMap<TxnId, IndexUndo> =
            std::collections::HashMap::new();
        let covered = |k: &(crate::wal::TableId, String), pos: usize| {
            fence.get(k).copied().flatten().is_some_and(|f| pos > f)
        };
        for (pos, rec) in records.iter().enumerate() {
            match rec {
                WalRecord::IndexInsert {
                    txn,
                    table,
                    index,
                    key,
                    rid,
                } => {
                    let k = (*table, index.clone());
                    if covered(&k, pos) {
                        trees[&k].insert(pool, key, rid.to_u64())?;
                        if !committed.contains(txn) {
                            pending_idx.entry(*txn).or_default().push((
                                k,
                                true,
                                key.clone(),
                                rid.to_u64(),
                            ));
                        }
                    }
                }
                WalRecord::IndexDelete {
                    txn,
                    table,
                    index,
                    key,
                    rid,
                } => {
                    let k = (*table, index.clone());
                    if covered(&k, pos) {
                        trees[&k].delete(pool, key, rid.to_u64())?;
                        if !committed.contains(txn) {
                            pending_idx.entry(*txn).or_default().push((
                                k,
                                false,
                                key.clone(),
                                rid.to_u64(),
                            ));
                        }
                    }
                }
                WalRecord::Abort { txn } => {
                    if let Some(ops) = pending_idx.remove(txn) {
                        for (k, was_insert, key, val) in ops.iter().rev() {
                            if *was_insert {
                                trees[k].delete(pool, key, *val)?;
                            } else {
                                trees[k].insert(pool, key, *val)?;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Losers (in flight at the crash) never hit an Abort record;
        // their leftovers reverse here. Two live transactions can never
        // have written the same table (exclusive table locks), so
        // per-transaction reverse order is the true reverse history.
        for ops in pending_idx.values() {
            for (k, was_insert, key, val) in ops.iter().rev() {
                if *was_insert {
                    trees[k].delete(pool, key, *val)?;
                } else {
                    trees[k].insert(pool, key, *val)?;
                }
            }
        }
    }

    Ok((outcome, catalog))
}
