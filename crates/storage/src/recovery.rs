//! Crash recovery: repeat history, then undo losers.
//!
//! Recovery replays the write-ahead log onto the on-disk state (which may
//! reflect any prefix of page flushes): structural records re-link heap
//! chains and restore the latest catalog, data records are re-applied
//! idempotently via [`HeapFile::apply_at`], and finally the operations of
//! transactions without a `Commit` record are undone in reverse order.
//!
//! Secondary indexes are *not* crash-durable: after a genuine recovery
//! (a non-empty log was replayed) every index is reset to an empty tree and
//! flagged for rebuild by the layer above, which owns the key extraction
//! logic. After a clean shutdown the log is empty and indexes persist.

use std::collections::HashSet;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::catalog::Catalog;
use crate::error::Result;
use crate::heap::HeapFile;
use crate::page::{self, PageType};
use crate::wal::{TxnId, WalRecord};

/// What recovery did, for logging and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Number of log records replayed.
    pub replayed: usize,
    /// Transactions whose effects were redone.
    pub committed: usize,
    /// Transactions whose effects were rolled back.
    pub undone: usize,
    /// Whether secondary indexes were reset and need rebuilding.
    pub indexes_reset: bool,
}

/// Replays `records` against the pool. `disk_catalog` is the catalog as
/// loaded from page 0; a later snapshot in the log supersedes it. Returns
/// the outcome and the recovered catalog (with fresh index roots if any
/// indexes existed).
pub fn recover(
    pool: &BufferPool,
    records: &[WalRecord],
    disk_catalog: Catalog,
) -> Result<(RecoveryOutcome, Catalog)> {
    let mut outcome = RecoveryOutcome {
        replayed: records.len(),
        ..RecoveryOutcome::default()
    };
    if records.is_empty() {
        return Ok((outcome, disk_catalog));
    }

    // The catalog to recover under: the latest snapshot in the log wins.
    let mut catalog = disk_catalog;
    for rec in records {
        if let WalRecord::CatalogSnapshot { bytes } = rec {
            catalog = Catalog::from_bytes(bytes)?;
        }
    }

    // Classify transactions.
    let mut begun: HashSet<TxnId> = HashSet::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    for rec in records {
        match rec {
            WalRecord::Begin { txn } => {
                begun.insert(*txn);
            }
            WalRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            _ => {}
        }
    }
    outcome.committed = committed.len();
    outcome.undone = begun.difference(&committed).count();

    // Ensure every table's first heap page exists and is formatted (the
    // catalog may reference pages that were allocated but never flushed).
    for meta in catalog.tables.values() {
        pool.ensure_page(meta.first_page)?;
        pool.with_page_mut(meta.first_page, |d| {
            if page::page_type(d) != PageType::Heap {
                page::format_page(d, PageType::Heap);
            }
        })?;
    }

    // Redo pass: repeat history, including losers.
    for rec in records {
        match rec {
            WalRecord::Insert { rid, body, .. } => {
                HeapFile::apply_at(pool, *rid, Some(body))?;
            }
            WalRecord::Update { rid, new, .. } => {
                HeapFile::apply_at(pool, *rid, Some(new))?;
            }
            WalRecord::Delete { rid, .. } => {
                HeapFile::apply_at(pool, *rid, None)?;
            }
            WalRecord::LinkPage {
                from_page,
                new_page,
                ..
            } => {
                HeapFile::redo_link(pool, *from_page, *new_page)?;
            }
            _ => {}
        }
    }

    // Undo pass: roll back losers in reverse log order.
    for rec in records.iter().rev() {
        let Some(txn) = rec.txn() else { continue };
        if committed.contains(&txn) {
            continue;
        }
        match rec {
            WalRecord::Insert { rid, .. } => {
                HeapFile::apply_at(pool, *rid, None)?;
            }
            WalRecord::Update { rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, Some(old))?;
            }
            WalRecord::Delete { rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, Some(old))?;
            }
            _ => {}
        }
    }

    // Reset secondary indexes to fresh empty trees; the layer above will
    // rebuild them from the recovered base tables.
    let mut any_index = false;
    for meta in catalog.tables.values_mut() {
        for idx in meta.indexes.values_mut() {
            let fresh = BTree::create(pool)?;
            idx.root = fresh.root();
            any_index = true;
        }
    }
    outcome.indexes_reset = any_index;

    Ok((outcome, catalog))
}
