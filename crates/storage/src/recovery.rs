//! Crash recovery: repeat history, then undo losers.
//!
//! Recovery replays the write-ahead log onto the on-disk state (which may
//! reflect any prefix of page flushes): structural records re-link heap
//! chains and restore the latest catalog, data records are re-applied
//! idempotently via [`HeapFile::apply_at`], and finally the operations of
//! transactions without a `Commit` record are undone in reverse order.
//!
//! Secondary indexes are *not* crash-durable: after a genuine recovery
//! (a non-empty log was replayed) every index is reset to an empty tree and
//! flagged for rebuild by the layer above, which owns the key extraction
//! logic. After a clean shutdown the log is empty and indexes persist.

use std::collections::HashSet;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::catalog::{self, Catalog};
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::page::{self, PageType, PAGE_SIZE};
use crate::wal::{TxnId, WalRecord};

/// What recovery did, for logging and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Number of log records replayed.
    pub replayed: usize,
    /// Transactions whose effects were redone.
    pub committed: usize,
    /// Transactions whose effects were rolled back.
    pub undone: usize,
    /// Whether secondary indexes were reset and need rebuilding.
    pub indexes_reset: bool,
}

/// Replays `records` against the pool. `disk_catalog` is the catalog as
/// loaded from page 0 — `None` when the chain was unreadable (a torn
/// catalog-page write), in which case a snapshot or page image in the
/// log must rebuild it. Returns the outcome and the recovered catalog
/// (with fresh index roots if any indexes existed).
pub fn recover(
    pool: &BufferPool,
    records: &[WalRecord],
    disk_catalog: Option<Catalog>,
) -> Result<(RecoveryOutcome, Catalog)> {
    let mut outcome = RecoveryOutcome {
        replayed: records.len(),
        ..RecoveryOutcome::default()
    };
    if records.is_empty() {
        return disk_catalog
            .map(|c| (outcome, c))
            .ok_or_else(|| StorageError::Corrupt("catalog unreadable and log empty".into()));
    }

    // Classify transactions. Aborted ones are *not* losers: their
    // rollback already happened in place, at the point in history where
    // their Abort record sits — the redo pass repeats it there.
    let mut begun: HashSet<TxnId> = HashSet::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    for rec in records {
        match rec {
            WalRecord::Begin { txn } => {
                begun.insert(*txn);
            }
            WalRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            WalRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            _ => {}
        }
    }
    outcome.committed = committed.len();
    outcome.undone = begun
        .iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .count();

    // Redo pass: repeat history — *including* each aborted
    // transaction's in-place rollback, replayed at its Abort record's
    // position. Deferring those rollbacks to the end would be wrong: a
    // slot freed by an abort may have been reused by a later committed
    // insert, and a late undo would stomp the reused slot (the torture
    // sweep finds exactly this). `pending` accumulates the undo images
    // of not-yet-resolved transactions as the scan walks forward.
    type UndoImages = Vec<(crate::page::Rid, Option<Vec<u8>>)>;
    let mut pending: std::collections::HashMap<TxnId, UndoImages> =
        std::collections::HashMap::new();
    for rec in records {
        match rec {
            WalRecord::Insert { txn, rid, body, .. } => {
                HeapFile::apply_at(pool, *rid, Some(body))?;
                if !committed.contains(txn) {
                    pending.entry(*txn).or_default().push((*rid, None));
                }
            }
            WalRecord::Update {
                txn, rid, old, new, ..
            } => {
                HeapFile::apply_at(pool, *rid, Some(new))?;
                if !committed.contains(txn) {
                    pending
                        .entry(*txn)
                        .or_default()
                        .push((*rid, Some(old.clone())));
                }
            }
            WalRecord::Delete { txn, rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, None)?;
                if !committed.contains(txn) {
                    pending
                        .entry(*txn)
                        .or_default()
                        .push((*rid, Some(old.clone())));
                }
            }
            WalRecord::Abort { txn } => {
                if let Some(ops) = pending.remove(txn) {
                    for (rid, img) in ops.iter().rev() {
                        HeapFile::apply_at(pool, *rid, img.as_deref())?;
                    }
                }
            }
            WalRecord::LinkPage {
                from_page,
                new_page,
                ..
            } => {
                HeapFile::redo_link(pool, *from_page, *new_page)?;
            }
            // A full image logged before an in-place rewrite: restore
            // the page wholesale (the on-disk copy may be torn), then
            // let any later records replay on top.
            WalRecord::PageImage { page, bytes } if bytes.len() == PAGE_SIZE => {
                pool.ensure_page(*page)?;
                pool.with_page_mut(*page, |d| d.copy_from_slice(bytes))?;
            }
            _ => {}
        }
    }

    // Undo pass: roll back losers — neither committed nor aborted, i.e.
    // in flight at the crash — in reverse log order.
    for rec in records.iter().rev() {
        let Some(txn) = rec.txn() else { continue };
        if committed.contains(&txn) || aborted.contains(&txn) {
            continue;
        }
        match rec {
            WalRecord::Insert { rid, .. } => {
                HeapFile::apply_at(pool, *rid, None)?;
            }
            WalRecord::Update { rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, Some(old))?;
            }
            WalRecord::Delete { rid, old, .. } => {
                HeapFile::apply_at(pool, *rid, Some(old))?;
            }
            _ => {}
        }
    }

    // The catalog to finish recovery under: the latest snapshot in the
    // log wins; otherwise the copy read from page 0; otherwise re-read
    // page 0 now — the redo pass above has just restored it from its
    // logged image (any in-place catalog rewrite is preceded by one).
    let mut snapshot = None;
    for rec in records {
        if let WalRecord::CatalogSnapshot { bytes } = rec {
            snapshot = Some(Catalog::from_bytes(bytes)?);
        }
    }
    let mut catalog = match snapshot.or(disk_catalog) {
        Some(c) => c,
        None => catalog::load(pool)?,
    };

    // Ensure every table's first heap page exists and is formatted (the
    // catalog may reference pages that were allocated but never flushed).
    for meta in catalog.tables.values() {
        pool.ensure_page(meta.first_page)?;
        pool.with_page_mut(meta.first_page, |d| {
            if page::page_type(d) != PageType::Heap {
                page::format_page(d, PageType::Heap);
            }
        })?;
    }

    // Reset secondary indexes to fresh empty trees; the layer above will
    // rebuild them from the recovered base tables.
    let mut any_index = false;
    for meta in catalog.tables.values_mut() {
        for idx in meta.indexes.values_mut() {
            let fresh = BTree::create(pool)?;
            idx.root = fresh.root();
            any_index = true;
        }
    }
    outcome.indexes_reset = any_index;

    Ok((outcome, catalog))
}
