//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is a singly linked chain of slotted pages. Records are
//! addressed by [`Rid`] (page, slot). Inserts go to the last page when it
//! fits, otherwise an earlier page with room is used, otherwise a new page
//! is linked onto the chain.

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{self, PageId, PageType, Rid, NO_PAGE};

/// A handle to one heap file. The first page id is the stable identity
/// (recorded in the catalog); the last page id is a cached optimization.
#[derive(Debug, Clone)]
pub struct HeapFile {
    first_page: PageId,
    last_page: PageId,
}

impl HeapFile {
    /// Creates a new heap file with one empty page.
    pub fn create(pool: &BufferPool) -> Result<HeapFile> {
        let first = pool.allocate_page()?;
        pool.with_page_mut(first, |d| page::format_page(d, PageType::Heap))?;
        Ok(HeapFile {
            first_page: first,
            last_page: first,
        })
    }

    /// Opens an existing heap file rooted at `first_page`, walking the chain
    /// to locate the last page.
    pub fn open(pool: &BufferPool, first_page: PageId) -> Result<HeapFile> {
        let mut last = first_page;
        loop {
            let next = pool.with_page(last, page::next_page)?;
            if next == NO_PAGE {
                break;
            }
            last = next;
        }
        Ok(HeapFile {
            first_page,
            last_page: last,
        })
    }

    /// The stable identity of this heap file.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Inserts a record, returning its rid. If a new page had to be linked
    /// onto the chain, the second element reports `(from_page, new_page)` so
    /// the caller can log the structural change.
    ///
    /// Mutations run through the pool's *logged* path: under an engine
    /// flush barrier, each page this call reports as touched (the rid's
    /// page, plus `from_page` on a link) stays pinned until the caller
    /// appends the covering WAL record and publishes its sequence number
    /// (see [`BufferPool::publish_lsn`]).
    pub fn insert(
        &mut self,
        pool: &BufferPool,
        body: &[u8],
    ) -> Result<(Rid, Option<(PageId, PageId)>)> {
        if body.len() > page::MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge(body.len()));
        }
        let try_insert = |d: &mut [u8]| {
            let slot = page::insert_record(d, body);
            (slot, slot.is_some())
        };
        // Fast path: last page.
        if let Some(slot) = pool.with_page_mut_logged(self.last_page, try_insert)? {
            return Ok((Rid::new(self.last_page, slot), None));
        }
        // Slow path: first fit along the chain.
        let mut pid = self.first_page;
        while pid != NO_PAGE {
            if pid != self.last_page {
                if let Some(slot) = pool.with_page_mut_logged(pid, try_insert)? {
                    return Ok((Rid::new(pid, slot), None));
                }
            }
            pid = pool.with_page(pid, page::next_page)?;
        }
        // Extend the chain. Formatting the fresh page is unlogged (it is
        // unreachable until the link below is durable); the link and the
        // record are covered by the caller's LinkPage + Insert records.
        let new_page = pool.allocate_page()?;
        pool.with_page_mut(new_page, |d| page::format_page(d, PageType::Heap))?;
        let from = self.last_page;
        pool.with_page_mut_logged(from, |d| {
            page::set_next_page(d, new_page);
            ((), true)
        })?;
        self.last_page = new_page;
        let slot = pool
            .with_page_mut_logged(new_page, try_insert)?
            .expect("fresh page must fit a record of legal size");
        Ok((Rid::new(new_page, slot), Some((from, new_page))))
    }

    /// Re-links `new_page` after `from_page` (recovery redo of a structural
    /// extension). Formats the new page if it is not already a heap page.
    pub fn redo_link(pool: &BufferPool, from_page: PageId, new_page: PageId) -> Result<()> {
        pool.ensure_page(new_page)?;
        pool.ensure_page(from_page)?;
        pool.with_page_mut(new_page, |d| {
            if page::page_type(d) != PageType::Heap {
                page::format_page(d, PageType::Heap);
            }
        })?;
        pool.with_page_mut(from_page, |d| page::set_next_page(d, new_page))?;
        Ok(())
    }

    /// Reads the record at `rid`.
    pub fn get(pool: &BufferPool, rid: Rid) -> Result<Option<Vec<u8>>> {
        pool.with_page(rid.page, |d| {
            page::get_record(d, rid.slot).map(<[u8]>::to_vec)
        })
    }

    /// Replaces the record at `rid`. Fails if absent; if the new body does
    /// not fit in the page the record *moves* are not supported — the engine
    /// layer handles oversize updates as delete+insert, so this returns an
    /// error the engine translates.
    pub fn update(pool: &BufferPool, rid: Rid, body: &[u8]) -> Result<bool> {
        if body.len() > page::MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge(body.len()));
        }
        let present = pool.with_page(rid.page, |d| page::get_record(d, rid.slot).is_some())?;
        if !present {
            return Err(StorageError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            });
        }
        pool.with_page_mut_logged(rid.page, |d| {
            let updated = page::update_record(d, rid.slot, body);
            // On `false` the page bytes are restored untouched, so no
            // WAL record covers it and no pin is taken.
            (updated, updated)
        })
    }

    /// Deletes the record at `rid`. Returns the old body.
    pub fn delete(pool: &BufferPool, rid: Rid) -> Result<Vec<u8>> {
        let old = Self::get(pool, rid)?.ok_or(StorageError::RecordNotFound {
            page: rid.page,
            slot: rid.slot,
        })?;
        pool.with_page_mut_logged(rid.page, |d| {
            page::delete_record(d, rid.slot);
            ((), true)
        })?;
        Ok(old)
    }

    /// Idempotently forces the record state at `rid`: `Some(body)` places the
    /// record (overwriting any occupant), `None` removes it. Used by
    /// recovery redo/undo, which must be re-runnable.
    pub fn apply_at(pool: &BufferPool, rid: Rid, body: Option<&[u8]>) -> Result<()> {
        pool.ensure_page(rid.page)?;
        pool.with_page_mut(rid.page, |d| {
            if page::page_type(d) != PageType::Heap {
                page::format_page(d, PageType::Heap);
            }
            match body {
                Some(b) => {
                    page::insert_record_at(d, rid.slot, b);
                }
                None => {
                    page::delete_record(d, rid.slot);
                }
            }
        })
    }

    /// Visits every record in the file in (page, slot) order.
    pub fn scan(&self, pool: &BufferPool, mut f: impl FnMut(Rid, &[u8])) -> Result<()> {
        let mut pid = self.first_page;
        while pid != NO_PAGE {
            let next = pool.with_page(pid, |d| {
                for slot in page::occupied_slots(d) {
                    let body = page::get_record(d, slot).expect("occupied slot has record");
                    f(Rid::new(pid, slot), body);
                }
                page::next_page(d)
            })?;
            pid = next;
        }
        Ok(())
    }

    /// Collects every record into a vector (convenience over [`scan`]).
    ///
    /// [`scan`]: HeapFile::scan
    pub fn scan_all(&self, pool: &BufferPool) -> Result<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan(pool, |rid, body| out.push((rid, body.to_vec())))?;
        Ok(out)
    }

    /// Number of pages in the chain.
    pub fn page_count(&self, pool: &BufferPool) -> Result<usize> {
        let mut n = 0;
        let mut pid = self.first_page;
        while pid != NO_PAGE {
            n += 1;
            pid = pool.with_page(pid, page::next_page)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(name: &str) -> (std::path::PathBuf, BufferPool) {
        let dir = std::env::temp_dir().join(format!("mdm-heap-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        let bp = BufferPool::open(&dir, 16).unwrap();
        (dir, bp)
    }

    #[test]
    fn insert_get_many() {
        let (dir, bp) = setup("many");
        let mut hf = HeapFile::create(&bp).unwrap();
        let rids: Vec<Rid> = (0..500)
            .map(|i| {
                hf.insert(&bp, format!("record number {i}").as_bytes())
                    .unwrap()
                    .0
            })
            .collect();
        for (i, rid) in rids.iter().enumerate() {
            let body = HeapFile::get(&bp, *rid).unwrap().unwrap();
            assert_eq!(body, format!("record number {i}").as_bytes());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_grows_and_scan_visits_all() {
        let (dir, bp) = setup("chain");
        let mut hf = HeapFile::create(&bp).unwrap();
        let body = vec![3u8; 2000];
        let mut links = 0;
        for _ in 0..50 {
            let (_, link) = hf.insert(&bp, &body).unwrap();
            if link.is_some() {
                links += 1;
            }
        }
        assert!(
            links >= 10,
            "2 kB records, ~4/page: expected many new pages"
        );
        let mut n = 0;
        hf.scan(&bp, |_, b| {
            assert_eq!(b.len(), 2000);
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_and_delete() {
        let (dir, bp) = setup("ud");
        let mut hf = HeapFile::create(&bp).unwrap();
        let (rid, _) = hf.insert(&bp, b"original").unwrap();
        assert!(HeapFile::update(&bp, rid, b"changed!").unwrap());
        assert_eq!(HeapFile::get(&bp, rid).unwrap().unwrap(), b"changed!");
        let old = HeapFile::delete(&bp, rid).unwrap();
        assert_eq!(old, b"changed!");
        assert_eq!(HeapFile::get(&bp, rid).unwrap(), None);
        assert!(matches!(
            HeapFile::delete(&bp, rid),
            Err(StorageError::RecordNotFound { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_space_is_reused() {
        let (dir, bp) = setup("reuse");
        let mut hf = HeapFile::create(&bp).unwrap();
        let body = vec![1u8; 1000];
        let rids: Vec<Rid> = (0..40).map(|_| hf.insert(&bp, &body).unwrap().0).collect();
        let pages_before = hf.page_count(&bp).unwrap();
        for rid in &rids {
            HeapFile::delete(&bp, *rid).unwrap();
        }
        for _ in 0..40 {
            hf.insert(&bp, &body).unwrap();
        }
        let pages_after = hf.page_count(&bp).unwrap();
        assert_eq!(pages_before, pages_after, "space should be reused");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_finds_last_page() {
        let (dir, bp) = setup("open");
        let mut hf = HeapFile::create(&bp).unwrap();
        let body = vec![9u8; 3000];
        for _ in 0..10 {
            hf.insert(&bp, &body).unwrap();
        }
        let first = hf.first_page();
        let reopened = HeapFile::open(&bp, first).unwrap();
        assert_eq!(reopened.last_page, hf.last_page);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_at_is_idempotent() {
        let (dir, bp) = setup("apply");
        let _hf = HeapFile::create(&bp).unwrap();
        let rid = Rid::new(5, 3);
        HeapFile::apply_at(&bp, rid, Some(b"redo me")).unwrap();
        HeapFile::apply_at(&bp, rid, Some(b"redo me")).unwrap();
        assert_eq!(HeapFile::get(&bp, rid).unwrap().unwrap(), b"redo me");
        HeapFile::apply_at(&bp, rid, None).unwrap();
        HeapFile::apply_at(&bp, rid, None).unwrap();
        assert_eq!(HeapFile::get(&bp, rid).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
