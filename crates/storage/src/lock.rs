//! Table-level strict two-phase locking with wait-die deadlock avoidance.
//!
//! Transactions acquire shared (S) or exclusive (X) locks on tables; all
//! locks are held to commit/abort (strict 2PL). Deadlock is avoided by the
//! *wait-die* policy: transaction ids are timestamps, and a requester may
//! wait only for *younger* (higher-id) holders — an older holder forces the
//! requester to die (abort with [`StorageError::Deadlock`]) so that waits
//! can never cycle.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use mdm_obs::{trace, Counter, Gauge};

use crate::error::{Result, StorageError};
use crate::wal::{TableId, TxnId};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: concurrent readers.
    Shared,
    /// Exclusive: single writer.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    /// Holders and their modes. Either many Shared or one Exclusive
    /// (or one holder with Exclusive after upgrade).
    holders: HashMap<TxnId, LockMode>,
}

impl LockState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(&t, &m)| t == txn || m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|&t| t == txn),
        }
    }

    /// Would the requester wait on an *older* holder? (wait-die check)
    fn must_die(&self, txn: TxnId, mode: LockMode) -> bool {
        let blockers = self.holders.iter().filter(|&(&t, &m)| {
            t != txn
                && match mode {
                    LockMode::Shared => m == LockMode::Exclusive,
                    LockMode::Exclusive => true,
                }
        });
        // Wait-die: the requester may only wait for younger (larger id)
        // transactions; any older blocker forces the requester to die.
        let mut any = false;
        for (&t, _) in blockers {
            any = true;
            if t < txn {
                return true;
            }
        }
        // No blockers at all means no death and no wait.
        let _ = any;
        false
    }
}

struct Shared {
    tables: Mutex<HashMap<TableId, LockState>>,
    wakeup: Condvar,
    waits: Arc<Counter>,
    deadlocks: Arc<Counter>,
    /// Shared locks held right now, across all transactions and tables.
    /// Snapshot reads bypass the lock manager entirely, so under a pure
    /// snapshot-read workload this stays at zero — `$locks` exposes it
    /// as proof that the read path is lock-free.
    held_shared: Arc<Gauge>,
    /// Exclusive locks held right now.
    held_exclusive: Arc<Gauge>,
}

/// The lock manager. Cloneable handle; all clones share state.
#[derive(Clone)]
pub struct LockManager {
    shared: Arc<Shared>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> LockManager {
        LockManager {
            shared: Arc::new(Shared {
                tables: Mutex::new(HashMap::new()),
                wakeup: Condvar::new(),
                waits: Counter::new(),
                deadlocks: Counter::new(),
                held_shared: Gauge::new(),
                held_exclusive: Gauge::new(),
            }),
        }
    }

    /// Registers this manager's wait/abort counters with a registry.
    pub fn register_metrics(&self, registry: &mdm_obs::Registry) {
        registry.register_counter_handle(
            "mdm_lock_waits_total",
            "lock acquisitions that blocked on a conflicting holder",
            &[],
            Arc::clone(&self.shared.waits),
        );
        registry.register_counter_handle(
            "mdm_lock_wait_die_aborts_total",
            "lock requests aborted by the wait-die deadlock policy",
            &[],
            Arc::clone(&self.shared.deadlocks),
        );
        registry.register_gauge_handle(
            "mdm_lock_held_shared",
            "shared (read) locks held now — zero under pure snapshot reads",
            &[],
            Arc::clone(&self.shared.held_shared),
        );
        registry.register_gauge_handle(
            "mdm_lock_held_exclusive",
            "exclusive (write) locks held now",
            &[],
            Arc::clone(&self.shared.held_exclusive),
        );
    }

    /// Wait/abort counts so far: (waits, wait-die aborts).
    pub fn stats(&self) -> (u64, u64) {
        (self.shared.waits.get(), self.shared.deadlocks.get())
    }

    /// Acquires (or upgrades to) the given lock, blocking if permitted by
    /// wait-die, or returning [`StorageError::Deadlock`] if the transaction
    /// must die. A contended acquisition (or a wait-die death) leaves a
    /// retroactive `storage.lock_wait` span in any active request trace;
    /// the uncontended fast path records nothing.
    pub fn lock(&self, txn: TxnId, table: TableId, mode: LockMode) -> Result<()> {
        let mut tables = self.shared.tables.lock().unwrap();
        let mut wait_started: Option<Instant> = None;
        let result = loop {
            let state = tables.entry(table).or_default();
            let held = state.holders.get(&txn).copied();
            // Already held at sufficient strength?
            if matches!(
                (held, mode),
                (Some(LockMode::Exclusive), _) | (Some(LockMode::Shared), LockMode::Shared)
            ) {
                break Ok(());
            }
            if state.compatible(txn, mode) {
                let prev = state.holders.insert(txn, mode);
                match (prev, mode) {
                    (None, LockMode::Shared) => self.shared.held_shared.add(1),
                    (None, LockMode::Exclusive) => self.shared.held_exclusive.add(1),
                    (Some(LockMode::Shared), LockMode::Exclusive) => {
                        // Upgrade: the S becomes an X.
                        self.shared.held_shared.add(-1);
                        self.shared.held_exclusive.add(1);
                    }
                    _ => {}
                }
                break Ok(());
            }
            if state.must_die(txn, mode) {
                self.shared.deadlocks.inc();
                // A death with no preceding wait still leaves a
                // (zero-length) span so the abort shows up in traces.
                wait_started.get_or_insert_with(Instant::now);
                break Err(StorageError::Deadlock);
            }
            if wait_started.is_none() {
                wait_started = Some(Instant::now());
                self.shared.waits.inc();
            }
            tables = self.shared.wakeup.wait(tables).unwrap();
        };
        drop(tables);
        if let Some(started) = wait_started {
            let table_label = table.to_string();
            let aborted = if result.is_err() { "true" } else { "false" };
            trace::child_since(
                "storage.lock_wait",
                started,
                &[("table", &table_label), ("wait_die_abort", aborted)],
            );
        }
        result
    }

    /// Releases every lock held by the transaction (commit/abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut tables = self.shared.tables.lock().unwrap();
        tables.retain(|_, state| {
            match state.holders.remove(&txn) {
                Some(LockMode::Shared) => self.shared.held_shared.add(-1),
                Some(LockMode::Exclusive) => self.shared.held_exclusive.add(-1),
                None => {}
            }
            !state.holders.is_empty()
        });
        drop(tables);
        self.shared.wakeup.notify_all();
    }

    /// Locks currently held by a transaction (diagnostics/tests).
    pub fn held_by(&self, txn: TxnId) -> Vec<(TableId, LockMode)> {
        let tables = self.shared.tables.lock().unwrap();
        let mut v: Vec<_> = tables
            .iter()
            .filter_map(|(&tid, st)| st.holders.get(&txn).map(|&m| (tid, m)))
            .collect();
        v.sort_by_key(|&(t, _)| t);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(2, 10, LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(1).len(), 1);
        assert_eq!(lm.held_by(2).len(), 1);
    }

    #[test]
    fn exclusive_blocks_younger_to_death() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Exclusive).unwrap();
        // Txn 2 is younger than holder 1: wait-die says it dies.
        assert!(matches!(
            lm.lock(2, 10, LockMode::Exclusive),
            Err(StorageError::Deadlock)
        ));
        assert!(matches!(
            lm.lock(2, 10, LockMode::Shared),
            Err(StorageError::Deadlock)
        ));
    }

    #[test]
    fn older_waits_for_younger_release() {
        let lm = LockManager::new();
        lm.lock(5, 10, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        // Txn 3 is older than holder 5: it is allowed to wait.
        let waiter = std::thread::spawn(move || lm2.lock(3, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!waiter.is_finished(), "older txn should be waiting");
        lm.release_all(5);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(1, 10, LockMode::Exclusive).unwrap(); // sole holder: upgrade ok
        assert_eq!(lm.held_by(1), vec![(10, LockMode::Exclusive)]);
        // Exclusive satisfies later shared requests.
        lm.lock(1, 10, LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(1), vec![(10, LockMode::Exclusive)]);
    }

    #[test]
    fn upgrade_with_other_reader_dies_if_younger() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(2, 10, LockMode::Shared).unwrap();
        // Txn 2 wants X but older txn 1 holds S: die.
        assert!(matches!(
            lm.lock(2, 10, LockMode::Exclusive),
            Err(StorageError::Deadlock)
        ));
    }

    #[test]
    fn release_unblocks_waiters() {
        let lm = LockManager::new();
        lm.lock(9, 10, LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let waiter = std::thread::spawn(move || lm2.lock(1, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        lm.release_all(9);
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.held_by(1), vec![(10, LockMode::Exclusive)]);
    }

    /// Wait-die upgrade audit: an *older* holder upgrading S→X while a
    /// *younger* sharer exists must wait for the sharer to release — it
    /// must neither die (it only waits on younger txns) nor deadlock
    /// (the younger sharer attempting its own upgrade dies instead).
    #[test]
    fn upgrade_waits_for_younger_sharers() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(2, 10, LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let upgrader = std::thread::spawn(move || lm2.lock(1, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !upgrader.is_finished(),
            "older upgrader must wait, not die, while younger sharer holds S"
        );
        lm.release_all(2);
        upgrader.join().unwrap().unwrap();
        assert_eq!(lm.held_by(1), vec![(10, LockMode::Exclusive)]);
    }

    /// Symmetric upgrade conflict resolves without deadlock: the younger
    /// of two S-holders dies when both request X, letting the older
    /// upgrade once the younger aborts.
    #[test]
    fn symmetric_upgrade_conflict_kills_exactly_the_younger() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(2, 10, LockMode::Shared).unwrap();
        // Younger txn 2 asks first and must die (older sharer 1 blocks it).
        assert!(matches!(
            lm.lock(2, 10, LockMode::Exclusive),
            Err(StorageError::Deadlock)
        ));
        // Txn 2 aborts, releasing its S; older txn 1 then upgrades.
        lm.release_all(2);
        lm.lock(1, 10, LockMode::Exclusive).unwrap();
        assert_eq!(lm.held_by(1), vec![(10, LockMode::Exclusive)]);
    }

    #[test]
    fn held_gauges_track_acquire_upgrade_and_release() {
        let lm = LockManager::new();
        let reg = mdm_obs::Registry::new();
        lm.register_metrics(&reg);
        lm.lock(1, 10, LockMode::Shared).unwrap();
        lm.lock(2, 10, LockMode::Shared).unwrap();
        lm.lock(1, 11, LockMode::Exclusive).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("mdm_lock_held_shared"), Some(2));
        assert_eq!(snap.gauge("mdm_lock_held_exclusive"), Some(1));
        lm.release_all(2);
        lm.lock(1, 10, LockMode::Exclusive).unwrap(); // upgrade S→X
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("mdm_lock_held_shared"), Some(0));
        assert_eq!(snap.gauge("mdm_lock_held_exclusive"), Some(2));
        lm.release_all(1);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("mdm_lock_held_shared"), Some(0));
        assert_eq!(snap.gauge("mdm_lock_held_exclusive"), Some(0));
    }

    #[test]
    fn locks_on_different_tables_do_not_conflict() {
        let lm = LockManager::new();
        lm.lock(1, 10, LockMode::Exclusive).unwrap();
        lm.lock(2, 11, LockMode::Exclusive).unwrap();
        assert_eq!(lm.held_by(1), vec![(10, LockMode::Exclusive)]);
        assert_eq!(lm.held_by(2), vec![(11, LockMode::Exclusive)]);
    }
}
