//! A page-based B+tree index.
//!
//! Keys are arbitrary byte strings ordered lexicographically; values are
//! `u64` (packed [`Rid`]s in practice). Internally the tree orders entries
//! by the *composite* `(key, value)` pair, which makes every stored entry
//! unique and lets duplicate user keys coexist without special-casing
//! splits. Lookups by key alone are range scans over `(key, 0)..=(key, MAX)`.
//!
//! The root page id never changes: when the root splits, its content moves
//! to a fresh page and the root is rewritten as an internal node, so the
//! catalog entry for the index stays valid.
//!
//! Deletion removes entries without rebalancing (lazy deletion). Pages can
//! therefore become underfull but never incorrect; vacuuming rebuilds
//! indexes from their base table, which also reclaims the space.
//!
//! # Concurrency
//!
//! The tree takes no latches of its own beyond the buffer pool's per-page
//! latches (each read or write sees one consistent page). Writers must be
//! serialized externally — the engine holds the table's exclusive lock
//! across every `insert`/`delete` — but readers may run concurrently with
//! one writer: splits publish the right half (and its leaf link) before
//! shrinking the left, so a reader that descends through a stale parent
//! lands at or left of its target and the forward leaf chain still covers
//! it. The one page whose *node type* can change is the root (leaf →
//! internal on the first split); read paths detect that flip and restart
//! from the top instead of misreading the chain.
//!
//! [`Rid`]: crate::page::Rid

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PageType, NO_PAGE, PAGE_SIZE};

/// Order-preserving key encoding for signed integers.
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Inverse of [`encode_i64`].
pub fn decode_i64(b: &[u8]) -> i64 {
    (u64::from_be_bytes(b.try_into().expect("8-byte key")) ^ (1 << 63)) as i64
}

const NODE_HEADER: usize = 11; // type(1) + next/leftmost(8) + count(2)
/// Maximum key length so that at least 4 cells fit per page.
pub const MAX_KEY_SIZE: usize = (PAGE_SIZE - NODE_HEADER) / 4 - 18;

/// A separator pushed up out of a split: the first `(key, value)` of
/// the new right sibling, plus that sibling's page.
type SplitEntry = (Vec<u8>, u64, PageId);

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        next: PageId,
        /// Sorted by (key, val).
        cells: Vec<(Vec<u8>, u64)>,
    },
    Internal {
        leftmost: PageId,
        /// Sorted separators; child holds entries >= (key, val).
        cells: Vec<(Vec<u8>, u64, PageId)>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { cells, .. } => {
                NODE_HEADER + cells.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
            Node::Internal { cells, .. } => {
                NODE_HEADER
                    + cells
                        .iter()
                        .map(|(k, _, _)| 2 + k.len() + 16)
                        .sum::<usize>()
            }
        }
    }

    fn write(&self, data: &mut [u8]) {
        data.fill(0);
        match self {
            Node::Leaf { next, cells } => {
                data[0] = PageType::BTreeLeaf as u8;
                data[1..9].copy_from_slice(&next.to_le_bytes());
                data[9..11].copy_from_slice(&(cells.len() as u16).to_le_bytes());
                let mut p = NODE_HEADER;
                for (k, v) in cells {
                    data[p..p + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    p += 2;
                    data[p..p + k.len()].copy_from_slice(k);
                    p += k.len();
                    data[p..p + 8].copy_from_slice(&v.to_le_bytes());
                    p += 8;
                }
            }
            Node::Internal { leftmost, cells } => {
                data[0] = PageType::BTreeInternal as u8;
                data[1..9].copy_from_slice(&leftmost.to_le_bytes());
                data[9..11].copy_from_slice(&(cells.len() as u16).to_le_bytes());
                let mut p = NODE_HEADER;
                for (k, v, c) in cells {
                    data[p..p + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    p += 2;
                    data[p..p + k.len()].copy_from_slice(k);
                    p += k.len();
                    data[p..p + 8].copy_from_slice(&v.to_le_bytes());
                    p += 8;
                    data[p..p + 8].copy_from_slice(&c.to_le_bytes());
                    p += 8;
                }
            }
        }
    }

    fn read(data: &[u8]) -> Result<Node> {
        let ty = PageType::from_u8(data[0]);
        let link = u64::from_le_bytes(data[1..9].try_into().unwrap());
        let count = u16::from_le_bytes(data[9..11].try_into().unwrap()) as usize;
        let mut p = NODE_HEADER;
        match ty {
            PageType::BTreeLeaf => {
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = u16::from_le_bytes(data[p..p + 2].try_into().unwrap()) as usize;
                    p += 2;
                    let k = data[p..p + klen].to_vec();
                    p += klen;
                    let v = u64::from_le_bytes(data[p..p + 8].try_into().unwrap());
                    p += 8;
                    cells.push((k, v));
                }
                Ok(Node::Leaf { next: link, cells })
            }
            PageType::BTreeInternal => {
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = u16::from_le_bytes(data[p..p + 2].try_into().unwrap()) as usize;
                    p += 2;
                    let k = data[p..p + klen].to_vec();
                    p += klen;
                    let v = u64::from_le_bytes(data[p..p + 8].try_into().unwrap());
                    p += 8;
                    let c = u64::from_le_bytes(data[p..p + 8].try_into().unwrap());
                    p += 8;
                    cells.push((k, v, c));
                }
                Ok(Node::Internal {
                    leftmost: link,
                    cells,
                })
            }
            other => Err(StorageError::Corrupt(format!(
                "expected a B+tree page, found {other:?}"
            ))),
        }
    }
}

fn read_node(pool: &BufferPool, pid: PageId) -> Result<Node> {
    pool.with_page(pid, Node::read)?
}

fn write_node(pool: &BufferPool, pid: PageId, node: &Node) -> Result<()> {
    pool.with_page_mut(pid, |d| node.write(d))
}

fn composite_cmp(a_key: &[u8], a_val: u64, b_key: &[u8], b_val: u64) -> std::cmp::Ordering {
    a_key.cmp(b_key).then(a_val.cmp(&b_val))
}

/// A B+tree rooted at a fixed page.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: PageId,
}

impl BTree {
    /// Creates an empty tree, allocating its root leaf.
    pub fn create(pool: &BufferPool) -> Result<BTree> {
        let root = pool.allocate_page()?;
        write_node(
            pool,
            root,
            &Node::Leaf {
                next: NO_PAGE,
                cells: Vec::new(),
            },
        )?;
        Ok(BTree { root })
    }

    /// Opens an existing tree rooted at `root`.
    pub fn open(root: PageId) -> BTree {
        BTree { root }
    }

    /// The root page id (stable; recorded in the catalog).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Inserts an entry, returning whether the tree changed. Duplicate
    /// `(key, value)` pairs are stored once; re-inserting one returns
    /// `false`.
    pub fn insert(&self, pool: &BufferPool, key: &[u8], value: u64) -> Result<bool> {
        if key.len() > MAX_KEY_SIZE {
            return Err(StorageError::RecordTooLarge(key.len()));
        }
        let (inserted, split) = self.insert_rec(pool, self.root, key, value)?;
        if let Some((sep_key, sep_val, new_pid)) = split {
            // Root split: move the (already-halved) root content to a fresh
            // page and make the root an internal node over both halves.
            let moved = pool.allocate_page()?;
            let old_root = read_node(pool, self.root)?;
            write_node(pool, moved, &old_root)?;
            write_node(
                pool,
                self.root,
                &Node::Internal {
                    leftmost: moved,
                    cells: vec![(sep_key, sep_val, new_pid)],
                },
            )?;
        }
        Ok(inserted)
    }

    fn insert_rec(
        &self,
        pool: &BufferPool,
        pid: PageId,
        key: &[u8],
        value: u64,
    ) -> Result<(bool, Option<SplitEntry>)> {
        match read_node(pool, pid)? {
            Node::Leaf { next, mut cells } => {
                let pos = cells.partition_point(|(k, v)| composite_cmp(k, *v, key, value).is_lt());
                if cells.get(pos).is_some_and(|(k, v)| k == key && *v == value) {
                    return Ok((false, None)); // already present
                }
                cells.insert(pos, (key.to_vec(), value));
                let node = Node::Leaf { next, cells };
                if node.serialized_size() <= PAGE_SIZE {
                    write_node(pool, pid, &node)?;
                    return Ok((true, None));
                }
                // Split.
                let Node::Leaf { next, mut cells } = node else {
                    unreachable!()
                };
                let mid = cells.len() / 2;
                let right_cells = cells.split_off(mid);
                let right_pid = pool.allocate_page()?;
                let sep = (right_cells[0].0.clone(), right_cells[0].1);
                write_node(
                    pool,
                    right_pid,
                    &Node::Leaf {
                        next,
                        cells: right_cells,
                    },
                )?;
                write_node(
                    pool,
                    pid,
                    &Node::Leaf {
                        next: right_pid,
                        cells,
                    },
                )?;
                Ok((true, Some((sep.0, sep.1, right_pid))))
            }
            Node::Internal {
                leftmost,
                mut cells,
            } => {
                let idx =
                    cells.partition_point(|(k, v, _)| composite_cmp(k, *v, key, value).is_le());
                let child = if idx == 0 { leftmost } else { cells[idx - 1].2 };
                let (inserted, split) = self.insert_rec(pool, child, key, value)?;
                let Some((sk, sv, new_pid)) = split else {
                    return Ok((inserted, None));
                };
                let pos = cells.partition_point(|(k, v, _)| composite_cmp(k, *v, &sk, sv).is_lt());
                cells.insert(pos, (sk, sv, new_pid));
                let node = Node::Internal { leftmost, cells };
                if node.serialized_size() <= PAGE_SIZE {
                    write_node(pool, pid, &node)?;
                    return Ok((inserted, None));
                }
                let Node::Internal {
                    leftmost,
                    mut cells,
                } = node
                else {
                    unreachable!()
                };
                let mid = cells.len() / 2;
                let mut right_cells = cells.split_off(mid);
                let (pk, pv, pc) = right_cells.remove(0);
                let right_pid = pool.allocate_page()?;
                write_node(
                    pool,
                    right_pid,
                    &Node::Internal {
                        leftmost: pc,
                        cells: right_cells,
                    },
                )?;
                write_node(pool, pid, &Node::Internal { leftmost, cells })?;
                Ok((true, Some((pk, pv, right_pid))))
            }
        }
    }

    /// Finds the leaf that may contain `(key, value)`.
    fn find_leaf(&self, pool: &BufferPool, key: &[u8], value: u64) -> Result<PageId> {
        let mut pid = self.root;
        loop {
            match read_node(pool, pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal { leftmost, cells } => {
                    let idx =
                        cells.partition_point(|(k, v, _)| composite_cmp(k, *v, key, value).is_le());
                    pid = if idx == 0 { leftmost } else { cells[idx - 1].2 };
                }
            }
        }
    }

    /// Returns every value stored under exactly `key`.
    pub fn lookup(&self, pool: &BufferPool, key: &[u8]) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.range(pool, Some(key), Some(key), |_, v| out.push(v))?;
        Ok(out)
    }

    /// Visits entries with `lo <= key <= hi` (either bound may be `None`
    /// for unbounded) in composite order. The callback receives key and
    /// value. Safe to run concurrently with one writer (see the module
    /// docs); a root that splits underfoot restarts the descent.
    pub fn range(
        &self,
        pool: &BufferPool,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], u64),
    ) -> Result<()> {
        loop {
            let mut pid = match lo {
                Some(lo) => self.find_leaf(pool, lo, 0)?,
                None => {
                    // Descend leftmost.
                    let mut pid = self.root;
                    loop {
                        match read_node(pool, pid)? {
                            Node::Leaf { .. } => break pid,
                            Node::Internal { leftmost, .. } => pid = leftmost,
                        }
                    }
                }
            };
            let mut first = true;
            'chain: loop {
                let node = read_node(pool, pid)?;
                let Node::Leaf { next, cells } = node else {
                    if first && pid == self.root {
                        // The root was a leaf when the descent resolved it
                        // and an interleaved first split rewrote it as an
                        // internal node. Its content moved one level down;
                        // descend again.
                        break 'chain;
                    }
                    return Err(StorageError::Corrupt("leaf chain hit internal node".into()));
                };
                first = false;
                for (k, v) in &cells {
                    if lo.is_some_and(|lo| k.as_slice() < lo) {
                        continue;
                    }
                    if hi.is_some_and(|hi| k.as_slice() > hi) {
                        return Ok(());
                    }
                    f(k, *v);
                }
                if next == NO_PAGE {
                    return Ok(());
                }
                pid = next;
            }
        }
    }

    /// Removes the exact `(key, value)` entry. Returns whether it existed.
    pub fn delete(&self, pool: &BufferPool, key: &[u8], value: u64) -> Result<bool> {
        loop {
            let pid = self.find_leaf(pool, key, value)?;
            let Node::Leaf { next, mut cells } = read_node(pool, pid)? else {
                if pid == self.root {
                    continue; // root flipped leaf -> internal; re-descend
                }
                return Err(StorageError::Corrupt("find_leaf returned internal".into()));
            };
            let pos = cells.partition_point(|(k, v)| composite_cmp(k, *v, key, value).is_lt());
            return if cells.get(pos).is_some_and(|(k, v)| k == key && *v == value) {
                cells.remove(pos);
                write_node(pool, pid, &Node::Leaf { next, cells })?;
                Ok(true)
            } else {
                Ok(false)
            };
        }
    }

    /// Total number of entries (full scan; diagnostics).
    pub fn len(&self, pool: &BufferPool) -> Result<usize> {
        let mut n = 0;
        self.range(pool, None, None, |_, _| n += 1)?;
        Ok(n)
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self, pool: &BufferPool) -> Result<bool> {
        Ok(self.len(pool)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(name: &str) -> (std::path::PathBuf, BufferPool, BTree) {
        let dir = std::env::temp_dir().join(format!("mdm-bt-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        let bp = BufferPool::open(&dir, 64).unwrap();
        let bt = BTree::create(&bp).unwrap();
        (dir, bp, bt)
    }

    #[test]
    fn insert_lookup_small() {
        let (dir, bp, bt) = setup("small");
        bt.insert(&bp, b"beta", 2).unwrap();
        bt.insert(&bp, b"alpha", 1).unwrap();
        bt.insert(&bp, b"gamma", 3).unwrap();
        assert_eq!(bt.lookup(&bp, b"alpha").unwrap(), vec![1]);
        assert_eq!(bt.lookup(&bp, b"beta").unwrap(), vec![2]);
        assert_eq!(bt.lookup(&bp, b"delta").unwrap(), Vec::<u64>::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn many_inserts_with_splits() {
        let (dir, bp, bt) = setup("splits");
        let n: i64 = 5000;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = i * 2654435761 % n;
            bt.insert(&bp, &encode_i64(k), k as u64).unwrap();
        }
        assert_eq!(bt.len(&bp).unwrap(), n as usize);
        for k in [0i64, 1, n / 2, n - 1] {
            assert_eq!(bt.lookup(&bp, &encode_i64(k)).unwrap(), vec![k as u64]);
        }
        // Full scan is sorted.
        let mut prev: Option<Vec<u8>> = None;
        bt.range(&bp, None, None, |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k);
            }
            prev = Some(k.to_vec());
        })
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_keys() {
        let (dir, bp, bt) = setup("dups");
        for v in 0..200u64 {
            bt.insert(&bp, b"same", v).unwrap();
        }
        let mut vals = bt.lookup(&bp, b"same").unwrap();
        vals.sort_unstable();
        assert_eq!(vals, (0..200).collect::<Vec<_>>());
        // Re-inserting an existing pair is a no-op.
        bt.insert(&bp, b"same", 5).unwrap();
        assert_eq!(bt.lookup(&bp, b"same").unwrap().len(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_scan_bounds() {
        let (dir, bp, bt) = setup("range");
        for i in 0..100i64 {
            bt.insert(&bp, &encode_i64(i), i as u64).unwrap();
        }
        let mut got = Vec::new();
        bt.range(&bp, Some(&encode_i64(10)), Some(&encode_i64(20)), |k, _| {
            got.push(decode_i64(k))
        })
        .unwrap();
        assert_eq!(got, (10..=20).collect::<Vec<_>>());
        // Unbounded low.
        let mut got = Vec::new();
        bt.range(&bp, None, Some(&encode_i64(3)), |k, _| {
            got.push(decode_i64(k))
        })
        .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_integer_key_order() {
        let (dir, bp, bt) = setup("neg");
        for i in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX] {
            bt.insert(&bp, &encode_i64(i), 0).unwrap();
        }
        let mut got = Vec::new();
        bt.range(&bp, None, None, |k, _| got.push(decode_i64(k)))
            .unwrap();
        assert_eq!(got, vec![i64::MIN, -5, -1, 0, 1, 5, i64::MAX]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_exact_entries() {
        let (dir, bp, bt) = setup("del");
        for i in 0..1000i64 {
            bt.insert(&bp, &encode_i64(i), i as u64).unwrap();
        }
        for i in (0..1000i64).step_by(2) {
            assert!(bt.delete(&bp, &encode_i64(i), i as u64).unwrap());
        }
        assert!(!bt.delete(&bp, &encode_i64(0), 0).unwrap(), "already gone");
        assert_eq!(bt.len(&bp).unwrap(), 500);
        for i in 0..1000i64 {
            let hits = bt.lookup(&bp, &encode_i64(i)).unwrap();
            assert_eq!(hits.is_empty(), i % 2 == 0, "key {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn long_keys_split_correctly() {
        let (dir, bp, bt) = setup("long");
        for i in 0..300 {
            let key = format!("{:0>600}", i); // 600-byte keys force splits fast
            bt.insert(&bp, key.as_bytes(), i).unwrap();
        }
        assert_eq!(bt.len(&bp).unwrap(), 300);
        assert_eq!(
            bt.lookup(&bp, format!("{:0>600}", 123).as_bytes()).unwrap(),
            vec![123]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_key_rejected() {
        let (dir, bp, bt) = setup("big");
        let key = vec![0u8; MAX_KEY_SIZE + 1];
        assert!(bt.insert(&bp, &key, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_reports_whether_tree_changed() {
        let (dir, bp, bt) = setup("chg");
        assert!(bt.insert(&bp, b"k", 1).unwrap());
        assert!(!bt.insert(&bp, b"k", 1).unwrap(), "duplicate pair");
        assert!(bt.insert(&bp, b"k", 2).unwrap(), "same key, new value");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Deterministic xorshift64* generator — the property tests must
    /// replay byte-identically across runs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Keys drawn from a small space (forcing duplicates) with sizes that
    /// force splits at several fanouts.
    fn prop_key(rng: &mut Rng) -> Vec<u8> {
        let k = rng.below(60);
        let pad = match rng.below(4) {
            0 => 0,
            1 => 20,
            2 => 90,
            _ => 400, // low fanout: splits and multi-level trees come fast
        };
        format!("{k:03}{}", "p".repeat(pad as usize)).into_bytes()
    }

    fn oracle_scan(bt: &BTree, bp: &BufferPool) -> Vec<(Vec<u8>, u64)> {
        let mut got = Vec::new();
        bt.range(bp, None, None, |k, v| got.push((k.to_vec(), v)))
            .unwrap();
        got
    }

    /// Random interleavings of insert/delete/range/lookup checked against
    /// a `std::collections` oracle holding the same composite entries.
    #[test]
    fn property_matches_btreeset_oracle() {
        use std::collections::BTreeSet;
        for seed in [3u64, 0x9E37_79B9_7F4A_7C15, 0xDEAD_BEEF_CAFE_F00D] {
            let (dir, bp, bt) = setup(&format!("prop{seed:x}"));
            let mut rng = Rng(seed);
            let mut oracle: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();
            for step in 0..4000 {
                match rng.below(10) {
                    // Inserts dominate so the tree actually grows.
                    0..=5 => {
                        let k = prop_key(&mut rng);
                        let v = rng.below(8); // collide values too
                        let fresh = oracle.insert((k.clone(), v));
                        assert_eq!(bt.insert(&bp, &k, v).unwrap(), fresh, "step {step}");
                    }
                    6..=7 => {
                        // Delete something that exists (when possible) so
                        // leaves drain and empty out over the run.
                        let target = if !oracle.is_empty() && rng.below(4) != 0 {
                            let i = rng.below(oracle.len() as u64) as usize;
                            oracle.iter().nth(i).cloned().unwrap()
                        } else {
                            (prop_key(&mut rng), rng.below(8))
                        };
                        let existed = oracle.remove(&target);
                        assert_eq!(
                            bt.delete(&bp, &target.0, target.1).unwrap(),
                            existed,
                            "step {step}"
                        );
                    }
                    8 => {
                        let k = prop_key(&mut rng);
                        let mut want: Vec<u64> = oracle
                            .iter()
                            .filter(|(ok, _)| *ok == k)
                            .map(|(_, v)| *v)
                            .collect();
                        want.sort_unstable();
                        let mut got = bt.lookup(&bp, &k).unwrap();
                        got.sort_unstable();
                        assert_eq!(got, want, "step {step}");
                    }
                    _ => {
                        // Range probe with bounds at, between, and past the
                        // extremes (empty keys and oversized sentinels).
                        let mk_bound = |rng: &mut Rng| -> Option<Vec<u8>> {
                            match rng.below(5) {
                                0 => None,
                                1 => Some(Vec::new()),    // before everything
                                2 => Some(vec![0xFF; 8]), // after everything
                                _ => Some(prop_key(rng)),
                            }
                        };
                        let lo = mk_bound(&mut rng);
                        let hi = mk_bound(&mut rng);
                        let want: Vec<(Vec<u8>, u64)> = oracle
                            .iter()
                            .filter(|(k, _)| {
                                lo.as_ref().is_none_or(|lo| k >= lo)
                                    && hi.as_ref().is_none_or(|hi| k <= hi)
                            })
                            .cloned()
                            .collect();
                        let mut got = Vec::new();
                        bt.range(&bp, lo.as_deref(), hi.as_deref(), |k, v| {
                            got.push((k.to_vec(), v))
                        })
                        .unwrap();
                        assert_eq!(got, want, "step {step}");
                    }
                }
            }
            // Full-scan equivalence at the end of the run.
            let want: Vec<(Vec<u8>, u64)> = oracle.iter().cloned().collect();
            assert_eq!(oracle_scan(&bt, &bp), want);
            assert_eq!(bt.len(&bp).unwrap(), oracle.len());
            // Drain to empty through already-deleted leaves.
            for (k, v) in want {
                assert!(bt.delete(&bp, &k, v).unwrap());
            }
            assert!(bt.is_empty(&bp).unwrap());
            assert_eq!(oracle_scan(&bt, &bp), Vec::new());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// One writer (writers are serialized by contract — the engine holds
    /// the table's exclusive lock) racing seven readers doing lookups,
    /// ranges, and full `len` scans. Readers must never error (the root
    /// leaf -> internal flip restarts instead of corrupting) and must see
    /// every key at or below the writer's published high-water mark.
    #[test]
    fn concurrent_insert_lookup_stress_8_threads() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("mdm-bt-{}-conc", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let bp = Arc::new(BufferPool::open(&dir, 256).unwrap());
        let bt = BTree::create(&bp).unwrap();
        const N: u64 = 4000;
        let hwm = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            {
                let bp = Arc::clone(&bp);
                let hwm = Arc::clone(&hwm);
                s.spawn(move || {
                    for i in 0..N {
                        // Scrambled order keeps splits coming at every level.
                        let k = (i * 2654435761) % N;
                        bt.insert(&bp, &encode_i64(k as i64), k).unwrap();
                        // Publish only the contiguous prefix 0..=i of the
                        // scramble as "must be visible".
                        hwm.store(i + 1, Ordering::Release);
                    }
                });
            }
            for t in 0..7u64 {
                let bp = Arc::clone(&bp);
                let hwm = Arc::clone(&hwm);
                s.spawn(move || {
                    let mut rng = Rng(0xC0FFEE ^ (t + 1));
                    loop {
                        let seen = hwm.load(Ordering::Acquire);
                        match rng.below(3) {
                            0 if seen > 0 => {
                                // A key inserted before the fence must be found.
                                let i = rng.below(seen);
                                let k = (i * 2654435761) % N;
                                let hits = bt.lookup(&bp, &encode_i64(k as i64)).unwrap();
                                assert!(
                                    hits.contains(&k),
                                    "key {k} (inserted at step {i}) invisible at hwm {seen}"
                                );
                            }
                            1 => {
                                // Bounded range: sorted, within bounds.
                                let lo = rng.below(N) as i64;
                                let hi = (lo + rng.below(200) as i64).min(N as i64);
                                let mut prev: Option<Vec<u8>> = None;
                                bt.range(
                                    &bp,
                                    Some(&encode_i64(lo)),
                                    Some(&encode_i64(hi)),
                                    |k, _| {
                                        let d = decode_i64(k);
                                        assert!(d >= lo && d <= hi);
                                        if let Some(p) = &prev {
                                            assert!(p.as_slice() <= k);
                                        }
                                        prev = Some(k.to_vec());
                                    },
                                )
                                .unwrap();
                            }
                            _ => {
                                // Full scan: at least the fenced prefix exists.
                                let n = bt.len(&bp).unwrap();
                                assert!(
                                    n as u64 >= seen,
                                    "len {n} < published high-water mark {seen}"
                                );
                            }
                        }
                        if seen == N {
                            break;
                        }
                    }
                });
            }
        });
        assert_eq!(bt.len(&bp).unwrap(), N as usize);
        std::fs::remove_dir_all(&dir).ok();
    }
}
