//! Fixed-size pages and the slotted-page record layout.
//!
//! Every on-disk structure (heap files, B+tree nodes, the catalog chain) is
//! built from [`PAGE_SIZE`]-byte pages. Record-bearing pages use a slotted
//! layout: a slot directory grows downward from the header while record
//! bodies grow upward from the end of the page, so variable-length records
//! can be added, removed, and compacted without moving their slot ids.
//!
//! Page layout:
//!
//! ```text
//! offset  size  field
//! 0       1     page type (PageType)
//! 1       8     next page id (0 = none; page 0 is the catalog root and is
//!               never a successor, so 0 can serve as the null link)
//! 9       2     slot count
//! 11      2     free-space pointer (offset of the first byte used by
//!               record bodies; bodies occupy [free_ptr, PAGE_SIZE))
//! 13      4*n   slot directory: (offset: u16, len: u16) per slot;
//!               offset 0 marks an empty (tombstoned) slot
//! ```

/// Size in bytes of every page.
pub const PAGE_SIZE: usize = 8192;

/// Byte offset where the slot directory begins.
pub const HEADER_SIZE: usize = 13;

/// Size of one slot directory entry.
pub const SLOT_SIZE: usize = 4;

/// The largest record body a single page can hold (one slot, empty page).
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Identifies a page within the database file.
pub type PageId = u64;

/// The distinguished "no page" link value.
pub const NO_PAGE: PageId = 0;

/// Discriminates how a page's body is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Unallocated / freed page.
    Free = 0,
    /// Heap-file data page.
    Heap = 1,
    /// B+tree leaf page.
    BTreeLeaf = 2,
    /// B+tree internal page.
    BTreeInternal = 3,
    /// Catalog chain page.
    Catalog = 4,
}

impl PageType {
    /// Decodes a page-type byte, defaulting unknown values to `Free`.
    pub fn from_u8(b: u8) -> PageType {
        match b {
            1 => PageType::Heap,
            2 => PageType::BTreeLeaf,
            3 => PageType::BTreeInternal,
            4 => PageType::Catalog,
            _ => PageType::Free,
        }
    }
}

/// A record's location: page id plus slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Creates a record id.
    pub fn new(page: PageId, slot: u16) -> Rid {
        Rid { page, slot }
    }

    /// Packs the rid into a u64 for storage as a B+tree value
    /// (page in the high 48 bits, slot in the low 16).
    pub fn to_u64(self) -> u64 {
        (self.page << 16) | self.slot as u64
    }

    /// Unpacks a rid previously packed with [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Rid {
        Rid {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.page, self.slot)
    }
}

/// A zeroed page buffer, freshly formatted as the given type.
pub fn format_page(data: &mut [u8], ty: PageType) {
    data.fill(0);
    data[0] = ty as u8;
    set_next_page(data, NO_PAGE);
    set_slot_count(data, 0);
    set_free_ptr(data, PAGE_SIZE as u16);
}

/// Reads the page type byte.
pub fn page_type(data: &[u8]) -> PageType {
    PageType::from_u8(data[0])
}

/// Reads the next-page link.
pub fn next_page(data: &[u8]) -> PageId {
    u64::from_le_bytes(data[1..9].try_into().unwrap())
}

/// Writes the next-page link.
pub fn set_next_page(data: &mut [u8], next: PageId) {
    data[1..9].copy_from_slice(&next.to_le_bytes());
}

/// Reads the slot count.
pub fn slot_count(data: &[u8]) -> u16 {
    u16::from_le_bytes(data[9..11].try_into().unwrap())
}

fn set_slot_count(data: &mut [u8], n: u16) {
    data[9..11].copy_from_slice(&n.to_le_bytes());
}

fn free_ptr(data: &[u8]) -> u16 {
    // Clamped: a torn or garbage page can hold anything here, and every
    // consumer treats the value as an offset into the page.
    u16::from_le_bytes(data[11..13].try_into().unwrap()).min(PAGE_SIZE as u16)
}

fn set_free_ptr(data: &mut [u8], p: u16) {
    data[11..13].copy_from_slice(&p.to_le_bytes());
}

fn slot_at(data: &[u8], slot: u16) -> (u16, u16) {
    let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
    match data.get(base..base + 4) {
        Some(b) => (
            u16::from_le_bytes(b[0..2].try_into().unwrap()),
            u16::from_le_bytes(b[2..4].try_into().unwrap()),
        ),
        // A garbage slot count can claim more entries than fit in the
        // page; out-of-page entries read as tombstones.
        None => (0, 0),
    }
}

fn set_slot_at(data: &mut [u8], slot: u16, off: u16, len: u16) {
    let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
    if let Some(b) = data.get_mut(base..base + 4) {
        b[0..2].copy_from_slice(&off.to_le_bytes());
        b[2..4].copy_from_slice(&len.to_le_bytes());
    }
}

/// The byte range of an occupied slot's body, or `None` for tombstones
/// and slots whose recorded range does not lie within the page (torn or
/// garbage data — never trusted).
fn slot_range(data: &[u8], slot: u16) -> Option<std::ops::Range<usize>> {
    let (off, len) = slot_at(data, slot);
    if off == 0 {
        return None;
    }
    let start = off as usize;
    let end = start.checked_add(len as usize)?;
    (start >= HEADER_SIZE && end <= data.len()).then_some(start..end)
}

/// Bytes of free space available for a new record (including its slot entry,
/// assuming a new slot must be added).
pub fn free_space(data: &[u8]) -> usize {
    let dir_end = HEADER_SIZE + slot_count(data) as usize * SLOT_SIZE;
    let fp = free_ptr(data) as usize;
    fp.saturating_sub(dir_end)
}

/// True if a record of `len` bytes can be inserted (possibly after
/// compaction).
pub fn can_fit(data: &[u8], len: usize) -> bool {
    // A tombstoned slot can be reused without growing the directory.
    let reuse = (0..slot_count(data)).any(|s| slot_at(data, s).0 == 0);
    let need = len + if reuse { 0 } else { SLOT_SIZE };
    total_free(data) >= need
}

/// Total reclaimable free space: the gap plus fragmented dead space.
/// Saturating throughout — a garbage page reports zero free space
/// rather than wrapping.
fn total_free(data: &[u8]) -> usize {
    let live: usize = (0..slot_count(data))
        .filter_map(|s| slot_range(data, s).map(|r| r.len()))
        .sum();
    let dir_end = HEADER_SIZE + slot_count(data) as usize * SLOT_SIZE;
    PAGE_SIZE.saturating_sub(dir_end).saturating_sub(live)
}

/// Rewrites the record bodies contiguously at the end of the page,
/// reclaiming fragmentation. Slot ids are preserved. Slots whose
/// recorded ranges are invalid (torn/garbage pages) are tombstoned; if
/// overlapping garbage claims more bytes than a page holds, the excess
/// records are dropped rather than clobbering the header.
pub fn compact(data: &mut [u8]) {
    let n = slot_count(data);
    let mut records: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
    for s in 0..n {
        match slot_range(data, s) {
            Some(r) => records.push((s, data[r].to_vec())),
            None => {
                if slot_at(data, s).0 != 0 {
                    set_slot_at(data, s, 0, 0);
                }
            }
        }
    }
    let mut fp = PAGE_SIZE;
    for (s, body) in records {
        match fp.checked_sub(body.len()) {
            Some(nfp) if nfp >= HEADER_SIZE => {
                fp = nfp;
                data[fp..fp + body.len()].copy_from_slice(&body);
                set_slot_at(data, s, fp as u16, body.len() as u16);
            }
            _ => set_slot_at(data, s, 0, 0),
        }
    }
    set_free_ptr(data, fp as u16);
}

/// Inserts a record body, returning the slot index used. Returns `None` if
/// the page cannot hold the record even after compaction.
pub fn insert_record(data: &mut [u8], body: &[u8]) -> Option<u16> {
    if body.len() > MAX_RECORD_SIZE || !can_fit(data, body.len()) {
        return None;
    }
    let slot = match (0..slot_count(data)).find(|&s| slot_at(data, s).0 == 0) {
        Some(s) => s,
        None => {
            let n = slot_count(data);
            if HEADER_SIZE + (n as usize + 1) * SLOT_SIZE > PAGE_SIZE {
                return None; // garbage slot count: no room for a new entry
            }
            // Growing the directory must not clobber a record body that
            // sits just past it: compact first if the new entry would
            // cross the free pointer (can_fit guarantees room exists).
            if HEADER_SIZE + (n as usize + 1) * SLOT_SIZE > free_ptr(data) as usize {
                compact(data);
            }
            set_slot_count(data, n + 1);
            set_slot_at(data, n, 0, 0);
            n
        }
    };
    place_record(data, slot, body).then_some(slot)
}

/// Inserts a record body at a *specific* slot index, extending the slot
/// directory with tombstones as necessary. Used by recovery redo so that
/// record ids replay identically. Any existing record at the slot is
/// replaced. Returns `false` if the page cannot hold the record.
pub fn insert_record_at(data: &mut [u8], slot: u16, body: &[u8]) -> bool {
    if body.len() > MAX_RECORD_SIZE {
        return false;
    }
    while slot_count(data) <= slot {
        let n = slot_count(data);
        if HEADER_SIZE + (n as usize + 1) * SLOT_SIZE > PAGE_SIZE {
            return false;
        }
        if HEADER_SIZE + (n as usize + 1) * SLOT_SIZE > free_ptr(data) as usize {
            compact(data);
            if HEADER_SIZE + (n as usize + 1) * SLOT_SIZE > free_ptr(data) as usize {
                return false;
            }
        }
        set_slot_count(data, n + 1);
        set_slot_at(data, n, 0, 0);
    }
    // Clear any existing occupant, then verify space.
    let (off, _) = slot_at(data, slot);
    if off != 0 {
        set_slot_at(data, slot, 0, 0);
    }
    if total_free(data) < body.len() {
        return false;
    }
    place_record(data, slot, body)
}

/// Writes `body` into `slot`, compacting first if the contiguous gap is too
/// small. The slot must currently be a tombstone. Returns `false` when even
/// compaction cannot make room — possible only on garbage pages, since
/// callers verify `total_free` first.
fn place_record(data: &mut [u8], slot: u16, body: &[u8]) -> bool {
    let dir_end = HEADER_SIZE + slot_count(data) as usize * SLOT_SIZE;
    // The directory may have just grown past the free pointer when the
    // contiguous gap was smaller than one slot entry; saturate, and let
    // compaction re-establish free_ptr ≥ dir_end (guaranteed by the
    // caller's total-free check).
    let gap = (free_ptr(data) as usize).saturating_sub(dir_end);
    if gap < body.len() || (free_ptr(data) as usize) < dir_end {
        compact(data);
    }
    let dir_end = HEADER_SIZE + slot_count(data) as usize * SLOT_SIZE;
    let fp = match (free_ptr(data) as usize).checked_sub(body.len()) {
        Some(fp) if fp >= dir_end => fp,
        _ => return false,
    };
    data[fp..fp + body.len()].copy_from_slice(body);
    set_free_ptr(data, fp as u16);
    set_slot_at(data, slot, fp as u16, body.len() as u16);
    true
}

/// Reads the record at `slot`, if present. Slots whose recorded range
/// falls outside the page (torn/garbage data) read as absent.
pub fn get_record(data: &[u8], slot: u16) -> Option<&[u8]> {
    if slot >= slot_count(data) {
        return None;
    }
    slot_range(data, slot).map(|r| &data[r])
}

/// Removes the record at `slot`. Returns `true` if a record was present.
pub fn delete_record(data: &mut [u8], slot: u16) -> bool {
    if slot >= slot_count(data) {
        return false;
    }
    let (off, _) = slot_at(data, slot);
    if off == 0 {
        return false;
    }
    set_slot_at(data, slot, 0, 0);
    // Trim trailing tombstones so the directory can shrink.
    let mut n = slot_count(data);
    while n > 0 && slot_at(data, n - 1).0 == 0 {
        n -= 1;
    }
    set_slot_count(data, n);
    true
}

/// Replaces the record at `slot` with a new body. Returns `false` if the
/// slot is empty or the new body does not fit.
pub fn update_record(data: &mut [u8], slot: u16, body: &[u8]) -> bool {
    if slot >= slot_count(data) || body.len() > MAX_RECORD_SIZE {
        return false;
    }
    let Some(range) = slot_range(data, slot) else {
        return false; // tombstone, or a garbage range we must not touch
    };
    let (off, len) = slot_at(data, slot);
    if body.len() <= range.len() {
        // Shrink in place; the tail of the old body becomes dead space.
        data[range.start..range.start + body.len()].copy_from_slice(body);
        set_slot_at(data, slot, range.start as u16, body.len() as u16);
        return true;
    }
    // Grow: tombstone then re-place, checking reclaimable space.
    set_slot_at(data, slot, 0, 0);
    if total_free(data) < body.len() {
        set_slot_at(data, slot, off, len); // restore
        return false;
    }
    place_record(data, slot, body)
}

/// Iterates over the occupied slots of a page.
pub fn occupied_slots(data: &[u8]) -> impl Iterator<Item = u16> + '_ {
    (0..slot_count(data)).filter(move |&s| slot_at(data, s).0 != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut d = vec![0u8; PAGE_SIZE];
        format_page(&mut d, PageType::Heap);
        d
    }

    #[test]
    fn format_and_type() {
        let d = fresh();
        assert_eq!(page_type(&d), PageType::Heap);
        assert_eq!(slot_count(&d), 0);
        assert_eq!(next_page(&d), NO_PAGE);
        assert_eq!(free_space(&d), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut d = fresh();
        let s = insert_record(&mut d, b"hello").unwrap();
        assert_eq!(get_record(&d, s), Some(&b"hello"[..]));
    }

    #[test]
    fn insert_many_distinct_slots() {
        let mut d = fresh();
        let slots: Vec<u16> = (0..100)
            .map(|i| insert_record(&mut d, format!("record-{i}").as_bytes()).unwrap())
            .collect();
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(
                get_record(&d, *s).unwrap(),
                format!("record-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut d = fresh();
        let a = insert_record(&mut d, b"aaa").unwrap();
        let _b = insert_record(&mut d, b"bbb").unwrap();
        assert!(delete_record(&mut d, a));
        assert_eq!(get_record(&d, a), None);
        let c = insert_record(&mut d, b"ccc").unwrap();
        assert_eq!(c, a, "tombstoned slot should be reused");
    }

    #[test]
    fn delete_trailing_shrinks_directory() {
        let mut d = fresh();
        let a = insert_record(&mut d, b"aaa").unwrap();
        let b = insert_record(&mut d, b"bbb").unwrap();
        assert!(delete_record(&mut d, b));
        assert_eq!(slot_count(&d), 1);
        assert!(delete_record(&mut d, a));
        assert_eq!(slot_count(&d), 0);
    }

    #[test]
    fn update_shrink_and_grow() {
        let mut d = fresh();
        let s = insert_record(&mut d, b"a longer record body").unwrap();
        assert!(update_record(&mut d, s, b"tiny"));
        assert_eq!(get_record(&d, s), Some(&b"tiny"[..]));
        assert!(update_record(&mut d, s, b"now much longer than before!"));
        assert_eq!(
            get_record(&d, s),
            Some(&b"now much longer than before!"[..])
        );
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut d = fresh();
        let body = vec![7u8; 1000];
        let mut n = 0;
        while insert_record(&mut d, &body).is_some() {
            n += 1;
        }
        assert!(n >= 7, "should fit at least 7 kB of records, fit {n}");
        assert!(!can_fit(&d, 1000));
        assert!(can_fit(&d, 8)); // small records still fit
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut d = fresh();
        // Fill with 1000-byte records, delete every other, then insert a
        // large record that only fits after compaction.
        let body = vec![7u8; 1000];
        let mut slots = vec![];
        while let Some(s) = insert_record(&mut d, &body) {
            slots.push(s);
        }
        for s in slots.iter().step_by(2) {
            delete_record(&mut d, *s);
        }
        let big = vec![9u8; 2500];
        let s = insert_record(&mut d, &big).expect("fits after compaction");
        assert_eq!(get_record(&d, s).unwrap(), &big[..]);
        // Survivors intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(get_record(&d, *s), Some(&body[..]));
        }
    }

    #[test]
    fn insert_at_specific_slot() {
        let mut d = fresh();
        assert!(insert_record_at(&mut d, 5, b"redo"));
        assert_eq!(slot_count(&d), 6);
        assert_eq!(get_record(&d, 5), Some(&b"redo"[..]));
        for s in 0..5 {
            assert_eq!(get_record(&d, s), None);
        }
        // Idempotent re-apply.
        assert!(insert_record_at(&mut d, 5, b"redo"));
        assert_eq!(get_record(&d, 5), Some(&b"redo"[..]));
    }

    #[test]
    fn record_too_large_rejected() {
        let mut d = fresh();
        assert!(insert_record(&mut d, &vec![0u8; MAX_RECORD_SIZE + 1]).is_none());
        assert!(insert_record(&mut d, &vec![0u8; MAX_RECORD_SIZE]).is_some());
    }

    #[test]
    fn rid_packing_roundtrip() {
        let r = Rid::new(0x1234_5678_9ABC, 0xDEF0);
        assert_eq!(Rid::from_u64(r.to_u64()), r);
    }

    #[test]
    fn garbage_pages_never_panic() {
        // Torn writes can hand recovery a page of arbitrary bytes. Every
        // page operation must stay total over them: garbage reads as
        // absent records, garbage mutations are rejected — never a panic.
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..64 {
            let mut d = vec![0u8; PAGE_SIZE];
            match round % 4 {
                0 => d.chunks_mut(8).for_each(|c| {
                    let b = next().to_le_bytes();
                    c.copy_from_slice(&b[..c.len()]);
                }),
                1 => d.fill(0xFF),
                2 => {
                    // Valid page with its header bytes then scrambled.
                    format_page(&mut d, PageType::Heap);
                    insert_record(&mut d, b"victim record").unwrap();
                    let k = (next() % 13) as usize;
                    d[k] = next() as u8;
                }
                _ => {
                    // Valid page with a torn tail of zeroes.
                    format_page(&mut d, PageType::Heap);
                    for i in 0..20 {
                        insert_record(&mut d, format!("rec-{i}-{round}").as_bytes());
                    }
                    let cut = (next() % PAGE_SIZE as u64) as usize;
                    d[cut..].fill(0);
                }
            }
            let _ = page_type(&d);
            let _ = next_page(&d);
            let _ = free_space(&d);
            let _ = can_fit(&d, 100);
            for s in 0..slot_count(&d).min(512) {
                let _ = get_record(&d, s);
            }
            let _: Vec<u16> = occupied_slots(&d).take(512).collect();
            let mut m = d.clone();
            compact(&mut m);
            let mut m = d.clone();
            let _ = insert_record(&mut m, b"probe");
            let mut m = d.clone();
            let _ = insert_record_at(&mut m, 9, b"probe");
            let mut m = d.clone();
            let _ = update_record(&mut m, 0, b"probe");
            let mut m = d.clone();
            let _ = delete_record(&mut m, 0);
        }
    }
}
