//! The system catalog: names and roots of tables and indexes.
//!
//! The catalog is serialized into a chain of dedicated pages rooted at
//! page 0, rewritten wholesale on every DDL change (DDL is rare). A full
//! snapshot is also written to the WAL so recovery can restore the latest
//! catalog even if page 0 was not flushed.

use std::collections::BTreeMap;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PageType, NO_PAGE, PAGE_SIZE};
use crate::wal::TableId;

/// Metadata for one secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMeta {
    /// Root page of the index B+tree (stable).
    pub root: PageId,
}

/// Metadata for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Numeric id used in WAL records and lock requests.
    pub id: TableId,
    /// First page of the table's heap file (stable).
    pub first_page: PageId,
    /// Secondary indexes by name.
    pub indexes: BTreeMap<String, IndexMeta>,
}

/// The whole catalog.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    /// Tables by name.
    pub tables: BTreeMap<String, TableMeta>,
    /// Next table id to assign.
    pub next_table_id: TableId,
    /// Transaction-id floor: every id strictly below this was settled
    /// before the catalog was saved. Reopening restarts the allocator at
    /// (at least) this value so tuple stamps from earlier incarnations
    /// can never collide with a new transaction's id. Absent in catalogs
    /// written before MVCC; those decode as floor 0 and the WAL scan at
    /// open supplies the real bound.
    pub txn_floor: u64,
}

impl Catalog {
    /// Finds a table by its numeric id.
    pub fn table_by_id(&self, id: TableId) -> Option<(&String, &TableMeta)> {
        self.tables.iter().find(|(_, m)| m.id == id)
    }

    /// Serializes the catalog to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for (name, t) in &self.tables {
            put_str(&mut out, name);
            out.extend_from_slice(&t.id.to_le_bytes());
            out.extend_from_slice(&t.first_page.to_le_bytes());
            out.extend_from_slice(&(t.indexes.len() as u32).to_le_bytes());
            for (iname, idx) in &t.indexes {
                put_str(&mut out, iname);
                out.extend_from_slice(&idx.root.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.next_table_id.to_le_bytes());
        out.extend_from_slice(&self.txn_floor.to_le_bytes());
        out
    }

    /// Deserializes a catalog from bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Catalog> {
        struct C<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> C<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8]> {
                let b = self
                    .buf
                    .get(self.pos..self.pos + n)
                    .ok_or_else(|| StorageError::Corrupt("catalog truncated".into()))?;
                self.pos += n;
                Ok(b)
            }
            fn u32(&mut self) -> Result<u32> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn string(&mut self) -> Result<String> {
                let n = self.u32()? as usize;
                String::from_utf8(self.take(n)?.to_vec())
                    .map_err(|_| StorageError::Corrupt("catalog name not utf-8".into()))
            }
        }
        let mut c = C { buf, pos: 0 };
        let ntables = c.u32()?;
        let mut tables = BTreeMap::new();
        for _ in 0..ntables {
            let name = c.string()?;
            let id = c.u32()?;
            let first_page = c.u64()?;
            let nindexes = c.u32()?;
            let mut indexes = BTreeMap::new();
            for _ in 0..nindexes {
                let iname = c.string()?;
                let root = c.u64()?;
                indexes.insert(iname, IndexMeta { root });
            }
            tables.insert(
                name,
                TableMeta {
                    id,
                    first_page,
                    indexes,
                },
            );
        }
        let next_table_id = c.u32()?;
        // Older catalogs end here; the floor field is read only when the
        // encoder wrote one (tolerant decode keeps mixed-version
        // replication pairs working).
        let txn_floor = if c.pos + 8 <= c.buf.len() {
            c.u64()?
        } else {
            0
        };
        Ok(Catalog {
            tables,
            next_table_id,
            txn_floor,
        })
    }
}

const CHUNK_CAPACITY: usize = PAGE_SIZE - 11; // type(1) + next(8) + len(2)

/// Writes the catalog across the page-0 chain, allocating extra chain pages
/// as needed (existing chain pages are reused; a shrinking catalog leaves a
/// zero-length tail which `load` ignores).
pub fn save(pool: &BufferPool, catalog: &Catalog) -> Result<()> {
    let bytes = catalog.to_bytes();
    let mut chunks: Vec<&[u8]> = bytes.chunks(CHUNK_CAPACITY).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let mut pid: PageId = 0;
    for (i, chunk) in chunks.iter().enumerate() {
        let is_last = i + 1 == chunks.len();
        let existing_next =
            pool.with_page(pid, |d| u64::from_le_bytes(d[1..9].try_into().unwrap()))?;
        let next = if is_last {
            NO_PAGE
        } else if existing_next != NO_PAGE {
            existing_next
        } else {
            let p = pool.allocate_page()?;
            pool.with_page_mut(p, |d| d[0] = PageType::Catalog as u8)?;
            p
        };
        pool.with_page_mut(pid, |d| {
            d[0] = PageType::Catalog as u8;
            d[1..9].copy_from_slice(&next.to_le_bytes());
            d[9..11].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            d[11..11 + chunk.len()].copy_from_slice(chunk);
        })?;
        pid = next;
        if is_last {
            break;
        }
    }
    Ok(())
}

/// Reads the catalog from the page-0 chain. A brand-new database (all-zero
/// page 0) yields the default empty catalog.
pub fn load(pool: &BufferPool) -> Result<Catalog> {
    let mut bytes = Vec::new();
    let mut pid: PageId = 0;
    let mut hops: u64 = 0;
    loop {
        // A torn chain page can hold a stale `next` that cycles; the
        // chain can never be longer than the file.
        hops += 1;
        if hops > pool.num_pages() {
            return Err(crate::error::StorageError::Corrupt(
                "catalog page chain cycles".into(),
            ));
        }
        let (next, chunk) = pool.with_page(pid, |d| {
            let next = u64::from_le_bytes(d[1..9].try_into().unwrap());
            let len = u16::from_le_bytes(d[9..11].try_into().unwrap()) as usize;
            (next, d[11..11 + len.min(CHUNK_CAPACITY)].to_vec())
        })?;
        bytes.extend_from_slice(&chunk);
        if next == NO_PAGE {
            break;
        }
        pid = next;
    }
    if bytes.is_empty() {
        return Ok(Catalog::default());
    }
    Catalog::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::default();
        for i in 0..5u32 {
            let mut indexes = BTreeMap::new();
            indexes.insert(
                format!("idx_{i}"),
                IndexMeta {
                    root: 100 + i as u64,
                },
            );
            c.tables.insert(
                format!("table_{i}"),
                TableMeta {
                    id: i,
                    first_page: 10 + i as u64,
                    indexes,
                },
            );
        }
        c.next_table_id = 5;
        c
    }

    #[test]
    fn bytes_roundtrip() {
        let mut c = sample();
        c.txn_floor = 12345;
        assert_eq!(Catalog::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn legacy_catalog_without_floor_decodes() {
        let c = sample();
        let mut bytes = c.to_bytes();
        bytes.truncate(bytes.len() - 8); // strip the floor field
        let decoded = Catalog::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.tables, c.tables);
        assert_eq!(decoded.txn_floor, 0);
    }

    #[test]
    fn empty_roundtrip() {
        let c = Catalog::default();
        assert_eq!(Catalog::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn save_load_via_pages() {
        let dir = std::env::temp_dir().join(format!("mdm-cat-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let bp = BufferPool::open(&dir, 8).unwrap();
        let c = sample();
        save(&bp, &c).unwrap();
        assert_eq!(load(&bp).unwrap(), c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_database_loads_empty() {
        let dir = std::env::temp_dir().join(format!("mdm-cat-fresh-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let bp = BufferPool::open(&dir, 8).unwrap();
        assert_eq!(load(&bp).unwrap(), Catalog::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_catalog_spans_pages() {
        let dir = std::env::temp_dir().join(format!("mdm-cat-big-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let bp = BufferPool::open(&dir, 8).unwrap();
        let mut c = Catalog::default();
        for i in 0..800u32 {
            c.tables.insert(
                format!("a_table_with_a_rather_long_name_{i:05}"),
                TableMeta {
                    id: i,
                    first_page: i as u64,
                    indexes: BTreeMap::new(),
                },
            );
        }
        c.next_table_id = 800;
        save(&bp, &c).unwrap();
        assert_eq!(load(&bp).unwrap(), c);
        // Shrink back down; the tail chunk must not corrupt the reload.
        let small = sample();
        save(&bp, &small).unwrap();
        assert_eq!(load(&bp).unwrap(), small);
        std::fs::remove_dir_all(&dir).ok();
    }
}
