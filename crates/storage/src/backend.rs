//! The storage backend abstraction: positioned byte I/O behind a trait.
//!
//! [`DiskManager`](crate::disk::DiskManager) and [`Wal`](crate::wal::Wal)
//! used to talk to [`std::fs::File`] directly. Extracting the five
//! operations they actually use (`pread`/`pwrite`/`fsync`/`len`/
//! `truncate`) into [`StorageBackend`] lets a test harness interpose on
//! every I/O the engine performs — the fault-injection layer
//! ([`crate::fault`]) is one such interposition. Production code pays a
//! dynamic dispatch per I/O, which is noise next to the syscall it wraps.
//!
//! [`Vfs`] is the factory half: the engine asks it to open each file
//! (`data.db`, `wal.log`) by path, so a single `Vfs` implementation can
//! hand out coordinated backends (e.g. fault injection with one shared
//! operation counter across both files).

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

/// Positioned byte I/O against one file. All methods take `&self`:
/// implementations must be usable from many threads at once (positioned
/// reads and writes do not share a cursor).
#[allow(clippy::len_without_is_empty)] // `len` is a file size, not a collection
pub trait StorageBackend: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset` (pread).
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;

    /// Writes all of `buf` at `offset` (pwrite), extending the file as
    /// needed.
    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<()>;

    /// Flushes written data to stable storage (fdatasync).
    fn sync(&self) -> io::Result<()>;

    /// Current length of the file in bytes.
    fn len(&self) -> io::Result<u64>;

    /// Truncates (or extends, zero-filled) the file to `len` bytes.
    fn truncate(&self, len: u64) -> io::Result<()>;
}

/// Opens [`StorageBackend`]s by path; the engine asks for one per
/// database file. Implementations decide what actually backs the bytes.
pub trait Vfs: Send + Sync {
    /// Opens (creating if absent) the file at `path` for read/write.
    fn open(&self, path: &Path) -> io::Result<Arc<dyn StorageBackend>>;
}

/// The production backend: a plain [`File`] using `pread`/`pwrite`.
pub struct FileBackend {
    file: File,
}

impl FileBackend {
    /// Opens (creating if absent) `path` read/write, creating parent
    /// directories as needed.
    pub fn open(path: &Path) -> io::Result<FileBackend> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileBackend { file })
    }
}

impl StorageBackend for FileBackend {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        self.file.read_exact_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        self.file.write_all_at(buf, offset)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// The production [`Vfs`]: every path opens as a [`FileBackend`].
pub struct FileVfs;

impl Vfs for FileVfs {
    fn open(&self, path: &Path) -> io::Result<Arc<dyn StorageBackend>> {
        Ok(Arc::new(FileBackend::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-backend-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d.join("f.bin")
    }

    #[test]
    fn write_read_len_roundtrip() {
        let path = tmpfile("rt");
        let b = FileVfs.open(&path).unwrap();
        b.write_at(b"hello", 3).unwrap();
        assert_eq!(b.len().unwrap(), 8);
        let mut buf = [0u8; 5];
        b.read_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"hello");
        b.sync().unwrap();
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn truncate_shrinks() {
        let path = tmpfile("trunc");
        let b = FileVfs.open(&path).unwrap();
        b.write_at(&[7u8; 100], 0).unwrap();
        b.truncate(10).unwrap();
        assert_eq!(b.len().unwrap(), 10);
        let mut buf = [0u8; 4];
        assert!(b.read_at(&mut buf, 8).is_err(), "read past new end fails");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
