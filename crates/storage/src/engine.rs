//! The storage engine facade: transactions over tables and indexes.
//!
//! [`StorageEngine`] combines the buffer pool, heap files, B+tree indexes,
//! the write-ahead log, the lock manager, and the catalog into a single
//! transactional record store. Concurrency control is table-level strict
//! two-phase locking with wait-die deadlock avoidance; durability is
//! undo/redo logical logging with checkpoint truncation.
//!
//! The engine's internal state sits behind one mutex (coarse latching);
//! transaction-level parallelism is still real because locks are held
//! *across* engine calls while the latch is held only *within* one.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::catalog::{self, Catalog, IndexMeta, TableMeta};
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::lock::{LockManager, LockMode};
use crate::page::Rid;
use crate::recovery::{self, RecoveryOutcome};
use crate::wal::{TableId, TxnId, Wal, WalRecord};

/// Default buffer pool capacity in pages (16 MiB).
pub const DEFAULT_POOL_PAGES: usize = 2048;

/// A transaction handle. Obtain via [`StorageEngine::begin`]; finish with
/// [`StorageEngine::commit`] or [`StorageEngine::abort`]. Dropping an
/// unfinished transaction aborts it.
pub struct Txn {
    id: TxnId,
    undo: Vec<UndoOp>,
    finished: bool,
}

impl Txn {
    /// The transaction's id (its wait-die timestamp).
    pub fn id(&self) -> TxnId {
        self.id
    }
}

enum UndoOp {
    Insert { rid: Rid },
    Update { rid: Rid, old: Vec<u8> },
    Delete { rid: Rid, old: Vec<u8> },
    IndexInsert { table: TableId, index: String, key: Vec<u8>, rid: Rid },
    IndexDelete { table: TableId, index: String, key: Vec<u8>, rid: Rid },
}

struct State {
    pool: BufferPool,
    wal: Wal,
    catalog: Catalog,
    heaps: HashMap<TableId, HeapFile>,
    active: HashSet<TxnId>,
    indexes_need_rebuild: bool,
    recovery: RecoveryOutcome,
}

impl State {
    fn heap(&mut self, table: TableId) -> Result<&mut HeapFile> {
        if !self.heaps.contains_key(&table) {
            let (_, meta) = self
                .catalog
                .table_by_id(table)
                .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
            let hf = HeapFile::open(&mut self.pool, meta.first_page)?;
            self.heaps.insert(table, hf);
        }
        Ok(self.heaps.get_mut(&table).expect("just inserted"))
    }

    fn index_tree(&self, table: TableId, index: &str) -> Result<BTree> {
        let (_, meta) = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        let idx = meta
            .indexes
            .get(index)
            .ok_or_else(|| StorageError::NoSuchIndex(index.to_string()))?;
        Ok(BTree::open(idx.root))
    }

    fn snapshot_catalog(&mut self) -> Result<()> {
        catalog::save(&mut self.pool, &self.catalog)?;
        self.wal.append(&WalRecord::CatalogSnapshot {
            bytes: self.catalog.to_bytes(),
        })?;
        self.wal.sync()?;
        Ok(())
    }
}

struct Inner {
    state: Mutex<State>,
    locks: LockManager,
    next_txn: AtomicU64,
    dir: PathBuf,
}

/// The transactional storage engine. Cloneable handle; clones share state.
#[derive(Clone)]
pub struct StorageEngine {
    inner: Arc<Inner>,
}

impl StorageEngine {
    /// Opens (or creates) a database in `dir`, running crash recovery if
    /// the write-ahead log is non-empty.
    pub fn open(dir: &Path) -> Result<StorageEngine> {
        Self::open_with_capacity(dir, DEFAULT_POOL_PAGES)
    }

    /// As [`StorageEngine::open`] with an explicit buffer-pool capacity.
    pub fn open_with_capacity(dir: &Path, pool_pages: usize) -> Result<StorageEngine> {
        let mut pool = BufferPool::open(dir, pool_pages)?;
        let (records, _) = Wal::replay(dir)?;
        let disk_catalog = catalog::load(&mut pool)?;
        let (outcome, recovered) = recovery::recover(&mut pool, &records, disk_catalog)?;
        let mut wal = Wal::open(dir)?;
        let needs_rebuild = outcome.indexes_reset;
        if !records.is_empty() {
            // Make the recovered state the new base and empty the log.
            catalog::save(&mut pool, &recovered)?;
            pool.flush_all()?;
            wal.truncate()?;
        }
        Ok(StorageEngine {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    pool,
                    wal,
                    catalog: recovered,
                    heaps: HashMap::new(),
                    active: HashSet::new(),
                    indexes_need_rebuild: needs_rebuild,
                    recovery: outcome,
                }),
                locks: LockManager::new(),
                next_txn: AtomicU64::new(1),
                dir: dir.to_path_buf(),
            }),
        })
    }

    /// The outcome of the recovery pass run at [`StorageEngine::open`].
    pub fn last_recovery(&self) -> RecoveryOutcome {
        self.inner.state.lock().recovery.clone()
    }

    /// Directory holding the database files.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// True if secondary indexes were reset by recovery and must be
    /// rebuilt by the layer that owns key extraction.
    pub fn indexes_need_rebuild(&self) -> bool {
        self.inner.state.lock().indexes_need_rebuild
    }

    /// Marks indexes as rebuilt (call after repopulating them).
    pub fn mark_indexes_rebuilt(&self) {
        self.inner.state.lock().indexes_need_rebuild = false;
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts a transaction.
    pub fn begin(&self) -> Result<Txn> {
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        st.active.insert(id);
        st.wal.append(&WalRecord::Begin { txn: id })?;
        Ok(Txn {
            id,
            undo: Vec::new(),
            finished: false,
        })
    }

    /// Commits: syncs the log, releases locks.
    pub fn commit(&self, mut txn: Txn) -> Result<()> {
        {
            let mut st = self.inner.state.lock();
            if !st.active.remove(&txn.id) {
                return Err(StorageError::TxnNotActive(txn.id));
            }
            st.wal.append(&WalRecord::Commit { txn: txn.id })?;
            st.wal.sync()?;
        }
        txn.finished = true;
        self.inner.locks.release_all(txn.id);
        Ok(())
    }

    /// Aborts: rolls back the transaction's effects, releases locks.
    pub fn abort(&self, mut txn: Txn) -> Result<()> {
        self.rollback(&mut txn)?;
        txn.finished = true;
        self.inner.locks.release_all(txn.id);
        Ok(())
    }

    fn rollback(&self, txn: &mut Txn) -> Result<()> {
        let mut st = self.inner.state.lock();
        if !st.active.remove(&txn.id) {
            return Err(StorageError::TxnNotActive(txn.id));
        }
        for op in txn.undo.drain(..).rev() {
            match op {
                UndoOp::Insert { rid, .. } => {
                    HeapFile::apply_at(&mut st.pool, rid, None)?;
                }
                UndoOp::Update { rid, ref old, .. } => {
                    HeapFile::apply_at(&mut st.pool, rid, Some(old))?;
                }
                UndoOp::Delete { rid, ref old, .. } => {
                    HeapFile::apply_at(&mut st.pool, rid, Some(old))?;
                }
                UndoOp::IndexInsert { table, ref index, ref key, rid } => {
                    let bt = st.index_tree(table, index)?;
                    bt.delete(&mut st.pool, key, rid.to_u64())?;
                }
                UndoOp::IndexDelete { table, ref index, ref key, rid } => {
                    let bt = st.index_tree(table, index)?;
                    bt.insert(&mut st.pool, key, rid.to_u64())?;
                }
            }
        }
        st.wal.append(&WalRecord::Abort { txn: txn.id })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Creates a table, returning its id. Auto-committed structurally.
    pub fn create_table(&self, name: &str) -> Result<TableId> {
        let mut st = self.inner.state.lock();
        if st.catalog.tables.contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        let hf = HeapFile::create(&mut st.pool)?;
        let id = st.catalog.next_table_id.max(1); // id 0 is reserved
        st.catalog.next_table_id = id + 1;
        st.catalog.tables.insert(
            name.to_string(),
            TableMeta {
                id,
                first_page: hf.first_page(),
                indexes: BTreeMap::new(),
            },
        );
        st.heaps.insert(id, hf);
        st.snapshot_catalog()?;
        Ok(id)
    }

    /// Drops a table and its indexes. Pages are leaked (no free list);
    /// reclaim by checkpoint-copying into a fresh database.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut st = self.inner.state.lock();
        let meta = st
            .catalog
            .tables
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))?;
        st.heaps.remove(&meta.id);
        st.snapshot_catalog()?;
        Ok(())
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        let st = self.inner.state.lock();
        st.catalog
            .tables
            .get(name)
            .map(|m| m.id)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// All table names in the catalog.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.state.lock().catalog.tables.keys().cloned().collect()
    }

    /// Creates a secondary index on a table. Auto-committed structurally.
    pub fn create_index(&self, table: TableId, index: &str) -> Result<()> {
        let mut st = self.inner.state.lock();
        let bt = BTree::create(&mut st.pool)?;
        let (_, meta) = st
            .catalog
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        if meta.indexes.contains_key(index) {
            return Err(StorageError::IndexExists(index.to_string()));
        }
        let name = st
            .catalog
            .table_by_id(table)
            .map(|(n, _)| n.clone())
            .expect("checked above");
        st.catalog
            .tables
            .get_mut(&name)
            .expect("just found")
            .indexes
            .insert(index.to_string(), IndexMeta { root: bt.root() });
        st.snapshot_catalog()?;
        Ok(())
    }

    /// Names of the indexes on a table.
    pub fn index_names(&self, table: TableId) -> Result<Vec<String>> {
        let st = self.inner.state.lock();
        let (_, meta) = st
            .catalog
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        Ok(meta.indexes.keys().cloned().collect())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Inserts a record, returning its rid.
    pub fn insert(&self, txn: &mut Txn, table: TableId, body: &[u8]) -> Result<Rid> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let mut st = self.inner.state.lock();
        let mut heap = st.heap(table)?.clone();
        let (rid, link) = heap.insert(&mut st.pool, body)?;
        st.heaps.insert(table, heap);
        if let Some((from_page, new_page)) = link {
            st.wal.append(&WalRecord::LinkPage {
                table,
                from_page,
                new_page,
            })?;
        }
        st.wal.append(&WalRecord::Insert {
            txn: txn.id,
            table,
            rid,
            body: body.to_vec(),
        })?;
        txn.undo.push(UndoOp::Insert { rid });
        Ok(rid)
    }

    /// Reads a record (shared lock).
    pub fn get(&self, txn: &mut Txn, table: TableId, rid: Rid) -> Result<Option<Vec<u8>>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let mut st = self.inner.state.lock();
        HeapFile::get(&mut st.pool, rid)
    }

    /// Updates a record in place. If the new body no longer fits in the
    /// record's page, the update is performed as delete+reinsert and the
    /// *new* rid is returned; otherwise the original rid is returned.
    pub fn update(&self, txn: &mut Txn, table: TableId, rid: Rid, body: &[u8]) -> Result<Rid> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let mut st = self.inner.state.lock();
        let old = HeapFile::get(&mut st.pool, rid)?.ok_or(StorageError::RecordNotFound {
            page: rid.page,
            slot: rid.slot,
        })?;
        if HeapFile::update(&mut st.pool, rid, body)? {
            st.wal.append(&WalRecord::Update {
                txn: txn.id,
                table,
                rid,
                old: old.clone(),
                new: body.to_vec(),
            })?;
            txn.undo.push(UndoOp::Update { rid, old });
            return Ok(rid);
        }
        // Did not fit: move the record.
        HeapFile::delete(&mut st.pool, rid)?;
        st.wal.append(&WalRecord::Delete {
            txn: txn.id,
            table,
            rid,
            old: old.clone(),
        })?;
        txn.undo.push(UndoOp::Delete {
            rid,
            old: old.clone(),
        });
        let mut heap = st.heap(table)?.clone();
        let (new_rid, link) = heap.insert(&mut st.pool, body)?;
        st.heaps.insert(table, heap);
        if let Some((from_page, new_page)) = link {
            st.wal.append(&WalRecord::LinkPage {
                table,
                from_page,
                new_page,
            })?;
        }
        st.wal.append(&WalRecord::Insert {
            txn: txn.id,
            table,
            rid: new_rid,
            body: body.to_vec(),
        })?;
        txn.undo.push(UndoOp::Insert { rid: new_rid });
        Ok(new_rid)
    }

    /// Deletes a record, returning its old body.
    pub fn delete(&self, txn: &mut Txn, table: TableId, rid: Rid) -> Result<Vec<u8>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let mut st = self.inner.state.lock();
        let old = HeapFile::delete(&mut st.pool, rid)?;
        st.wal.append(&WalRecord::Delete {
            txn: txn.id,
            table,
            rid,
            old: old.clone(),
        })?;
        txn.undo.push(UndoOp::Delete {
            rid,
            old: old.clone(),
        });
        Ok(old)
    }

    /// Scans every record of a table (shared lock).
    pub fn scan(&self, txn: &mut Txn, table: TableId) -> Result<Vec<(Rid, Vec<u8>)>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let mut st = self.inner.state.lock();
        let heap = st.heap(table)?.clone();
        heap.scan_all(&mut st.pool)
    }

    // ------------------------------------------------------------------
    // Index DML
    // ------------------------------------------------------------------

    /// Adds an index entry.
    pub fn index_insert(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        key: &[u8],
        rid: Rid,
    ) -> Result<()> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let mut st = self.inner.state.lock();
        let bt = st.index_tree(table, index)?;
        bt.insert(&mut st.pool, key, rid.to_u64())?;
        txn.undo.push(UndoOp::IndexInsert {
            table,
            index: index.to_string(),
            key: key.to_vec(),
            rid,
        });
        Ok(())
    }

    /// Removes an index entry.
    pub fn index_delete(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        key: &[u8],
        rid: Rid,
    ) -> Result<()> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let mut st = self.inner.state.lock();
        let bt = st.index_tree(table, index)?;
        bt.delete(&mut st.pool, key, rid.to_u64())?;
        txn.undo.push(UndoOp::IndexDelete {
            table,
            index: index.to_string(),
            key: key.to_vec(),
            rid,
        });
        Ok(())
    }

    /// Looks up the rids stored under exactly `key`.
    pub fn index_lookup(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        key: &[u8],
    ) -> Result<Vec<Rid>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let mut st = self.inner.state.lock();
        let bt = st.index_tree(table, index)?;
        Ok(bt
            .lookup(&mut st.pool, key)?
            .into_iter()
            .map(Rid::from_u64)
            .collect())
    }

    /// Range scan over an index; bounds are inclusive, `None` = unbounded.
    pub fn index_range(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Rid)>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let mut st = self.inner.state.lock();
        let bt = st.index_tree(table, index)?;
        let mut out = Vec::new();
        bt.range(&mut st.pool, lo, hi, |k, v| {
            out.push((k.to_vec(), Rid::from_u64(v)));
        })?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Copies the live contents of this database into a fresh database at
    /// `dir`, reclaiming the space of dropped tables and dead records
    /// (heap pages and index trees are never shrunk in place). Record ids
    /// change; index entries are remapped through the copy. Requires no
    /// active transactions. Returns the new engine.
    pub fn vacuum_into(&self, dir: &Path) -> Result<StorageEngine> {
        if !self.inner.state.lock().active.is_empty() {
            return Err(StorageError::Corrupt(
                "vacuum requires no active transactions".into(),
            ));
        }
        let new = StorageEngine::open(dir)?;
        for name in self.table_names() {
            let old_table = self.table_id(&name)?;
            let new_table = new.create_table(&name)?;
            let mut rid_map: HashMap<Rid, Rid> = HashMap::new();
            let mut old_txn = self.begin()?;
            let mut new_txn = new.begin()?;
            for (old_rid, body) in self.scan(&mut old_txn, old_table)? {
                let new_rid = new.insert(&mut new_txn, new_table, &body)?;
                rid_map.insert(old_rid, new_rid);
            }
            for index in self.index_names(old_table)? {
                new.create_index(new_table, &index)?;
                for (key, old_rid) in
                    self.index_range(&mut old_txn, old_table, &index, None, None)?
                {
                    // Entries pointing at dead rids are dropped — vacuum
                    // also repairs index/table drift.
                    if let Some(&new_rid) = rid_map.get(&old_rid) {
                        new.index_insert(&mut new_txn, new_table, &index, &key, new_rid)?;
                    }
                }
            }
            new.commit(new_txn)?;
            self.commit(old_txn)?;
        }
        new.checkpoint()?;
        Ok(new)
    }

    /// Flushes all state and truncates the write-ahead log. Fails if any
    /// transaction is active (their undo information lives in the log).
    pub fn checkpoint(&self) -> Result<()> {
        let mut st = self.inner.state.lock();
        if !st.active.is_empty() {
            return Err(StorageError::Corrupt(
                "checkpoint requires no active transactions".into(),
            ));
        }
        st.wal.sync()?;
        let catalog = st.catalog.clone();
        catalog::save(&mut st.pool, &catalog)?;
        st.pool.flush_all()?;
        st.wal.truncate()?;
        Ok(())
    }

    /// Buffer-pool statistics: (hits, misses, evictions).
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        self.inner.state.lock().pool.stats()
    }

    /// Number of pages in the database file.
    pub fn num_pages(&self) -> u64 {
        self.inner.state.lock().pool.num_pages()
    }

    fn check_active(&self, txn: &Txn) -> Result<()> {
        if txn.finished || !self.inner.state.lock().active.contains(&txn.id) {
            return Err(StorageError::TxnNotActive(txn.id));
        }
        Ok(())
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Best-effort clean shutdown: if no transaction is in flight,
        // checkpoint so the next open skips recovery and keeps indexes.
        let st = self.state.get_mut();
        if st.active.is_empty() {
            let _ = st.wal.sync();
            let catalog = st.catalog.clone();
            let _ = catalog::save(&mut st.pool, &catalog);
            if st.pool.flush_all().is_ok() {
                let _ = st.wal.truncate();
            }
        } else {
            // Leave the log for recovery to roll the stragglers back.
            let _ = st.wal.sync();
        }
    }
}
