//! The storage engine facade: transactions over tables and indexes.
//!
//! [`StorageEngine`] combines the buffer pool, heap files, B+tree indexes,
//! the write-ahead log, the lock manager, and the catalog into a single
//! transactional record store. Concurrency control is table-level strict
//! two-phase locking with wait-die deadlock avoidance *among writers*;
//! read-only transactions run as [`ReadSnapshot`]s against MVCC tuple
//! versions (see [`crate::mvcc`]) without taking locks and without ever
//! aborting. Durability is undo/redo logical logging with checkpoint
//! truncation.
//!
//! # Latching
//!
//! The engine used to serialize every call through one `Mutex<State>`.
//! It now latches each component separately so independent clients
//! proceed in parallel:
//!
//! - **catalog** — an `RwLock`: lookups share, DDL excludes.
//! - **heap directory** — an `RwLock<HashMap>` of per-table handles;
//!   each [`HeapFile`] (its first/last-page cache) sits behind its own
//!   `Mutex`, so writers to *different* tables never contend.
//! - **buffer pool** — internally sharded by page id (see
//!   [`crate::buffer`]); the engine takes no latch at all around page
//!   access.
//! - **WAL** — one `Mutex` guards appends; commit durability uses
//!   *group commit* (below) so the mutex is never held across an fsync.
//! - **active-transaction set** — its own `Mutex`.
//!
//! The latch acquisition order is fixed to keep the engine deadlock-free:
//!
//! > `active` → `catalog` → heap directory → per-table heap →
//! > pool shard → `WAL` → commit state → MVCC tracker
//!
//! The MVCC latch is self-contained (it is never held across another
//! latch acquisition), so placing it last is trivially safe; commit
//! registration takes it after group commit returns, and the DML paths
//! take it before touching the page they are about to overwrite.
//!
//! A latch may only be taken while holding latches that appear *earlier*
//! in this order. Pool-shard latches sit before the WAL because dirty
//! eviction (which runs under a shard latch) may need to sync the log
//! (the flush barrier, below); no code path holds the WAL or commit
//! latch while touching a page. Page closures never re-enter the pool.
//! Transaction-level (lock-manager) waits are *not* part of this order —
//! they happen before any latch is held and resolve via wait-die, never
//! by blocking a latch holder.
//!
//! # Group commit
//!
//! A committing transaction appends its `Commit` record (getting back a
//! log sequence number) and then waits until the log is durable up to
//! that number. The first committer to arrive becomes the *leader*: it
//! flushes the log buffer under the WAL latch (cheap), releases the
//! latch, and fsyncs a cloned file handle while followers — and new
//! appenders — proceed. One fsync thus covers every record appended
//! before it, batching the dominant cost of small transactions.
//!
//! # Page-LSN flush discipline
//!
//! The engine mutates pages before appending the covering WAL record,
//! so a naive pool could write a dirty page to disk ahead of its log
//! record. Logged heap mutations therefore run through
//! [`BufferPool::with_page_mut_logged`], which pins the frame until the
//! engine appends the record and publishes its sequence number as the
//! frame's page-LSN; eviction of a dirty frame first runs a *flush
//! barrier* that syncs the WAL through that LSN (counted by
//! `mdm_wal_eviction_syncs_total`). This is the ARIES write-ahead rule
//! specialized to logical logging: no page reaches disk before the log
//! covers its last logged change.
//!
//! # Observability
//!
//! Every engine opens against an `mdm_obs::Registry` (its own, or one
//! shared by the caller via [`StorageEngine::open_with_registry`]) and
//! exports counters and histograms for the buffer pool, WAL, lock
//! manager, and transaction lifecycle; read them via
//! [`StorageEngine::metrics_snapshot`]. All instrumentation is relaxed
//! atomics — cheap enough for the hot paths it sits on.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use mdm_obs::{
    trace, Counter, Gauge, Histogram, Registry, Snapshot, LATENCY_MICROS_BOUNDS, SMALL_COUNT_BOUNDS,
};

use crate::backend::{FileVfs, Vfs};
use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::catalog::{self, Catalog, IndexMeta, TableMeta};
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::lock::{LockManager, LockMode};
use crate::mvcc::{self, Epoch, MvccState};
use crate::page::{PageId, Rid};
use crate::recovery::{self, RecoveryOutcome};
use crate::wal::{TableId, TxnId, Wal, WalRecord};

/// Default buffer pool capacity in pages (16 MiB).
pub const DEFAULT_POOL_PAGES: usize = 2048;

/// A transaction handle. Obtain via [`StorageEngine::begin`]; finish with
/// [`StorageEngine::commit`] or [`StorageEngine::abort`]. Dropping an
/// unfinished transaction aborts it: the drop rolls back its effects and
/// releases its locks (leaking the handle with `std::mem::forget`
/// simulates a crash instead, leaving rollback to recovery).
pub struct Txn {
    id: TxnId,
    undo: Vec<UndoOp>,
    finished: bool,
    began: bool,
    inner: Arc<Inner>,
}

impl Txn {
    /// The transaction's id (its wait-die timestamp).
    pub fn id(&self) -> TxnId {
        self.id
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            // Abort-on-drop. Errors are swallowed: drop has nowhere to
            // report them, and recovery re-establishes consistency from
            // the log on the next open if rollback could not complete.
            let _ = self.inner.rollback(self.id, &mut self.undo, self.began);
            self.inner.locks.release_all(self.id);
        }
    }
}

enum UndoOp {
    Insert {
        rid: Rid,
    },
    Update {
        rid: Rid,
        old: Vec<u8>,
    },
    Delete {
        rid: Rid,
        old: Vec<u8>,
    },
    IndexInsert {
        table: TableId,
        index: String,
        key: Vec<u8>,
        rid: Rid,
    },
    IndexDelete {
        table: TableId,
        index: String,
        key: Vec<u8>,
        rid: Rid,
    },
}

/// The WAL behind its append latch, plus a monotonic sequence number
/// (one per appended record, never reset — unlike `Wal::appended`,
/// which a truncate restarts).
struct WalInner {
    wal: Wal,
    seq: u64,
    appends: Arc<Counter>,
}

impl WalInner {
    fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        self.wal.append(rec)?;
        self.seq += 1;
        self.appends.inc();
        Ok(self.seq)
    }
}

/// The engine's registered metric handles. Counter/histogram updates are
/// relaxed atomics; the registry is only consulted for snapshots.
struct EngineMetrics {
    registry: Registry,
    wal_appends: Arc<Counter>,
    wal_fsyncs: Arc<Counter>,
    wal_fsync_micros: Arc<Histogram>,
    wal_group_batch: Arc<Histogram>,
    wal_eviction_syncs: Arc<Counter>,
    wal_fsync_failures: Arc<Counter>,
    wal_poisoned: Arc<Gauge>,
    txn_begins: Arc<Counter>,
    txn_commits: Arc<Counter>,
    txn_aborts: Arc<Counter>,
    txn_active: Arc<Gauge>,
}

impl EngineMetrics {
    fn register(registry: &Registry, pool: &BufferPool, locks: &LockManager) -> EngineMetrics {
        pool.register_metrics(registry);
        locks.register_metrics(registry);
        EngineMetrics {
            registry: registry.clone(),
            wal_appends: registry.counter("mdm_wal_appends_total", "WAL records appended"),
            wal_fsyncs: registry.counter("mdm_wal_fsyncs_total", "WAL fsyncs issued"),
            wal_fsync_micros: registry.histogram(
                "mdm_wal_fsync_micros",
                "WAL fsync latency in microseconds",
                LATENCY_MICROS_BOUNDS,
            ),
            wal_group_batch: registry.histogram(
                "mdm_wal_group_commit_batch",
                "records made durable per group-commit fsync",
                SMALL_COUNT_BOUNDS,
            ),
            wal_eviction_syncs: registry.counter(
                "mdm_wal_eviction_syncs_total",
                "WAL syncs forced by dirty-page eviction (page-LSN flush discipline)",
            ),
            wal_fsync_failures: registry.counter(
                "mdm_wal_fsync_failures_total",
                "WAL fsyncs that failed, each poisoning the commit path",
            ),
            wal_poisoned: registry.gauge(
                "mdm_wal_poisoned",
                "1 if a failed WAL fsync has poisoned the commit path (reopen to recover)",
            ),
            txn_begins: registry.counter("mdm_txn_begins_total", "transactions started"),
            txn_commits: registry.counter("mdm_txn_commits_total", "transactions committed"),
            txn_aborts: registry.counter(
                "mdm_txn_aborts_total",
                "transactions rolled back (explicit abort, drop, or wait-die)",
            ),
            txn_active: registry.gauge("mdm_txn_active", "transactions currently in flight"),
        }
    }
}

/// Group-commit state: whether a leader is currently fsyncing, and the
/// highest sequence number known durable.
struct CommitState {
    syncing: bool,
    synced: u64,
    /// Set when a WAL fsync fails. Once the kernel reports an fsync
    /// error it may drop the dirty pages it could not write *and mark
    /// them clean* (fsyncgate), so a later "successful" fsync proves
    /// nothing about the bytes the failed one covered. `synced` must
    /// never advance past that point; every commit (and eviction sync)
    /// fails with [`StorageError::WalPoisoned`] until the engine is
    /// reopened and recovery re-reads what actually persisted.
    poisoned: bool,
}

struct Inner {
    pool: BufferPool,
    wal: Mutex<WalInner>,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
    catalog: RwLock<Catalog>,
    heaps: RwLock<HashMap<TableId, Arc<Mutex<HeapFile>>>>,
    active: Mutex<HashSet<TxnId>>,
    indexes_need_rebuild: AtomicBool,
    recovery: RecoveryOutcome,
    locks: LockManager,
    /// Shared with the MVCC tracker so the frozen floor can advance to
    /// "next id" without racing an allocation.
    next_txn: Arc<AtomicU64>,
    /// Tuple version stamps, version chains, snapshot visibility.
    mvcc: MvccState,
    dir: PathBuf,
    metrics: EngineMetrics,
    /// Replica mode: the log is fed by [`StorageEngine::replica_apply`]
    /// from a primary's stream rather than by local transactions, so the
    /// engine must never append records of its own (they would collide
    /// with the primary's LSN numbering). Eviction writes through
    /// unprotected, the shutdown checkpoint is skipped, and
    /// [`StorageEngine::checkpoint`] folds without logging images.
    replica: AtomicBool,
    /// Highest LSN known durable (flushed and fsynced, or rotated into
    /// the archive). Replication streams records strictly below this.
    durable_lsn: AtomicU64,
}

impl Inner {
    /// Appends one record, returning its sequence number.
    fn log(&self, rec: &WalRecord) -> Result<u64> {
        let _sp = trace::span("storage.wal_append");
        self.wal.lock().unwrap().append(rec)
    }

    /// Appends several records under one latch acquisition (keeps, e.g.,
    /// a `LinkPage` ordered directly before the `Insert` that needs it).
    fn log_all(&self, recs: &[WalRecord]) -> Result<u64> {
        let _sp = trace::span("storage.wal_append");
        trace::annotate("records", recs.len());
        let mut w = self.wal.lock().unwrap();
        let mut seq = w.seq;
        for rec in recs {
            seq = w.append(rec)?;
        }
        Ok(seq)
    }

    /// Appends records covering logged page mutations, then publishes the
    /// resulting sequence number as the page-LSN of every touched page —
    /// exactly once per pin the heap layer took. If the append fails, the
    /// latest appended sequence is published instead, so the frames are
    /// unpinned and eviction still syncs past any record that *did* make
    /// it in.
    fn log_published(&self, recs: &[WalRecord], pages: &[PageId]) -> Result<u64> {
        let res = self.log_all(recs);
        let seq = match &res {
            Ok(seq) => *seq,
            Err(_) => self.wal.lock().unwrap().seq,
        };
        for &page in pages {
            self.pool.publish_lsn(page, seq);
        }
        res
    }

    /// The eviction flush barrier: logs a durable full-page image of the
    /// bytes eviction is about to write in place. Appending the image
    /// gives it a sequence past the frame's page-LSN, so the one sync
    /// covers both the write-ahead rule and torn-write protection.
    fn eviction_barrier(&self, page: PageId, bytes: &[u8]) -> Result<()> {
        if self.replica.load(Ordering::Acquire) {
            // A replica must not append to its log (the LSNs belong to
            // the primary's stream), so eviction writes through without
            // an image. A torn write here loses only the replica's local
            // copy; re-seeding from the primary's archive repairs it.
            return Ok(());
        }
        self.metrics.wal_eviction_syncs.inc();
        let _sp = trace::span("storage.flush_barrier");
        trace::annotate("page", page);
        self.log_page_images(&[(page, bytes.to_vec())])
    }

    /// Appends one [`WalRecord::PageImage`] per entry and syncs the log
    /// through the last of them. Checkpoint and eviction call this before
    /// rewriting the imaged pages in place.
    fn log_page_images(&self, batch: &[(PageId, Vec<u8>)]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let seq = {
            let mut w = self.wal.lock().unwrap();
            let mut seq = w.seq;
            for (page, bytes) in batch {
                seq = w.append(&WalRecord::PageImage {
                    page: *page,
                    bytes: bytes.clone(),
                })?;
            }
            seq
        };
        self.sync_to(seq)
    }

    /// Group commit: waits until the log is durable through `seq`,
    /// becoming the fsync leader if no other committer already is.
    fn sync_to(&self, seq: u64) -> Result<()> {
        let _sp = trace::span("storage.group_commit");
        let mut st = self.commit.lock().unwrap();
        loop {
            if st.poisoned {
                return Err(StorageError::WalPoisoned);
            }
            if st.synced >= seq {
                return Ok(());
            }
            if st.syncing {
                st = self.commit_cv.wait(st).unwrap();
                continue;
            }
            st.syncing = true;
            drop(st);
            // Leader: flush the buffer under the WAL latch (cheap), then
            // fsync the shared backend with no latch held, so appenders
            // and later committers are never stalled behind the disk.
            let flushed = {
                let mut w = self.wal.lock().unwrap();
                w.wal
                    .flush_to_os()
                    .map(|backend| (w.seq, w.wal.flushed_lsn(), backend))
            };
            let res = flushed.and_then(|(upto, lsn, backend)| {
                let _fsync_sp = trace::span("storage.fsync");
                let timer = self.metrics.wal_fsync_micros.time();
                backend.sync()?;
                timer.stop();
                self.metrics.wal_fsyncs.inc();
                self.durable_lsn.fetch_max(lsn, Ordering::AcqRel);
                Ok(upto)
            });
            st = self.commit.lock().unwrap();
            st.syncing = false;
            let upto = match res {
                Ok(upto) => upto,
                Err(e) => {
                    // fsyncgate: a failed fsync may have dropped the
                    // dirty log bytes while marking them clean, so no
                    // retry can be trusted. Poison the commit path: the
                    // durable seq never advances again, and followers
                    // (and all later commits) fail typed rather than
                    // reporting durability the log cannot back.
                    st.poisoned = true;
                    self.metrics.wal_fsync_failures.inc();
                    self.metrics.wal_poisoned.set(1);
                    self.commit_cv.notify_all();
                    return Err(e);
                }
            };
            if upto > st.synced {
                // Group-commit effectiveness: records covered per fsync.
                self.metrics.wal_group_batch.observe(upto - st.synced);
            }
            st.synced = st.synced.max(upto);
            self.commit_cv.notify_all();
        }
    }

    /// Syncs everything appended so far.
    fn sync_all(&self) -> Result<()> {
        let seq = self.wal.lock().unwrap().seq;
        self.sync_to(seq)
    }

    /// Truncates the log (checkpoint). Everything previously appended is
    /// now moot, so it is marked synced.
    fn truncate_wal(&self) -> Result<()> {
        let (seq, lsn) = {
            let mut w = self.wal.lock().unwrap();
            w.wal.truncate()?;
            (w.seq, w.wal.next_lsn())
        };
        self.durable_lsn.fetch_max(lsn, Ordering::AcqRel);
        let mut st = self.commit.lock().unwrap();
        st.synced = st.synced.max(seq);
        Ok(())
    }

    /// The per-table heap handle, opening it from the catalog on first
    /// touch.
    fn heap_handle(&self, table: TableId) -> Result<Arc<Mutex<HeapFile>>> {
        if let Some(h) = self.heaps.read().unwrap().get(&table) {
            return Ok(Arc::clone(h));
        }
        let first_page = {
            let cat = self.catalog.read().unwrap();
            let (_, meta) = cat
                .table_by_id(table)
                .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
            meta.first_page
        };
        let mut heaps = self.heaps.write().unwrap();
        if let Some(h) = heaps.get(&table) {
            return Ok(Arc::clone(h));
        }
        let hf = HeapFile::open(&self.pool, first_page)?;
        let h = Arc::new(Mutex::new(hf));
        heaps.insert(table, Arc::clone(&h));
        Ok(h)
    }

    fn index_tree(&self, table: TableId, index: &str) -> Result<BTree> {
        let cat = self.catalog.read().unwrap();
        let (_, meta) = cat
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        let idx = meta
            .indexes
            .get(index)
            .ok_or_else(|| StorageError::NoSuchIndex(index.to_string()))?;
        Ok(BTree::open(idx.root))
    }

    /// Persists and logs the catalog after DDL. Callers hold the catalog
    /// write latch, which serializes catalog page writes. The saved copy
    /// carries the current transaction-id floor, so any open that
    /// restores this catalog restarts the allocator above every id whose
    /// stamps may survive in the pages.
    fn snapshot_catalog(&self, catalog: &Catalog) -> Result<()> {
        let mut floored = catalog.clone();
        floored.txn_floor = self.next_txn.load(Ordering::Acquire);
        catalog::save(&self.pool, &floored)?;
        let seq = self.log(&WalRecord::CatalogSnapshot {
            bytes: floored.to_bytes(),
        })?;
        self.sync_to(seq)
    }

    /// Rolls a transaction's effects back in place and logs the abort.
    /// Shared by [`StorageEngine::abort`] and [`Txn`]'s drop. A
    /// transaction that never logged a `Begin` logs no `Abort` either:
    /// read-only work must leave the WAL untouched.
    fn rollback(&self, id: TxnId, undo: &mut Vec<UndoOp>, began: bool) -> Result<()> {
        if !self.active.lock().unwrap().remove(&id) {
            return Err(StorageError::TxnNotActive(id));
        }
        for op in undo.drain(..).rev() {
            match op {
                UndoOp::Insert { rid } => {
                    HeapFile::apply_at(&self.pool, rid, None)?;
                }
                UndoOp::Update { rid, ref old } | UndoOp::Delete { rid, ref old } => {
                    HeapFile::apply_at(&self.pool, rid, Some(old))?;
                }
                UndoOp::IndexInsert {
                    table,
                    ref index,
                    ref key,
                    rid,
                } => {
                    let bt = self.index_tree(table, index)?;
                    bt.delete(&self.pool, key, rid.to_u64())?;
                }
                UndoOp::IndexDelete {
                    table,
                    ref index,
                    ref key,
                    rid,
                } => {
                    let bt = self.index_tree(table, index)?;
                    bt.insert(&self.pool, key, rid.to_u64())?;
                }
            }
        }
        // The pages hold no trace of the transaction any more; retract
        // its chained versions and tombstone the id so captured-but-
        // unresolved stamps stay invisible. A transaction that never
        // wrote (`began` false) left no stamps and is simply forgotten.
        if began {
            self.mvcc.rollback(id);
        } else {
            self.mvcc.forget(id);
        }
        if began {
            self.log(&WalRecord::Abort { txn: id })?;
        }
        self.metrics.txn_aborts.inc();
        self.metrics.txn_active.add(-1);
        Ok(())
    }
}

/// A batch of encoded WAL records as `(lsn, payload)` pairs — the unit
/// the replication stream ships.
pub type WalBatch = Vec<(u64, Vec<u8>)>;

/// A lock-free read-only transaction over a stable snapshot of the
/// database. Obtain via [`StorageEngine::snapshot`]; the view is fixed
/// at the commit epoch current when it opened. Reads resolve tuple
/// visibility through the MVCC tracker instead of acquiring read locks,
/// so a snapshot never blocks a writer, is never blocked by one, and
/// can never abort under wait-die. Dropping the snapshot releases its
/// pin on retained tuple versions (advancing the GC horizon).
pub struct ReadSnapshot {
    inner: Arc<Inner>,
    epoch: Epoch,
}

impl ReadSnapshot {
    /// The commit epoch this snapshot observes: exactly the
    /// transactions registered at or before it are visible.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Reads the version of a record visible to this snapshot, or
    /// `None` if the rid holds no visible row at the snapshot's epoch.
    pub fn get(&self, table: TableId, rid: Rid) -> Result<Option<Vec<u8>>> {
        let stored = HeapFile::get(&self.inner.pool, rid)?;
        Ok(self
            .inner
            .mvcc
            .resolve(table, rid.to_u64(), stored.as_deref(), self.epoch))
    }

    /// Scans every record of a table visible to this snapshot. Takes no
    /// lock: current page tuples resolve through the visibility check,
    /// and rows a concurrent (or later-committed) writer has deleted or
    /// moved are recovered from their version chains.
    pub fn scan(&self, table: TableId) -> Result<Vec<(Rid, Vec<u8>)>> {
        let heap = self.inner.heap_handle(table)?;
        let h = heap.lock().unwrap().clone();
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (rid, stored) in h.scan_all(&self.inner.pool)? {
            seen.insert(rid.to_u64());
            if let Some(body) =
                self.inner
                    .mvcc
                    .resolve(table, rid.to_u64(), Some(&stored), self.epoch)
            {
                out.push((rid, body));
            }
        }
        // Rids the page walk no longer surfaces (deleted, or their page
        // unlinked) can still hold versions this snapshot sees.
        for rid64 in self.inner.mvcc.chained_rids(table) {
            if seen.insert(rid64) {
                let rid = Rid::from_u64(rid64);
                let stored = HeapFile::get(&self.inner.pool, rid)?;
                if let Some(body) =
                    self.inner
                        .mvcc
                        .resolve(table, rid64, stored.as_deref(), self.epoch)
                {
                    out.push((rid, body));
                }
            }
        }
        Ok(out)
    }

    /// Looks up `key` in a secondary index, filtered to rids visible to
    /// this snapshot. The B+tree itself is unversioned (writers mutate
    /// it in place under their exclusive lock), so the probe unions the
    /// tree's hits with every chained rid of the table before applying
    /// the visibility check — a conservative superset: the caller
    /// re-qualifies each row against the key, exactly as it already must
    /// for the scan plan, which keeps the two plans' results identical.
    pub fn index_lookup(&self, table: TableId, index: &str, key: &[u8]) -> Result<Vec<Rid>> {
        let bt = self.inner.index_tree(table, index)?;
        let mut rids = bt.lookup(&self.inner.pool, key)?;
        for extra in self.inner.mvcc.chained_rids(table) {
            if !rids.contains(&extra) {
                rids.push(extra);
            }
        }
        let mut out = Vec::new();
        for rid64 in rids {
            let rid = Rid::from_u64(rid64);
            let stored = HeapFile::get(&self.inner.pool, rid)?;
            if self
                .inner
                .mvcc
                .resolve(table, rid64, stored.as_deref(), self.epoch)
                .is_some()
            {
                out.push(rid);
            }
        }
        Ok(out)
    }

    /// Range scan over an index, filtered to visible rids; bounds are
    /// inclusive, `None` = unbounded. As with [`ReadSnapshot::index_lookup`],
    /// entries a concurrent writer removed from the tree are recovered
    /// via [`ReadSnapshot::chain_candidates`]; callers that need exact
    /// range semantics under concurrency re-qualify those rows.
    pub fn index_range(
        &self,
        table: TableId,
        index: &str,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Rid)>> {
        let bt = self.inner.index_tree(table, index)?;
        let mut entries = Vec::new();
        bt.range(&self.inner.pool, lo, hi, |k, v| {
            entries.push((k.to_vec(), v));
        })?;
        let mut out = Vec::new();
        for (key, rid64) in entries {
            let rid = Rid::from_u64(rid64);
            let stored = HeapFile::get(&self.inner.pool, rid)?;
            if self
                .inner
                .mvcc
                .resolve(table, rid64, stored.as_deref(), self.epoch)
                .is_some()
            {
                out.push((key, rid));
            }
        }
        Ok(out)
    }

    /// Rids of `table` holding chained versions: the rows an index probe
    /// may miss because a concurrent writer already unhooked their tree
    /// entries. Visible ones are exactly the extras
    /// [`ReadSnapshot::index_lookup`] unions in.
    pub fn chain_candidates(&self, table: TableId) -> Vec<Rid> {
        self.inner
            .mvcc
            .chained_rids(table)
            .into_iter()
            .map(Rid::from_u64)
            .collect()
    }
}

impl Drop for ReadSnapshot {
    fn drop(&mut self) {
        self.inner.mvcc.close_snapshot(self.epoch);
    }
}

/// The transactional storage engine. Cloneable handle; clones share state.
#[derive(Clone)]
pub struct StorageEngine {
    inner: Arc<Inner>,
}

impl StorageEngine {
    /// Opens (or creates) a database in `dir`, running crash recovery if
    /// the write-ahead log is non-empty.
    pub fn open(dir: &Path) -> Result<StorageEngine> {
        Self::open_with_capacity(dir, DEFAULT_POOL_PAGES)
    }

    /// As [`StorageEngine::open`] with an explicit buffer-pool capacity.
    pub fn open_with_capacity(dir: &Path, pool_pages: usize) -> Result<StorageEngine> {
        Self::open_with_registry(dir, pool_pages, &Registry::new())
    }

    /// As [`StorageEngine::open_with_capacity`], registering the engine's
    /// metrics into a caller-supplied registry so the embedding layer can
    /// snapshot storage, query, and application metrics together.
    pub fn open_with_registry(
        dir: &Path,
        pool_pages: usize,
        registry: &Registry,
    ) -> Result<StorageEngine> {
        Self::open_with_vfs(dir, pool_pages, registry, &FileVfs)
    }

    /// As [`StorageEngine::open_with_registry`], sourcing every file
    /// backend from `vfs`. Fault-injection harnesses use this to
    /// interpose on each I/O the engine performs; production callers use
    /// the plain-file default.
    pub fn open_with_vfs(
        dir: &Path,
        pool_pages: usize,
        registry: &Registry,
        vfs: &dyn Vfs,
    ) -> Result<StorageEngine> {
        let pool = BufferPool::open_with(dir, pool_pages, vfs)?;
        // A sticky marker makes replica mode survive restarts: a
        // reopened replica must NOT rotate its log (the rotation would
        // append a local checkpoint marker, stealing an LSN the
        // primary's stream has already assigned to a different record).
        let replica_marker = dir.join("replica").exists();
        let (records, _) = Wal::replay(dir)?;
        // A crash can tear an in-place catalog rewrite, leaving the
        // page-0 chain unreadable — but every such rewrite is preceded
        // by a synced page image (and DDL by a snapshot) in the log, so
        // a non-empty log rebuilds it. An empty log cannot: surface the
        // corruption instead of silently starting empty.
        let disk_catalog = match catalog::load(&pool) {
            Ok(c) => Some(c),
            Err(_) if !records.is_empty() => None,
            Err(e) => return Err(e),
        };
        let (outcome, mut recovered) = recovery::recover(&pool, &records, disk_catalog)?;
        // Restart the transaction-id allocator above every id whose
        // stamps can survive in the pages: the floor the last catalog
        // save recorded, and anything the replayed log mentions (the
        // catalog on disk may predate the log tail). Stamps below the
        // floor resolve as frozen — visible to every snapshot — which is
        // exactly right: recovery leaves only committed data in place.
        let logged_txns = records.iter().filter_map(WalRecord::txn).max();
        let txn_floor = recovered
            .txn_floor
            .max(logged_txns.map_or(0, |t| t + 1))
            .max(1);
        recovered.txn_floor = txn_floor;
        let mut wal = Wal::open_with(dir, vfs)?;
        // The rebuild obligation must survive restarts: recovery (or a
        // replica fold) persists freshly reset — empty — trees, and the
        // log that proved the reset may be truncated before the owning
        // layer rebuilds. The marker file carries the debt across opens.
        let needs_rebuild = outcome.indexes_reset || dir.join("indexes.rebuild").exists();
        if needs_rebuild {
            Self::write_rebuild_marker(dir, true)?;
        }
        if !records.is_empty() && !replica_marker {
            // Make the recovered state the new base and empty the log.
            // The checkpoint marker tells a replication reader that the
            // stream is checkpoint-consistent at the rotation boundary.
            // A replica keeps its log as-is: the fold above was
            // idempotent, the stream resumes at next-LSN, and the log
            // rotates at the next replicated checkpoint marker.
            catalog::save(&pool, &recovered)?;
            pool.flush_all()?;
            wal.append(&WalRecord::Checkpoint)?;
            wal.sync()?;
            wal.truncate()?;
        }
        let durable_lsn = wal.next_lsn();
        let locks = LockManager::new();
        let metrics = EngineMetrics::register(registry, &pool, &locks);
        let next_txn = Arc::new(AtomicU64::new(txn_floor));
        let mvcc = MvccState::register(registry, Arc::clone(&next_txn));
        let inner = Arc::new(Inner {
            pool,
            wal: Mutex::new(WalInner {
                wal,
                seq: 0,
                appends: Arc::clone(&metrics.wal_appends),
            }),
            commit: Mutex::new(CommitState {
                syncing: false,
                synced: 0,
                poisoned: false,
            }),
            commit_cv: Condvar::new(),
            catalog: RwLock::new(recovered),
            heaps: RwLock::new(HashMap::new()),
            active: Mutex::new(HashSet::new()),
            indexes_need_rebuild: AtomicBool::new(needs_rebuild),
            recovery: outcome,
            locks,
            next_txn,
            mvcc,
            dir: dir.to_path_buf(),
            metrics,
            replica: AtomicBool::new(replica_marker),
            durable_lsn: AtomicU64::new(durable_lsn),
        });
        // Eviction flush barrier: a `Weak` breaks the cycle (`Inner` owns
        // the pool, the pool's barrier reaches back into `Inner`). An
        // upgrade failure means the engine is mid-drop, where nothing can
        // log the protective page image any more — refuse the eviction
        // (the frame stays resident); the shutdown path flushes dirty
        // pages itself, with images.
        let weak = Arc::downgrade(&inner);
        inner
            .pool
            .set_flush_barrier(Box::new(move |page, bytes, _lsn| match weak.upgrade() {
                Some(inner) => inner.eviction_barrier(page, bytes),
                None => Err(StorageError::Corrupt(
                    "dirty eviction during engine shutdown".into(),
                )),
            }));
        Ok(StorageEngine { inner })
    }

    /// The outcome of the recovery pass run at [`StorageEngine::open`].
    pub fn last_recovery(&self) -> RecoveryOutcome {
        self.inner.recovery.clone()
    }

    /// Directory holding the database files.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// True if secondary indexes were reset by recovery and must be
    /// rebuilt by the layer that owns key extraction.
    pub fn indexes_need_rebuild(&self) -> bool {
        self.inner.indexes_need_rebuild.load(Ordering::Acquire)
    }

    /// Marks indexes as rebuilt (call after repopulating them).
    pub fn mark_indexes_rebuilt(&self) {
        self.inner
            .indexes_need_rebuild
            .store(false, Ordering::Release);
        let _ = Self::write_rebuild_marker(&self.inner.dir, false);
    }

    /// Creates or removes the durable `indexes.rebuild` marker. Direct
    /// filesystem I/O, like the `replica` role marker: bookkeeping that
    /// must not shift the fault-injection boundary census.
    fn write_rebuild_marker(dir: &Path, on: bool) -> Result<()> {
        let marker = dir.join("indexes.rebuild");
        if on {
            std::fs::File::create(&marker)?.sync_all()?;
        } else if marker.exists() {
            std::fs::remove_file(&marker)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts a transaction. The `Begin` record is logged lazily at the
    /// transaction's first write: read-only transactions must leave the
    /// WAL untouched, both to keep it lean and because a replica's local
    /// LSN must track the primary's stream exactly — a locally logged
    /// record would desynchronise the replication cursor.
    pub fn begin(&self) -> Result<Txn> {
        // The id is allocated by the MVCC tracker (one critical section
        // with its in-flight registration) so the frozen floor can never
        // advance past an id that is about to stamp tuples.
        let id = self.inner.mvcc.begin_txn();
        self.inner.active.lock().unwrap().insert(id);
        self.inner.metrics.txn_begins.inc();
        self.inner.metrics.txn_active.add(1);
        Ok(Txn {
            id,
            undo: Vec::new(),
            finished: false,
            began: false,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Logs the deferred `Begin` before a transaction's first write
    /// record. Must run under no page latch the logged write also needs.
    fn begin_write(&self, txn: &mut Txn) -> Result<()> {
        if !txn.began {
            self.inner.log(&WalRecord::Begin { txn: txn.id })?;
            txn.began = true;
        }
        Ok(())
    }

    /// Commits: makes the log durable (group commit), registers the
    /// commit epoch with the MVCC tracker, releases locks. A transaction
    /// that never wrote logs nothing and syncs nothing.
    pub fn commit(&self, mut txn: Txn) -> Result<()> {
        if !self.inner.active.lock().unwrap().remove(&txn.id) {
            txn.finished = true; // nothing left for drop to roll back
            return Err(StorageError::TxnNotActive(txn.id));
        }
        if txn.began {
            let synced = self
                .inner
                .log(&WalRecord::Commit { txn: txn.id })
                .and_then(|seq| self.inner.sync_to(seq));
            if let Err(e) = synced {
                // Unknown outcome: the commit record may or may not have
                // persisted, so recovery at the next open is the only
                // authority. The id stays registered in flight forever —
                // its stamps remain invisible to every snapshot — and
                // nothing is rolled back (the drop below finds the id
                // already out of the active set and leaves the pages
                // alone, exactly as recovery semantics require).
                self.inner.mvcc.abandon(txn.id);
                return Err(e);
            }
            // Durable: register the commit epoch before releasing locks,
            // so the epoch order is a serialization order.
            self.inner.mvcc.commit(txn.id);
        } else {
            self.inner.mvcc.forget(txn.id);
        }
        txn.finished = true;
        self.inner.locks.release_all(txn.id);
        self.inner.metrics.txn_commits.inc();
        self.inner.metrics.txn_active.add(-1);
        Ok(())
    }

    /// Aborts: rolls back the transaction's effects, releases locks.
    pub fn abort(&self, mut txn: Txn) -> Result<()> {
        let res = self.inner.rollback(txn.id, &mut txn.undo, txn.began);
        txn.finished = true;
        self.inner.locks.release_all(txn.id);
        res
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Creates a table, returning its id. Auto-committed structurally.
    pub fn create_table(&self, name: &str) -> Result<TableId> {
        let mut cat = self.inner.catalog.write().unwrap();
        if cat.tables.contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        let hf = HeapFile::create(&self.inner.pool)?;
        let id = cat.next_table_id.max(1); // id 0 is reserved
        cat.next_table_id = id + 1;
        cat.tables.insert(
            name.to_string(),
            TableMeta {
                id,
                first_page: hf.first_page(),
                indexes: BTreeMap::new(),
            },
        );
        self.inner
            .heaps
            .write()
            .unwrap()
            .insert(id, Arc::new(Mutex::new(hf)));
        self.inner.snapshot_catalog(&cat)?;
        Ok(id)
    }

    /// Drops a table and its indexes. Pages are leaked (no free list);
    /// reclaim by checkpoint-copying into a fresh database.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut cat = self.inner.catalog.write().unwrap();
        let meta = cat
            .tables
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))?;
        self.inner.heaps.write().unwrap().remove(&meta.id);
        self.inner.snapshot_catalog(&cat)?;
        Ok(())
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        let cat = self.inner.catalog.read().unwrap();
        cat.tables
            .get(name)
            .map(|m| m.id)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// All table names in the catalog.
    pub fn table_names(&self) -> Vec<String> {
        let cat = self.inner.catalog.read().unwrap();
        cat.tables.keys().cloned().collect()
    }

    /// Creates a secondary index on a table. Auto-committed structurally.
    pub fn create_index(&self, table: TableId, index: &str) -> Result<()> {
        let mut cat = self.inner.catalog.write().unwrap();
        let bt = BTree::create(&self.inner.pool)?;
        let (name, meta) = cat
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        if meta.indexes.contains_key(index) {
            return Err(StorageError::IndexExists(index.to_string()));
        }
        let name = name.clone();
        cat.tables
            .get_mut(&name)
            .expect("just found")
            .indexes
            .insert(index.to_string(), IndexMeta { root: bt.root() });
        self.inner.snapshot_catalog(&cat)?;
        Ok(())
    }

    /// Drops a secondary index. Auto-committed structurally; like
    /// [`StorageEngine::drop_table`], the tree's pages are leaked (no
    /// free list) until a vacuum copies the database.
    pub fn drop_index(&self, table: TableId, index: &str) -> Result<()> {
        let mut cat = self.inner.catalog.write().unwrap();
        let (name, _) = cat
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        let name = name.clone();
        let meta = cat.tables.get_mut(&name).expect("just found");
        if meta.indexes.remove(index).is_none() {
            return Err(StorageError::NoSuchIndex(index.to_string()));
        }
        self.inner.snapshot_catalog(&cat)?;
        Ok(())
    }

    /// Names of the indexes on a table.
    pub fn index_names(&self, table: TableId) -> Result<Vec<String>> {
        let cat = self.inner.catalog.read().unwrap();
        let (_, meta) = cat
            .table_by_id(table)
            .ok_or_else(|| StorageError::NoSuchTable(format!("#{table}")))?;
        Ok(meta.indexes.keys().cloned().collect())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Inserts a record, returning its rid. The stored tuple is the body
    /// prefixed with the transaction's xmin stamp; the stamp travels
    /// through the WAL, undo, replication, and recovery as part of the
    /// record body and is stripped again on every read.
    pub fn insert(&self, txn: &mut Txn, table: TableId, body: &[u8]) -> Result<Rid> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let stored = mvcc::stamp(txn.id, body);
        let heap = self.inner.heap_handle(table)?;
        let mut h = heap.lock().unwrap();
        let (rid, link) = h.insert(&self.inner.pool, &stored)?;
        let mut recs = Vec::with_capacity(2);
        let mut pages = Vec::with_capacity(2);
        if let Some((from_page, new_page)) = link {
            recs.push(WalRecord::LinkPage {
                table,
                from_page,
                new_page,
            });
            pages.push(from_page);
        }
        recs.push(WalRecord::Insert {
            txn: txn.id,
            table,
            rid,
            body: stored,
        });
        pages.push(rid.page);
        self.begin_write(txn)?;
        self.inner.log_published(&recs, &pages)?;
        drop(h);
        txn.undo.push(UndoOp::Insert { rid });
        Ok(rid)
    }

    /// Reads a record (shared lock).
    pub fn get(&self, txn: &mut Txn, table: TableId, rid: Rid) -> Result<Option<Vec<u8>>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        Ok(HeapFile::get(&self.inner.pool, rid)?.map(|b| mvcc::user_body(&b).to_vec()))
    }

    /// Updates a record in place. If the new body no longer fits in the
    /// record's page, the update is performed as delete+reinsert and the
    /// *new* rid is returned; otherwise the original rid is returned.
    pub fn update(&self, txn: &mut Txn, table: TableId, rid: Rid, body: &[u8]) -> Result<Rid> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let heap = self.inner.heap_handle(table)?;
        let mut h = heap.lock().unwrap();
        let old = HeapFile::get(&self.inner.pool, rid)?.ok_or(StorageError::RecordNotFound {
            page: rid.page,
            slot: rid.slot,
        })?;
        // Chain the superseded version *before* the page changes, so no
        // snapshot ever observes a window where the old version is gone
        // from both the page and the chain.
        self.inner
            .mvcc
            .remember_old(txn.id, table, rid.to_u64(), &old);
        let stored = mvcc::stamp(txn.id, body);
        if HeapFile::update(&self.inner.pool, rid, &stored)? {
            self.begin_write(txn)?;
            self.inner.log_published(
                &[WalRecord::Update {
                    txn: txn.id,
                    table,
                    rid,
                    old: old.clone(),
                    new: stored,
                }],
                &[rid.page],
            )?;
            txn.undo.push(UndoOp::Update { rid, old });
            return Ok(rid);
        }
        // Did not fit: move the record.
        HeapFile::delete(&self.inner.pool, rid)?;
        self.begin_write(txn)?;
        self.inner.log_published(
            &[WalRecord::Delete {
                txn: txn.id,
                table,
                rid,
                old: old.clone(),
            }],
            &[rid.page],
        )?;
        txn.undo.push(UndoOp::Delete {
            rid,
            old: old.clone(),
        });
        let (new_rid, link) = h.insert(&self.inner.pool, &stored)?;
        let mut recs = Vec::with_capacity(2);
        let mut pages = Vec::with_capacity(2);
        if let Some((from_page, new_page)) = link {
            recs.push(WalRecord::LinkPage {
                table,
                from_page,
                new_page,
            });
            pages.push(from_page);
        }
        recs.push(WalRecord::Insert {
            txn: txn.id,
            table,
            rid: new_rid,
            body: stored,
        });
        pages.push(new_rid.page);
        self.inner.log_published(&recs, &pages)?;
        drop(h);
        txn.undo.push(UndoOp::Insert { rid: new_rid });
        Ok(new_rid)
    }

    /// Deletes a record, returning its old body.
    pub fn delete(&self, txn: &mut Txn, table: TableId, rid: Rid) -> Result<Vec<u8>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        // Pre-read and chain the doomed version before the slot empties:
        // a snapshot scanning between the page delete and a later chain
        // push would otherwise see the row in neither place.
        let doomed = HeapFile::get(&self.inner.pool, rid)?.ok_or(StorageError::RecordNotFound {
            page: rid.page,
            slot: rid.slot,
        })?;
        self.inner
            .mvcc
            .remember_old(txn.id, table, rid.to_u64(), &doomed);
        let old = HeapFile::delete(&self.inner.pool, rid)?;
        self.begin_write(txn)?;
        self.inner.log_published(
            &[WalRecord::Delete {
                txn: txn.id,
                table,
                rid,
                old: old.clone(),
            }],
            &[rid.page],
        )?;
        txn.undo.push(UndoOp::Delete {
            rid,
            old: old.clone(),
        });
        Ok(mvcc::user_body(&old).to_vec())
    }

    /// Scans every record of a table (shared lock).
    pub fn scan(&self, txn: &mut Txn, table: TableId) -> Result<Vec<(Rid, Vec<u8>)>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let heap = self.inner.heap_handle(table)?;
        let h = heap.lock().unwrap().clone();
        Ok(h.scan_all(&self.inner.pool)?
            .into_iter()
            .map(|(rid, stored)| (rid, mvcc::user_body(&stored).to_vec()))
            .collect())
    }

    // ------------------------------------------------------------------
    // Snapshot reads
    // ------------------------------------------------------------------

    /// Opens a lock-free read-only transaction: a [`ReadSnapshot`] fixed
    /// at the current commit epoch. It takes no lock-manager locks, can
    /// never deadlock or wait-die, and sees exactly the transactions
    /// that committed before it opened — writers proceed underneath it,
    /// their old tuple versions retained until the snapshot drops.
    pub fn snapshot(&self) -> ReadSnapshot {
        let epoch = self.inner.mvcc.open_snapshot();
        ReadSnapshot {
            inner: Arc::clone(&self.inner),
            epoch,
        }
    }

    // ------------------------------------------------------------------
    // Index DML
    // ------------------------------------------------------------------

    /// Adds an index entry. Logged and undoable only if the tree actually
    /// changed: re-adding a present pair must not leave an undo op behind,
    /// or an abort would delete an entry this transaction never inserted.
    pub fn index_insert(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        key: &[u8],
        rid: Rid,
    ) -> Result<()> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let bt = self.inner.index_tree(table, index)?;
        if !bt.insert(&self.inner.pool, key, rid.to_u64())? {
            return Ok(());
        }
        self.begin_write(txn)?;
        self.inner.log(&WalRecord::IndexInsert {
            txn: txn.id,
            table,
            index: index.to_string(),
            key: key.to_vec(),
            rid,
        })?;
        txn.undo.push(UndoOp::IndexInsert {
            table,
            index: index.to_string(),
            key: key.to_vec(),
            rid,
        });
        Ok(())
    }

    /// Removes an index entry. Logged and undoable only if the entry
    /// existed: deleting an absent pair must not leave an undo op behind,
    /// or an abort would resurrect an entry that was never there.
    pub fn index_delete(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        key: &[u8],
        rid: Rid,
    ) -> Result<()> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Exclusive)?;
        let bt = self.inner.index_tree(table, index)?;
        if !bt.delete(&self.inner.pool, key, rid.to_u64())? {
            return Ok(());
        }
        self.begin_write(txn)?;
        self.inner.log(&WalRecord::IndexDelete {
            txn: txn.id,
            table,
            index: index.to_string(),
            key: key.to_vec(),
            rid,
        })?;
        txn.undo.push(UndoOp::IndexDelete {
            table,
            index: index.to_string(),
            key: key.to_vec(),
            rid,
        });
        Ok(())
    }

    /// Looks up the rids stored under exactly `key`.
    pub fn index_lookup(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        key: &[u8],
    ) -> Result<Vec<Rid>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let bt = self.inner.index_tree(table, index)?;
        Ok(bt
            .lookup(&self.inner.pool, key)?
            .into_iter()
            .map(Rid::from_u64)
            .collect())
    }

    /// Range scan over an index; bounds are inclusive, `None` = unbounded.
    pub fn index_range(
        &self,
        txn: &mut Txn,
        table: TableId,
        index: &str,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Rid)>> {
        self.check_active(txn)?;
        self.inner.locks.lock(txn.id, table, LockMode::Shared)?;
        let bt = self.inner.index_tree(table, index)?;
        let mut out = Vec::new();
        bt.range(&self.inner.pool, lo, hi, |k, v| {
            out.push((k.to_vec(), Rid::from_u64(v)));
        })?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Copies the live contents of this database into a fresh database at
    /// `dir`, reclaiming the space of dropped tables and dead records
    /// (heap pages and index trees are never shrunk in place). Record ids
    /// change; index entries are remapped through the copy. Requires no
    /// active transactions. Returns the new engine.
    pub fn vacuum_into(&self, dir: &Path) -> Result<StorageEngine> {
        if !self.inner.active.lock().unwrap().is_empty() {
            return Err(StorageError::Corrupt(
                "vacuum requires no active transactions".into(),
            ));
        }
        let new = StorageEngine::open(dir)?;
        for name in self.table_names() {
            let old_table = self.table_id(&name)?;
            let new_table = new.create_table(&name)?;
            let mut rid_map: HashMap<Rid, Rid> = HashMap::new();
            let mut old_txn = self.begin()?;
            let mut new_txn = new.begin()?;
            for (old_rid, body) in self.scan(&mut old_txn, old_table)? {
                let new_rid = new.insert(&mut new_txn, new_table, &body)?;
                rid_map.insert(old_rid, new_rid);
            }
            for index in self.index_names(old_table)? {
                new.create_index(new_table, &index)?;
                for (key, old_rid) in
                    self.index_range(&mut old_txn, old_table, &index, None, None)?
                {
                    // Entries pointing at dead rids are dropped — vacuum
                    // also repairs index/table drift.
                    if let Some(&new_rid) = rid_map.get(&old_rid) {
                        new.index_insert(&mut new_txn, new_table, &index, &key, new_rid)?;
                    }
                }
            }
            new.commit(new_txn)?;
            self.commit(old_txn)?;
        }
        new.checkpoint()?;
        Ok(new)
    }

    /// Flushes all state and truncates the write-ahead log. Fails if any
    /// transaction is active (their undo information lives in the log).
    /// New transactions are held off (on the active-set latch) for the
    /// duration.
    pub fn checkpoint(&self) -> Result<()> {
        if self.inner.replica.load(Ordering::Acquire) {
            // A replica's log holds the primary's stream; a local
            // checkpoint would append its own records into that LSN
            // space. Replicas fold via `replica_checkpoint` instead.
            return Err(StorageError::Replication(
                "replica engines checkpoint via replica_checkpoint".into(),
            ));
        }
        let active = self.inner.active.lock().unwrap();
        if !active.is_empty() {
            return Err(StorageError::Corrupt(
                "checkpoint requires no active transactions".into(),
            ));
        }
        self.inner.sync_all()?;
        {
            // No transaction is active, so every allocated id is settled
            // and the persisted floor can jump straight to the allocator.
            let mut cat = self.inner.catalog.read().unwrap().clone();
            cat.txn_floor = self.inner.next_txn.load(Ordering::Acquire);
            catalog::save(&self.inner.pool, &cat)?;
        }
        // Image every dirty page into the log (one batch, one sync)
        // before the in-place writes: a crash that tears one of them is
        // then recoverable from the images.
        self.inner
            .pool
            .flush_all_with(&|batch| self.inner.log_page_images(batch))?;
        // Mark the rotation boundary so replication readers know the
        // stream up to here is checkpoint-consistent (no open txns).
        let seq = self.inner.log(&WalRecord::Checkpoint)?;
        self.inner.sync_to(seq)?;
        self.inner.truncate_wal()?;
        drop(active);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// LSN the next locally appended (or replicated) record will get.
    pub fn wal_next_lsn(&self) -> u64 {
        self.inner.wal.lock().unwrap().wal.next_lsn()
    }

    /// Highest LSN known durable: safe to stream to replicas.
    pub fn wal_durable_lsn(&self) -> u64 {
        self.inner.durable_lsn.load(Ordering::Acquire)
    }

    /// Turns on WAL archive mode: log rotation copies outgoing frames
    /// into `<dir>/wal-archive/` segments instead of discarding them, so
    /// the full history stays replayable (replica bootstrap, point-in-
    /// time restore). On first enablement the engine seeds the archive
    /// with a catalog snapshot and a full image of every page — history
    /// rotated away *before* archiving exists only in the data pages —
    /// then checkpoints, rotating the snapshot into the first segment.
    /// Requires no active transactions. Idempotent; sticky across opens.
    pub fn enable_wal_archive(&self) -> Result<()> {
        let newly = self.inner.wal.lock().unwrap().wal.enable_archive()?;
        if !newly {
            return Ok(());
        }
        {
            let mut cat = self.inner.catalog.read().unwrap().clone();
            cat.txn_floor = self.inner.next_txn.load(Ordering::Acquire);
            self.inner.log(&WalRecord::CatalogSnapshot {
                bytes: cat.to_bytes(),
            })?;
        }
        for page in 0..self.inner.pool.num_pages() {
            let bytes = self.inner.pool.with_page(page, |b| b.to_vec())?;
            self.inner.log(&WalRecord::PageImage { page, bytes })?;
        }
        self.checkpoint()
    }

    /// Reads encoded records at and above `from_lsn`, up to roughly
    /// `max_bytes`, never past the durable watermark. Returns the batch
    /// (LSN, payload) and the durable watermark itself, which doubles as
    /// the lag reference for the replica. Holds the log latch so a
    /// concurrent rotation cannot swap files mid-read.
    pub fn wal_read_from(&self, from_lsn: u64, max_bytes: usize) -> Result<(WalBatch, u64)> {
        let durable = self.wal_durable_lsn();
        let w = self.inner.wal.lock().unwrap();
        let mut out = Vec::new();
        let mut total = 0usize;
        for (lsn, rec) in w.wal.read_from(from_lsn)? {
            if lsn >= durable {
                break;
            }
            let mut payload = Vec::with_capacity(64);
            rec.encode(&mut payload);
            total += payload.len() + 12;
            out.push((lsn, payload));
            if total >= max_bytes {
                break;
            }
        }
        Ok((out, durable))
    }

    /// Switches the engine in or out of replica mode. In replica mode
    /// local transactions must not run; the log is fed exclusively by
    /// [`StorageEngine::replica_apply`]. Promotion flips this back off,
    /// after which the engine appends from where the stream left off —
    /// the LSN space continues seamlessly.
    ///
    /// The role is persisted as a `replica` marker file so a restarted
    /// replica reopens as one: the ordinary open path would otherwise
    /// rotate the log, appending a local checkpoint marker into an LSN
    /// slot the primary's stream has already assigned. (Losing the
    /// *removal* on a crashed promotion errs the safe way — the node
    /// comes back read-only.)
    pub fn set_replica(&self, on: bool) -> Result<()> {
        let marker = self.inner.dir.join("replica");
        if on {
            std::fs::File::create(&marker)?.sync_all()?;
        } else if marker.exists() {
            std::fs::remove_file(&marker)?;
        }
        self.inner.replica.store(on, Ordering::Release);
        Ok(())
    }

    /// True when the engine is in replica mode.
    pub fn is_replica(&self) -> bool {
        self.inner.replica.load(Ordering::Acquire)
    }

    /// Appends a batch of replicated records (LSN, encoded payload) to
    /// the local log verbatim and syncs it. Records below the local
    /// next-LSN are duplicates (crash-window overlap) and are skipped; a
    /// gap is an error except on a virgin log, which re-bases to the
    /// batch start (a primary whose history begins at an archive
    /// snapshot streams from that snapshot's LSN, not 0). Returns the
    /// new next-LSN (= applied watermark).
    pub fn replica_apply(&self, batch: &[(u64, Vec<u8>)]) -> Result<u64> {
        if !self.is_replica() {
            return Err(StorageError::Replication(
                "replica_apply on a non-replica engine".into(),
            ));
        }
        let mut w = self.inner.wal.lock().unwrap();
        for (lsn, payload) in batch {
            let next = w.wal.next_lsn();
            if *lsn < next {
                continue;
            }
            if *lsn > next {
                if next == 0 {
                    w.wal.reset_base(*lsn)?;
                } else {
                    return Err(StorageError::Replication(format!(
                        "gap in replication stream: have {next}, got {lsn}"
                    )));
                }
            }
            let rec = WalRecord::decode(payload).ok_or_else(|| {
                StorageError::Replication(format!("undecodable record at lsn {lsn}"))
            })?;
            // Track the primary's id space: promotion must allocate
            // above every replicated transaction, and the frozen floor
            // (bumped at each fold) must cover every replicated stamp.
            if let Some(t) = rec.txn() {
                self.inner.next_txn.fetch_max(t + 1, Ordering::AcqRel);
            }
            w.append(&rec)?;
        }
        let seq = w.seq;
        w.wal.sync()?;
        let applied = w.wal.next_lsn();
        drop(w);
        self.inner.durable_lsn.fetch_max(applied, Ordering::AcqRel);
        let mut st = self.inner.commit.lock().unwrap();
        st.synced = st.synced.max(seq);
        drop(st);
        Ok(applied)
    }

    /// Folds the local log into the data pages through the recovery
    /// machinery (idempotent: positional redo, wholesale page images,
    /// index reset-and-replay) and installs the resulting catalog.
    /// Incomplete transactions in the log tail are undone in the pages —
    /// exactly crash semantics — but their records remain in the log, so
    /// a later fold (after their Commit arrives) re-applies them.
    pub fn replica_refresh(&self) -> Result<()> {
        if !self.is_replica() {
            return Err(StorageError::Replication(
                "replica_refresh on a non-replica engine".into(),
            ));
        }
        self.fold_log()
    }

    /// As [`StorageEngine::replica_refresh`], then flushes the pages and
    /// rotates the local log (into the replica's own archive when
    /// enabled), bounding its growth. Only legal when the stream is
    /// positioned exactly at a checkpoint marker: the primary guarantees
    /// no transaction spans a marker, so rotation cannot discard records
    /// a committed transaction still needs.
    pub fn replica_checkpoint(&self) -> Result<()> {
        if !self.is_replica() {
            return Err(StorageError::Replication(
                "replica_checkpoint on a non-replica engine".into(),
            ));
        }
        let (records, _) = Wal::replay(&self.inner.dir)?;
        if records.is_empty() {
            return Ok(());
        }
        if !matches!(records.last(), Some(WalRecord::Checkpoint)) {
            return Err(StorageError::Replication(
                "replica checkpoint requires the stream to sit at a checkpoint marker".into(),
            ));
        }
        self.fold_records(&records)?;
        {
            let mut cat = self.inner.catalog.read().unwrap().clone();
            cat.txn_floor = self.inner.next_txn.load(Ordering::Acquire);
            catalog::save(&self.inner.pool, &cat)?;
        }
        // Plain flush: a replica logs no page images (see
        // `eviction_barrier`); a tear here is repaired by re-seeding.
        self.inner.pool.flush_all()?;
        self.inner.truncate_wal()
    }

    fn fold_log(&self) -> Result<()> {
        let (records, _) = Wal::replay(&self.inner.dir)?;
        if records.is_empty() {
            return Ok(());
        }
        self.fold_records(&records)
    }

    fn fold_records(&self, records: &[WalRecord]) -> Result<()> {
        // The fold rewrites pages through the recovery machinery, whose
        // intermediate states (losers applied, not yet undone) no
        // snapshot may observe: the gate drains open snapshots, blocks
        // new ones, and on exit freezes every replicated stamp.
        self.inner.mvcc.enter_fold();
        let res = self.fold_records_gated(records);
        self.inner.mvcc.exit_fold();
        res
    }

    fn fold_records_gated(&self, records: &[WalRecord]) -> Result<()> {
        let base = self.inner.catalog.read().unwrap().clone();
        let (outcome, recovered) = recovery::recover(&self.inner.pool, records, Some(base))?;
        *self.inner.catalog.write().unwrap() = recovered;
        self.inner.heaps.write().unwrap().clear();
        if outcome.indexes_reset {
            self.inner
                .indexes_need_rebuild
                .store(true, Ordering::Release);
            Self::write_rebuild_marker(&self.inner.dir, true)?;
        }
        Ok(())
    }

    /// Buffer-pool statistics: (hits, misses, evictions).
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        self.inner.pool.stats()
    }

    /// A point-in-time snapshot of every metric registered with this
    /// engine's registry (pool, WAL, locks, transactions — plus whatever
    /// the embedding layer registered when it shared the registry).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.inner.metrics.registry.snapshot()
    }

    /// The metrics registry this engine reports into.
    pub fn metrics_registry(&self) -> Registry {
        self.inner.metrics.registry.clone()
    }

    /// Number of pages in the database file.
    pub fn num_pages(&self) -> u64 {
        self.inner.pool.num_pages()
    }

    fn check_active(&self, txn: &Txn) -> Result<()> {
        if txn.finished || !self.inner.active.lock().unwrap().contains(&txn.id) {
            return Err(StorageError::TxnNotActive(txn.id));
        }
        Ok(())
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Best-effort clean shutdown: if no transaction is in flight,
        // checkpoint so the next open skips recovery and keeps indexes.
        // `Inner` is dropping, so these latches have no other holders;
        // `into_inner` on a poisoned latch still yields the data.
        fn unpoison<T>(r: std::sync::LockResult<T>) -> T {
            r.unwrap_or_else(std::sync::PoisonError::into_inner)
        }
        if unpoison(self.commit.get_mut()).poisoned {
            // A failed WAL fsync poisoned the engine: nothing since is
            // known durable, so a shutdown checkpoint (flush pages,
            // truncate the log) would *discard* the very log records
            // recovery needs. Leave every file exactly as it is.
            return;
        }
        if self.replica.load(Ordering::Acquire) {
            // A replica's log is the primary's stream: the shutdown
            // checkpoint would fold and discard records the next fold
            // still needs, and would append local records into the
            // stream's LSN space. Sync what arrived and stop.
            let _ = unpoison(self.wal.lock()).wal.sync();
            return;
        }
        let active_empty = unpoison(self.active.get_mut()).is_empty();
        let _ = unpoison(self.wal.lock()).wal.sync();
        if !active_empty {
            // Leave the log for recovery to roll the stragglers back.
            return;
        }
        // The barrier's `Weak` is dead by now, so saving the catalog may
        // fail if it needs to evict a dirty page; that just downgrades
        // the clean shutdown to a recovery on next open. The flush logs
        // full-page images itself (through the latch, which still works
        // mid-drop) so a crash tearing one of its writes stays
        // recoverable.
        let saved = {
            let mut cat = unpoison(self.catalog.read()).clone();
            // No transaction is in flight, so the persisted floor can
            // jump to the allocator: every surviving stamp freezes.
            cat.txn_floor = self.next_txn.load(Ordering::Acquire);
            catalog::save(&self.pool, &cat)
        };
        let flushed = saved.and_then(|_| {
            self.pool.flush_all_with(&|batch| {
                let mut w = unpoison(self.wal.lock());
                for (page, bytes) in batch {
                    w.append(&WalRecord::PageImage {
                        page: *page,
                        bytes: bytes.clone(),
                    })?;
                }
                w.wal.sync()
            })
        });
        if flushed.is_ok() {
            let mut w = unpoison(self.wal.lock());
            // Mark the rotation boundary for replication readers, as the
            // live checkpoint path does.
            let marked = w.append(&WalRecord::Checkpoint).and_then(|_| {
                w.wal.sync()?;
                Ok(0)
            });
            if marked.is_ok() {
                let _ = w.wal.truncate();
            }
        }
    }
}
