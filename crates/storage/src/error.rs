//! Error type for the storage engine.

use std::fmt;
use std::io;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A page id referred to a page that does not exist.
    PageNotFound(u64),
    /// A record id referred to a record that does not exist.
    RecordNotFound { page: u64, slot: u16 },
    /// A record was too large to fit in a single page.
    RecordTooLarge(usize),
    /// The named table does not exist.
    NoSuchTable(String),
    /// The named index does not exist.
    NoSuchIndex(String),
    /// A table with this name already exists.
    TableExists(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// The transaction was aborted to avoid deadlock (wait-die policy).
    Deadlock,
    /// An operation was attempted on a transaction that is not active.
    TxnNotActive(u64),
    /// The write-ahead log was corrupt beyond the given offset.
    WalCorrupt(u64),
    /// A WAL fsync failed earlier in this engine's lifetime. The OS may
    /// have dropped the dirty log bytes the failed fsync covered
    /// (fsyncgate), so no later commit can honestly claim durability;
    /// the engine refuses all further commits until reopened, when
    /// recovery re-establishes a consistent durable prefix.
    WalPoisoned,
    /// The database files were corrupt.
    Corrupt(String),
    /// A replication stream violated its contract (gap, stale batch,
    /// or an apply attempted on a node in the wrong role).
    Replication(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record not found at page {page} slot {slot}")
            }
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds maximum record size")
            }
            StorageError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            StorageError::NoSuchIndex(n) => write!(f, "no such index: {n}"),
            StorageError::TableExists(n) => write!(f, "table already exists: {n}"),
            StorageError::IndexExists(n) => write!(f, "index already exists: {n}"),
            StorageError::Deadlock => write!(f, "transaction aborted by wait-die deadlock policy"),
            StorageError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            StorageError::WalCorrupt(off) => write!(f, "write-ahead log corrupt at offset {off}"),
            StorageError::WalPoisoned => write!(
                f,
                "write-ahead log poisoned by an earlier failed fsync; reopen to recover"
            ),
            StorageError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            StorageError::Replication(m) => write!(f, "replication error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
