//! The buffer pool: a sharded in-memory page cache with CLOCK eviction.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based, which keeps lifetimes simple. The pool is internally
//! sharded: each page id maps to one of up to 16 shards (`page_id %
//! num_shards`), and each shard owns its frames, its page map, and its
//! own CLOCK hand behind a private mutex. Threads touching different
//! pages therefore fault, hit, and evict independently; the engine no
//! longer needs any external latch around page access.
//!
//! A closure runs while its shard latch is held, so closures must never
//! re-enter the pool (no nested `with_page*` calls) — the storage
//! layer's access patterns are all flat single-page operations.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};

/// Upper bound on shard count; small pools get fewer shards so each
/// shard still has at least two frames to run CLOCK over.
const MAX_SHARDS: usize = 16;

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

/// One shard: a fixed set of frames plus the CLOCK state over them.
struct Shard {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
}

/// Fixed-capacity sharded page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: DiskManager,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// Opens the database file in `dir` with a cache of `capacity` pages.
    pub fn open(dir: &Path, capacity: usize) -> Result<BufferPool> {
        assert!(capacity >= 2, "buffer pool needs at least two frames");
        // Every shard needs ≥2 frames for CLOCK to have a choice, so the
        // shard count is bounded by capacity/2 as well as MAX_SHARDS.
        let num_shards = (capacity / 2).clamp(1, MAX_SHARDS);
        let per_shard = capacity.div_ceil(num_shards);
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(Shard {
                    frames: (0..per_shard).map(|_| None).collect(),
                    map: HashMap::with_capacity(per_shard),
                    clock_hand: 0,
                })
            })
            .collect();
        Ok(BufferPool {
            disk: DiskManager::open(dir)?,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Number of shards the cache is split into (diagnostics/tests).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache statistics: (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Allocates a fresh page (zeroed on disk) and returns its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        self.disk.allocate_page()
    }

    /// Ensures pages up to `page` exist (recovery support).
    pub fn ensure_page(&self, page: PageId) -> Result<()> {
        self.disk.ensure_page(page)
    }

    fn shard(&self, page: PageId) -> &Mutex<Shard> {
        &self.shards[page as usize % self.shards.len()]
    }

    /// Runs `f` with read access to the page's bytes. The page's shard
    /// latch is held for the duration of `f`; `f` must not re-enter the
    /// pool.
    pub fn with_page<R>(&self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut shard = self.shard(page).lock().unwrap();
        let idx = self.load(&mut shard, page)?;
        let frame = shard.frames[idx].as_ref().expect("frame just loaded");
        Ok(f(&frame.data))
    }

    /// Runs `f` with write access to the page's bytes; the page is marked
    /// dirty. The page's shard latch is held for the duration of `f`;
    /// `f` must not re-enter the pool.
    pub fn with_page_mut<R>(&self, page: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut shard = self.shard(page).lock().unwrap();
        let idx = self.load(&mut shard, page)?;
        let frame = shard.frames[idx].as_mut().expect("frame just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    fn load(&self, shard: &mut Shard, page: PageId) -> Result<usize> {
        if let Some(&idx) = shard.map.get(&page) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            shard.frames[idx].as_mut().expect("mapped frame").referenced = true;
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if page >= self.disk.num_pages() {
            return Err(StorageError::PageNotFound(page));
        }
        let idx = self.victim(shard)?;
        let mut data = match shard.frames[idx].take() {
            Some(f) => f.data,
            None => vec![0u8; PAGE_SIZE].into_boxed_slice(),
        };
        self.disk.read_page(page, &mut data)?;
        shard.frames[idx] = Some(Frame {
            page,
            data,
            dirty: false,
            referenced: true,
        });
        shard.map.insert(page, idx);
        Ok(idx)
    }

    /// CLOCK within one shard: sweep for an unreferenced frame, clearing
    /// reference bits; an empty frame is taken immediately.
    fn victim(&self, shard: &mut Shard) -> Result<usize> {
        let n = shard.frames.len();
        if let Some(idx) = shard.frames.iter().position(Option::is_none) {
            return Ok(idx);
        }
        for _ in 0..2 * n + 1 {
            let idx = shard.clock_hand;
            shard.clock_hand = (shard.clock_hand + 1) % n;
            let frame = shard.frames[idx].as_mut().expect("no empty frames");
            if frame.referenced {
                frame.referenced = false;
            } else {
                let frame = shard.frames[idx].take().expect("checked above");
                shard.map.remove(&frame.page);
                if frame.dirty {
                    self.disk.write_page(frame.page, &frame.data)?;
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
                shard.frames[idx] = None;
                return Ok(idx);
            }
        }
        unreachable!("CLOCK sweep of 2n+1 steps must find a victim");
    }

    /// Writes all dirty frames back and syncs the file.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            for frame in shard.frames.iter_mut().flatten() {
                if frame.dirty {
                    self.disk.write_page(frame.page, &frame.data)?;
                    frame.dirty = false;
                }
            }
        }
        self.disk.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-buf-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn cached_read_after_write() {
        let dir = tmpdir("cache");
        let bp = BufferPool::open(&dir, 4).unwrap();
        let pid = bp.allocate_page().unwrap();
        bp.with_page_mut(pid, |d| d[100] = 42).unwrap();
        let v = bp.with_page(pid, |d| d[100]).unwrap();
        assert_eq!(v, 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let dir = tmpdir("evict");
        let bp = BufferPool::open(&dir, 2).unwrap();
        assert_eq!(bp.num_shards(), 1);
        let pids: Vec<_> = (0..10).map(|_| bp.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            bp.with_page_mut(pid, |d| d[0] = i as u8 + 1).unwrap();
        }
        // All pages written; cache only holds 2, so most were evicted.
        for (i, &pid) in pids.iter().enumerate() {
            let v = bp.with_page(pid, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 8, "expected evictions, saw {evictions}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_all_then_reopen() {
        let dir = tmpdir("flush");
        let pid;
        {
            let bp = BufferPool::open(&dir, 4).unwrap();
            pid = bp.allocate_page().unwrap();
            bp.with_page_mut(pid, |d| {
                page::format_page(d, page::PageType::Heap);
                page::insert_record(d, b"persisted").unwrap();
            })
            .unwrap();
            bp.flush_all().unwrap();
        }
        let bp = BufferPool::open(&dir, 4).unwrap();
        let body = bp
            .with_page(pid, |d| page::get_record(d, 0).map(<[u8]>::to_vec))
            .unwrap();
        assert_eq!(body.as_deref(), Some(&b"persisted"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_counts() {
        let dir = tmpdir("stats");
        let bp = BufferPool::open(&dir, 4).unwrap();
        let pid = bp.allocate_page().unwrap();
        for _ in 0..10 {
            bp.with_page(pid, |_| ()).unwrap();
        }
        let (hits, misses, _) = bp.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_scale_with_capacity() {
        let dir = tmpdir("shards");
        let bp = BufferPool::open(&dir, 64).unwrap();
        assert_eq!(bp.num_shards(), 16);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_land_on_distinct_shards() {
        let dir = tmpdir("conc");
        let bp = BufferPool::open(&dir, 32).unwrap();
        let pids: Vec<_> = (0..24).map(|_| bp.allocate_page().unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &pid) in pids.iter().enumerate() {
                let bp = &bp;
                s.spawn(move || {
                    bp.with_page_mut(pid, |d| d[7] = i as u8 + 1).unwrap();
                });
            }
        });
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(bp.with_page(pid, |d| d[7]).unwrap(), i as u8 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
