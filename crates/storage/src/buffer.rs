//! The buffer pool: an in-memory page cache with CLOCK eviction.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based, which keeps lifetimes simple; the engine serializes access
//! behind a mutex (coarse-grained latching — transaction-level concurrency
//! is provided by the lock manager, not by page latches).

use std::collections::HashMap;
use std::path::Path;

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

/// Fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: DiskManager,
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BufferPool {
    /// Opens the database file in `dir` with a cache of `capacity` pages.
    pub fn open(dir: &Path, capacity: usize) -> Result<BufferPool> {
        assert!(capacity >= 2, "buffer pool needs at least two frames");
        Ok(BufferPool {
            disk: DiskManager::open(dir)?,
            frames: (0..capacity).map(|_| None).collect(),
            map: HashMap::with_capacity(capacity),
            clock_hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Cache statistics: (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Allocates a fresh page (zeroed on disk) and returns its id.
    pub fn allocate_page(&mut self) -> Result<PageId> {
        self.disk.allocate_page()
    }

    /// Ensures pages up to `page` exist (recovery support).
    pub fn ensure_page(&mut self, page: PageId) -> Result<()> {
        self.disk.ensure_page(page)
    }

    /// Runs `f` with read access to the page's bytes.
    pub fn with_page<R>(&mut self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let idx = self.load(page)?;
        let frame = self.frames[idx].as_ref().expect("frame just loaded");
        Ok(f(&frame.data))
    }

    /// Runs `f` with write access to the page's bytes; the page is marked
    /// dirty.
    pub fn with_page_mut<R>(&mut self, page: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let idx = self.load(page)?;
        let frame = self.frames[idx].as_mut().expect("frame just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    fn load(&mut self, page: PageId) -> Result<usize> {
        if let Some(&idx) = self.map.get(&page) {
            self.hits += 1;
            self.frames[idx].as_mut().expect("mapped frame").referenced = true;
            return Ok(idx);
        }
        self.misses += 1;
        if page >= self.disk.num_pages() {
            return Err(StorageError::PageNotFound(page));
        }
        let idx = self.victim()?;
        let mut data = match self.frames[idx].take() {
            Some(f) => f.data,
            None => vec![0u8; PAGE_SIZE].into_boxed_slice(),
        };
        self.disk.read_page(page, &mut data)?;
        self.frames[idx] = Some(Frame {
            page,
            data,
            dirty: false,
            referenced: true,
        });
        self.map.insert(page, idx);
        Ok(idx)
    }

    /// CLOCK: sweep for an unreferenced frame, clearing reference bits;
    /// an empty frame is taken immediately.
    fn victim(&mut self) -> Result<usize> {
        let n = self.frames.len();
        if let Some(idx) = self.frames.iter().position(Option::is_none) {
            return Ok(idx);
        }
        for _ in 0..2 * n + 1 {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            let frame = self.frames[idx].as_mut().expect("no empty frames");
            if frame.referenced {
                frame.referenced = false;
            } else {
                let frame = self.frames[idx].take().expect("checked above");
                self.map.remove(&frame.page);
                if frame.dirty {
                    self.disk.write_page(frame.page, &frame.data)?;
                }
                self.evictions += 1;
                self.frames[idx] = None;
                return Ok(idx);
            }
        }
        unreachable!("CLOCK sweep of 2n+1 steps must find a victim");
    }

    /// Writes all dirty frames back and syncs the file.
    pub fn flush_all(&mut self) -> Result<()> {
        for frame in self.frames.iter_mut().flatten() {
            if frame.dirty {
                self.disk.write_page(frame.page, &frame.data)?;
                frame.dirty = false;
            }
        }
        self.disk.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-buf-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn cached_read_after_write() {
        let dir = tmpdir("cache");
        let mut bp = BufferPool::open(&dir, 4).unwrap();
        let pid = bp.allocate_page().unwrap();
        bp.with_page_mut(pid, |d| d[100] = 42).unwrap();
        let v = bp.with_page(pid, |d| d[100]).unwrap();
        assert_eq!(v, 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let dir = tmpdir("evict");
        let mut bp = BufferPool::open(&dir, 2).unwrap();
        let pids: Vec<_> = (0..10).map(|_| bp.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            bp.with_page_mut(pid, |d| d[0] = i as u8 + 1).unwrap();
        }
        // All pages written; cache only holds 2, so most were evicted.
        for (i, &pid) in pids.iter().enumerate() {
            let v = bp.with_page(pid, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 8, "expected evictions, saw {evictions}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_all_then_reopen() {
        let dir = tmpdir("flush");
        let pid;
        {
            let mut bp = BufferPool::open(&dir, 4).unwrap();
            pid = bp.allocate_page().unwrap();
            bp.with_page_mut(pid, |d| {
                page::format_page(d, page::PageType::Heap);
                page::insert_record(d, b"persisted").unwrap();
            })
            .unwrap();
            bp.flush_all().unwrap();
        }
        let mut bp = BufferPool::open(&dir, 4).unwrap();
        let body = bp
            .with_page(pid, |d| page::get_record(d, 0).map(<[u8]>::to_vec))
            .unwrap();
        assert_eq!(body.as_deref(), Some(&b"persisted"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_counts() {
        let dir = tmpdir("stats");
        let mut bp = BufferPool::open(&dir, 4).unwrap();
        let pid = bp.allocate_page().unwrap();
        for _ in 0..10 {
            bp.with_page(pid, |_| ()).unwrap();
        }
        let (hits, misses, _) = bp.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 9);
        std::fs::remove_dir_all(&dir).ok();
    }
}
