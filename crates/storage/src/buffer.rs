//! The buffer pool: a sharded in-memory page cache with CLOCK eviction.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based, which keeps lifetimes simple. The pool is internally
//! sharded: each page id maps to one of up to 16 shards (`page_id %
//! num_shards`), and each shard owns its frames, its page map, its own
//! CLOCK hand, and its own hit/miss/eviction counters behind a private
//! mutex. Threads touching different pages therefore fault, hit, and
//! evict independently; the engine no longer needs any external latch
//! around page access.
//!
//! A closure runs while its shard latch is held, so closures must never
//! re-enter the pool (no nested `with_page*` calls) — the storage
//! layer's access patterns are all flat single-page operations.
//!
//! # Page-LSN flush discipline
//!
//! The engine mutates pages first and appends the covering WAL record
//! after, so the record's sequence number is unknown at mutation time.
//! [`BufferPool::with_page_mut_logged`] therefore marks the frame
//! *pending*: it is pinned against eviction until the engine calls
//! [`BufferPool::publish_lsn`] with the appended record's sequence
//! number, which stamps the frame's LSN. When CLOCK later evicts a
//! dirty frame, it first runs the engine-installed *flush barrier*
//! ([`BufferPool::set_flush_barrier`]) to sync the WAL through the
//! frame's LSN — the ARIES write-ahead rule: no page reaches disk
//! before the log records describing its changes. Without a barrier
//! installed (standalone pool use, recovery, unlogged B+tree and
//! catalog writes) the logged variants degrade to plain mutable access
//! and eviction writes pages directly.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use mdm_obs::{trace, Counter};

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};

/// Upper bound on shard count; small pools get fewer shards so each
/// shard still has at least two frames to run CLOCK over.
const MAX_SHARDS: usize = 16;

/// How many lock-release/yield cycles a loader tolerates when every
/// frame of a shard is pending a log publish, before giving up. The
/// pending window is the few microseconds between a page mutation and
/// its WAL append, so exhausting this bound means something is wrong.
const PIN_RETRY_LIMIT: u32 = 100_000;

/// Runs before eviction writes a dirty page in place, with the page id,
/// the bytes about to be written, and the frame's page-LSN. The engine
/// uses it to (a) sync the WAL through the page-LSN (the ARIES
/// write-ahead rule) and (b) log a durable full-page image first, so a
/// write torn by a crash can be recovered wholesale from the log.
pub type FlushBarrier = Box<dyn Fn(PageId, &[u8], u64) -> Result<()> + Send + Sync>;

/// Pre-flush hook for [`BufferPool::flush_all_with`]: receives every
/// dirty frame's `(page, bytes)` in one batch before any in-place write.
pub type PreFlush<'a> = dyn Fn(&[(PageId, Vec<u8>)]) -> Result<()> + 'a;

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
    /// Sequence number of the WAL record covering the last logged
    /// mutation (0 = never logged). Eviction syncs the log through this
    /// before writing the frame.
    lsn: u64,
    /// Logged mutations whose WAL record has not been appended yet; the
    /// frame is pinned against eviction while nonzero.
    pending: u32,
}

/// One shard: a fixed set of frames plus the CLOCK state over them.
struct Shard {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

/// Fixed-capacity sharded page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: DiskManager,
    shards: Vec<Mutex<Shard>>,
    barrier: OnceLock<FlushBarrier>,
}

impl BufferPool {
    /// Opens the database file in `dir` with a cache of `capacity` pages.
    pub fn open(dir: &Path, capacity: usize) -> Result<BufferPool> {
        Self::open_with(dir, capacity, &crate::backend::FileVfs)
    }

    /// As [`BufferPool::open`], sourcing the disk backend from `vfs`.
    pub fn open_with(
        dir: &Path,
        capacity: usize,
        vfs: &dyn crate::backend::Vfs,
    ) -> Result<BufferPool> {
        assert!(capacity >= 2, "buffer pool needs at least two frames");
        // Every shard needs ≥2 frames for CLOCK to have a choice, so the
        // shard count is bounded by capacity/2 as well as MAX_SHARDS.
        let num_shards = (capacity / 2).clamp(1, MAX_SHARDS);
        let per_shard = capacity.div_ceil(num_shards);
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(Shard {
                    frames: (0..per_shard).map(|_| None).collect(),
                    map: HashMap::with_capacity(per_shard),
                    clock_hand: 0,
                    hits: Counter::new(),
                    misses: Counter::new(),
                    evictions: Counter::new(),
                })
            })
            .collect();
        Ok(BufferPool {
            disk: DiskManager::open_with(dir, vfs)?,
            shards,
            barrier: OnceLock::new(),
        })
    }

    /// Installs the eviction flush barrier (at most once, by the engine).
    /// From this point on, logged mutations pin their frames until
    /// [`BufferPool::publish_lsn`], and dirty evictions call the barrier
    /// with the frame's LSN before writing the page.
    pub fn set_flush_barrier(&self, barrier: FlushBarrier) {
        if self.barrier.set(barrier).is_err() {
            panic!("flush barrier installed twice");
        }
    }

    /// Registers this pool's per-shard hit/miss/eviction counters with a
    /// metrics registry.
    pub fn register_metrics(&self, registry: &mdm_obs::Registry) {
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().unwrap();
            let idx = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &idx)];
            registry.register_counter_handle(
                "mdm_pool_hits_total",
                "buffer-pool page requests served from cache",
                labels,
                Arc::clone(&shard.hits),
            );
            registry.register_counter_handle(
                "mdm_pool_misses_total",
                "buffer-pool page requests that faulted from disk",
                labels,
                Arc::clone(&shard.misses),
            );
            registry.register_counter_handle(
                "mdm_pool_evictions_total",
                "buffer-pool frames evicted to make room",
                labels,
                Arc::clone(&shard.evictions),
            );
        }
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Number of shards the cache is split into (diagnostics/tests).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache statistics summed over shards: (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        let mut totals = (0, 0, 0);
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            totals.0 += shard.hits.get();
            totals.1 += shard.misses.get();
            totals.2 += shard.evictions.get();
        }
        totals
    }

    /// Allocates a fresh page (zeroed on disk) and returns its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        self.disk.allocate_page()
    }

    /// Ensures pages up to `page` exist (recovery support).
    pub fn ensure_page(&self, page: PageId) -> Result<()> {
        self.disk.ensure_page(page)
    }

    fn shard(&self, page: PageId) -> &Mutex<Shard> {
        &self.shards[page as usize % self.shards.len()]
    }

    /// Locks the page's shard, loads the page, and runs `f` on its frame.
    /// Retries (releasing the latch) while the shard is wholly pinned by
    /// frames awaiting log publishes — that window is microseconds long.
    fn with_frame<R>(&self, page: PageId, f: impl FnOnce(&mut Frame) -> R) -> Result<R> {
        let mut spins = 0;
        loop {
            let mut shard = self.shard(page).lock().unwrap();
            if let Some(idx) = self.load(&mut shard, page)? {
                let frame = shard.frames[idx].as_mut().expect("frame just loaded");
                return Ok(f(frame));
            }
            drop(shard);
            spins += 1;
            if spins > PIN_RETRY_LIMIT {
                return Err(StorageError::Corrupt(
                    "buffer pool shard exhausted: every frame awaits a log publish".into(),
                ));
            }
            std::thread::yield_now();
        }
    }

    /// Runs `f` with read access to the page's bytes. The page's shard
    /// latch is held for the duration of `f`; `f` must not re-enter the
    /// pool.
    pub fn with_page<R>(&self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.with_frame(page, |frame| f(&frame.data))
    }

    /// Runs `f` with write access to the page's bytes; the page is marked
    /// dirty. For *unlogged* mutations (B+tree nodes, catalog pages,
    /// recovery/rollback writes) whose durability does not depend on WAL
    /// ordering. The page's shard latch is held for the duration of `f`;
    /// `f` must not re-enter the pool.
    pub fn with_page_mut<R>(&self, page: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        self.with_frame(page, |frame| {
            frame.dirty = true;
            f(&mut frame.data)
        })
    }

    /// As [`BufferPool::with_page_mut`] for mutations that a WAL record
    /// will cover. `f` returns `(result, mutated)`; when `mutated` is
    /// true (and a flush barrier is installed) the frame is pinned until
    /// the caller appends the record and calls
    /// [`BufferPool::publish_lsn`]. A `false` report must mean the bytes
    /// are unchanged.
    pub fn with_page_mut_logged<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&mut [u8]) -> (R, bool),
    ) -> Result<R> {
        let wal_mode = self.barrier.get().is_some();
        self.with_frame(page, |frame| {
            let (r, mutated) = f(&mut frame.data);
            if mutated {
                frame.dirty = true;
                if wal_mode {
                    frame.pending += 1;
                }
            }
            r
        })
    }

    /// Reports that the WAL record covering a logged mutation of `page`
    /// has been appended at sequence number `lsn`: unpins one pending
    /// mutation and raises the frame's page-LSN. Callers must publish
    /// exactly once per mutated `true` report from
    /// [`BufferPool::with_page_mut_logged`] (even if the append failed —
    /// publish the latest appended sequence to conservatively cover the
    /// orphaned change).
    pub fn publish_lsn(&self, page: PageId, lsn: u64) {
        let mut shard = self.shard(page).lock().unwrap();
        if let Some(&idx) = shard.map.get(&page) {
            let frame = shard.frames[idx].as_mut().expect("mapped frame");
            frame.pending = frame.pending.saturating_sub(1);
            frame.lsn = frame.lsn.max(lsn);
        }
    }

    /// Loads `page` into a frame, returning its index — or `None` when
    /// every frame of the shard is pinned pending a log publish.
    fn load(&self, shard: &mut Shard, page: PageId) -> Result<Option<usize>> {
        if let Some(&idx) = shard.map.get(&page) {
            shard.hits.inc();
            shard.frames[idx].as_mut().expect("mapped frame").referenced = true;
            return Ok(Some(idx));
        }
        shard.misses.inc();
        if page >= self.disk.num_pages() {
            return Err(StorageError::PageNotFound(page));
        }
        // A miss does real I/O (possibly a dirty eviction first): span it.
        let _sp = trace::span("storage.page_read");
        trace::annotate("page", page);
        let Some(idx) = self.victim(shard)? else {
            return Ok(None);
        };
        let mut data = match shard.frames[idx].take() {
            Some(f) => f.data,
            None => vec![0u8; PAGE_SIZE].into_boxed_slice(),
        };
        self.disk.read_page(page, &mut data)?;
        shard.frames[idx] = Some(Frame {
            page,
            data,
            dirty: false,
            referenced: true,
            lsn: 0,
            pending: 0,
        });
        shard.map.insert(page, idx);
        Ok(Some(idx))
    }

    /// CLOCK within one shard: sweep for an unreferenced, unpinned frame,
    /// clearing reference bits; an empty frame is taken immediately.
    /// Returns `None` if every frame is pinned pending a log publish.
    fn victim(&self, shard: &mut Shard) -> Result<Option<usize>> {
        let n = shard.frames.len();
        if let Some(idx) = shard.frames.iter().position(Option::is_none) {
            return Ok(Some(idx));
        }
        for _ in 0..2 * n + 1 {
            let idx = shard.clock_hand;
            shard.clock_hand = (shard.clock_hand + 1) % n;
            let frame = shard.frames[idx].as_mut().expect("no empty frames");
            if frame.pending > 0 {
                // Awaiting its WAL append; unevictable, skip without
                // touching the reference bit.
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                let frame = shard.frames[idx].take().expect("checked above");
                shard.map.remove(&frame.page);
                if frame.dirty {
                    // Write-ahead rule: the log must cover the page's
                    // last logged mutation before the page hits disk —
                    // and must hold a full image of what is about to be
                    // written, so a torn write is recoverable. Unlogged
                    // dirty pages (lsn 0: B+tree nodes, catalog chains)
                    // need the image for the same reason.
                    let flushed = (|| {
                        if let Some(barrier) = self.barrier.get() {
                            barrier(frame.page, &frame.data, frame.lsn)?;
                        }
                        self.disk.write_page(frame.page, &frame.data)
                    })();
                    if let Err(e) = flushed {
                        // A failed barrier or page write must not lose
                        // the dirty frame: restore it and surface the
                        // error — the page stays resident and unpublished
                        // until a later eviction (or flush) succeeds.
                        shard.map.insert(frame.page, idx);
                        shard.frames[idx] = Some(frame);
                        return Err(e);
                    }
                }
                shard.evictions.inc();
                shard.frames[idx] = None;
                return Ok(Some(idx));
            }
        }
        // 2n+1 steps clear every reference bit and revisit each frame, so
        // the only way out without a victim is every frame pinned.
        Ok(None)
    }

    /// Writes all dirty frames back and syncs the file. Callers must
    /// sync the WAL first (checkpoint and clean shutdown both do), since
    /// this path writes pages without consulting the flush barrier.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            for frame in shard.frames.iter_mut().flatten() {
                if frame.dirty {
                    self.disk.write_page(frame.page, &frame.data)?;
                    frame.dirty = false;
                }
            }
        }
        self.disk.sync()
    }

    /// As [`BufferPool::flush_all`], but hands every dirty frame's
    /// `(page, bytes)` to `pre` in one batch *before* any in-place write
    /// happens — the engine logs (and syncs) full-page images there, so
    /// a crash that tears one of the writes is recoverable from the log.
    /// Callers must have quiesced writers (checkpoint holds the
    /// active-transaction latch; shutdown is exclusive): a page dirtied
    /// between the batch and its write would go out unimaged.
    pub fn flush_all_with(&self, pre: &PreFlush) -> Result<()> {
        let mut batch: Vec<(PageId, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for frame in shard.frames.iter().flatten() {
                if frame.dirty {
                    batch.push((frame.page, frame.data.to_vec()));
                }
            }
        }
        pre(&batch)?;
        for (page, _) in &batch {
            let mut shard = self.shard(*page).lock().unwrap();
            if let Some(&idx) = shard.map.get(page) {
                let frame = shard.frames[idx].as_mut().expect("mapped frame");
                if frame.dirty {
                    self.disk.write_page(frame.page, &frame.data)?;
                    frame.dirty = false;
                }
            }
        }
        self.disk.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mdm-buf-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn cached_read_after_write() {
        let dir = tmpdir("cache");
        let bp = BufferPool::open(&dir, 4).unwrap();
        let pid = bp.allocate_page().unwrap();
        bp.with_page_mut(pid, |d| d[100] = 42).unwrap();
        let v = bp.with_page(pid, |d| d[100]).unwrap();
        assert_eq!(v, 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let dir = tmpdir("evict");
        let bp = BufferPool::open(&dir, 2).unwrap();
        assert_eq!(bp.num_shards(), 1);
        let pids: Vec<_> = (0..10).map(|_| bp.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            bp.with_page_mut(pid, |d| d[0] = i as u8 + 1).unwrap();
        }
        // All pages written; cache only holds 2, so most were evicted.
        for (i, &pid) in pids.iter().enumerate() {
            let v = bp.with_page(pid, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 8, "expected evictions, saw {evictions}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_all_then_reopen() {
        let dir = tmpdir("flush");
        let pid;
        {
            let bp = BufferPool::open(&dir, 4).unwrap();
            pid = bp.allocate_page().unwrap();
            bp.with_page_mut(pid, |d| {
                page::format_page(d, page::PageType::Heap);
                page::insert_record(d, b"persisted").unwrap();
            })
            .unwrap();
            bp.flush_all().unwrap();
        }
        let bp = BufferPool::open(&dir, 4).unwrap();
        let body = bp
            .with_page(pid, |d| page::get_record(d, 0).map(<[u8]>::to_vec))
            .unwrap();
        assert_eq!(body.as_deref(), Some(&b"persisted"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_counts() {
        let dir = tmpdir("stats");
        let bp = BufferPool::open(&dir, 4).unwrap();
        let pid = bp.allocate_page().unwrap();
        for _ in 0..10 {
            bp.with_page(pid, |_| ()).unwrap();
        }
        let (hits, misses, _) = bp.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_scale_with_capacity() {
        let dir = tmpdir("shards");
        let bp = BufferPool::open(&dir, 64).unwrap();
        assert_eq!(bp.num_shards(), 16);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_land_on_distinct_shards() {
        let dir = tmpdir("conc");
        let bp = BufferPool::open(&dir, 32).unwrap();
        let pids: Vec<_> = (0..24).map(|_| bp.allocate_page().unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &pid) in pids.iter().enumerate() {
                let bp = &bp;
                s.spawn(move || {
                    bp.with_page_mut(pid, |d| d[7] = i as u8 + 1).unwrap();
                });
            }
        });
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(bp.with_page(pid, |d| d[7]).unwrap(), i as u8 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logged_mutation_without_barrier_is_plain() {
        let dir = tmpdir("nolog");
        let bp = BufferPool::open(&dir, 2).unwrap();
        let pids: Vec<_> = (0..8).map(|_| bp.allocate_page().unwrap()).collect();
        // No barrier installed: logged mutations never pin, so heavy
        // eviction traffic with no publish calls must still succeed.
        for (i, &pid) in pids.iter().enumerate() {
            bp.with_page_mut_logged(pid, |d| {
                d[0] = i as u8 + 1;
                ((), true)
            })
            .unwrap();
        }
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(bp.with_page(pid, |d| d[0]).unwrap(), i as u8 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_runs_barrier_with_page_lsn() {
        let dir = tmpdir("barrier");
        let bp = BufferPool::open(&dir, 2).unwrap();
        static SYNCED_THROUGH: AtomicU64 = AtomicU64::new(0);
        SYNCED_THROUGH.store(0, Ordering::SeqCst);
        bp.set_flush_barrier(Box::new(|_page, _bytes, lsn| {
            SYNCED_THROUGH.fetch_max(lsn, Ordering::SeqCst);
            Ok(())
        }));
        let pids: Vec<_> = (0..6).map(|_| bp.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            bp.with_page_mut_logged(pid, |d| {
                d[0] = 1;
                ((), true)
            })
            .unwrap();
            // Publish an increasing LSN, as the engine does post-append.
            bp.publish_lsn(pid, i as u64 + 1);
        }
        // Touch fresh pages to force the dirty, published frames out.
        for _ in 0..4 {
            let pid = bp.allocate_page().unwrap();
            bp.with_page(pid, |_| ()).unwrap();
        }
        assert!(
            SYNCED_THROUGH.load(Ordering::SeqCst) >= 1,
            "evicting a dirty page with a page-LSN must call the barrier"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pending_frames_are_not_evicted() {
        let dir = tmpdir("pending");
        let bp = BufferPool::open(&dir, 2).unwrap();
        bp.set_flush_barrier(Box::new(|_, _, _| Ok(())));
        let pinned = bp.allocate_page().unwrap();
        bp.with_page_mut_logged(pinned, |d| {
            d[0] = 99;
            ((), true)
        })
        .unwrap();
        // One frame pinned, one free: traffic cycles through the free
        // frame while the pinned page stays resident and unwritten.
        for _ in 0..6 {
            let pid = bp.allocate_page().unwrap();
            bp.with_page_mut(pid, |d| d[1] = 1).unwrap();
        }
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 4, "unpinned frame must keep cycling");
        assert_eq!(bp.with_page(pinned, |d| d[0]).unwrap(), 99);
        bp.publish_lsn(pinned, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
