//! Multi-version concurrency control: tuple stamps, version chains, and
//! snapshot visibility.
//!
//! Every heap tuple the engine writes is prefixed with an 8-byte
//! little-endian *xmin* — the id of the transaction that created that
//! tuple version. The stamp travels transparently through the WAL, undo
//! images, recovery replay, replication, and archive page images: it is
//! part of the record body at every layer below the engine's DML facade,
//! which strips it again before handing bytes back to callers.
//!
//! A read-only [`crate::engine::ReadSnapshot`] fixes a *commit epoch* at
//! open and resolves every tuple through [`MvccState::resolve`]:
//!
//! - a tuple whose xmin committed at or before the snapshot's epoch is
//!   visible;
//! - a tuple whose xmin is still in flight, aborted, or committed after
//!   the epoch is not — the reader walks the rid's in-memory *version
//!   chain* (old bodies pushed aside by updates and deletes) newest-first
//!   and takes the first version whose creator is visible and whose
//!   expiry (the overwriting transaction's commit epoch) lies after the
//!   snapshot.
//!
//! Epochs are allocated by a counter incremented under the MVCC latch at
//! commit *registration* — after the commit record is durable, before
//! locks release — not from the raw WAL sequence: group-commit followers
//! finish out of order, and two committers syncing the same fsync batch
//! must still register in a serial order that visibility can compare.
//!
//! # Garbage collection
//!
//! The *GC horizon* is the oldest open snapshot's epoch (or the current
//! epoch when none is open). A chain version whose expiry epoch is at or
//! below the horizon is invisible to every present and future snapshot
//! and is reclaimed; commit registrations at or below the horizon are
//! likewise pruned, after which their stamps resolve through the
//! *frozen* rule: any xmin below [`MvccState::frozen_floor`] — or any
//! xmin the tracker has simply never heard of, such as replicated or
//! pre-MVCC data — is visible to everyone. Aborted-transaction
//! tombstones are kept while any snapshot is open (a reader may have
//! captured page bytes the rollback has since restored) and dropped only
//! once no capture can be in flight.
//!
//! # Latching
//!
//! The MVCC latch is self-contained: it is taken *last* in the engine's
//! latch order and never held across any other latch acquisition. The
//! fold gate (used by replica folds, whose page rewrites would otherwise
//! race open snapshots) waits on the same latch's condvar.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use mdm_obs::{Counter, Gauge, Registry};

use crate::wal::{TableId, TxnId};

/// A commit-ordered epoch: position in the serial order of commit
/// registrations. Snapshots compare against it; it is never persisted.
pub type Epoch = u64;

/// Length of the xmin stamp prefixed to every stored tuple body.
pub const STAMP_LEN: usize = 8;

/// Prefixes `body` with the creating transaction's stamp.
pub fn stamp(txn: TxnId, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(STAMP_LEN + body.len());
    out.extend_from_slice(&txn.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a stored tuple into `(xmin, user body)`. Bodies shorter than a
/// stamp (none are written by this engine, but torn or legacy data could
/// present one) read as frozen — xmin 0, visible to everyone.
pub fn split(stored: &[u8]) -> (TxnId, &[u8]) {
    match stored.get(..STAMP_LEN) {
        Some(prefix) => (
            TxnId::from_le_bytes(prefix.try_into().unwrap()),
            &stored[STAMP_LEN..],
        ),
        None => (0, stored),
    }
}

/// The user-visible body of a stored tuple (the stamp stripped). Layers
/// that parse raw WAL record bodies — the replication statement decoder,
/// for one — go through this instead of hard-coding the offset.
pub fn user_body(stored: &[u8]) -> &[u8] {
    split(stored).1
}

/// When a chain version stops being current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expire {
    /// The overwriting/deleting transaction is still in flight; if it
    /// aborts, the version is retracted rather than ever expiring.
    Pending(TxnId),
    /// The overwrite committed at this epoch: the version is current for
    /// snapshots strictly below it.
    Committed(Epoch),
}

/// One superseded tuple version, kept until no snapshot can see it.
#[derive(Debug, Clone)]
struct Version {
    xmin: TxnId,
    expire: Expire,
    /// The stored body *without* its stamp (xmin carries it).
    body: Vec<u8>,
}

#[derive(Default)]
struct MvccInner {
    /// The commit-registration counter; also the epoch a new snapshot
    /// fixes.
    epoch: Epoch,
    /// Commit epochs of transactions not yet pruned below the horizon.
    committed: HashMap<TxnId, Epoch>,
    /// Writers in flight (or abandoned by a failed commit sync), with
    /// the `(table, rid)` pairs whose old versions they pushed aside.
    in_flight: HashMap<TxnId, Vec<(TableId, u64)>>,
    /// Aborted-transaction tombstones, kept while snapshots are open so
    /// captured-then-rolled-back stamps resolve invisible.
    aborted: HashSet<TxnId>,
    /// Open snapshots: epoch → refcount.
    snapshots: BTreeMap<Epoch, usize>,
    /// Version chains by `(table, rid)`, oldest first.
    chains: HashMap<(TableId, u64), Vec<Version>>,
    /// A replica fold is rewriting pages; snapshot opens wait.
    folding: bool,
}

impl MvccInner {
    /// The visibility rule for a creating transaction id at a snapshot
    /// epoch. `frozen_floor` is the engine-wide floor below which every
    /// id is known committed-and-pruned.
    fn xmin_visible(&self, xmin: TxnId, epoch: Epoch, frozen_floor: TxnId) -> bool {
        if xmin < frozen_floor {
            return true;
        }
        if let Some(&e) = self.committed.get(&xmin) {
            return e <= epoch;
        }
        if self.aborted.contains(&xmin) || self.in_flight.contains_key(&xmin) {
            return false;
        }
        // Unknown to the tracker: replicated, pre-MVCC, or pruned below
        // the horizon — in every case committed before any open snapshot.
        true
    }

    /// The oldest epoch any open snapshot observes (the GC horizon).
    fn horizon(&self) -> Epoch {
        self.snapshots.keys().next().copied().unwrap_or(self.epoch)
    }
}

/// Engine-wide MVCC state: the tracker every stamp resolves through.
pub(crate) struct MvccState {
    inner: Mutex<MvccInner>,
    /// Wakes fold-gate waiters (snapshot opens during a fold, folds
    /// waiting for snapshots to drain).
    gate: Condvar,
    /// Shared with the engine's transaction-id allocator so the floor
    /// can advance to "next id" without racing an allocation.
    next_txn: Arc<AtomicU64>,
    /// Ids strictly below this are committed-and-pruned: visible to
    /// every snapshot without taking the latch.
    frozen_floor: AtomicU64,
    /// Number of chain versions alive; zero lets readers skip the chain
    /// walk entirely.
    live: AtomicU64,
    snapshots_total: Arc<Counter>,
    snapshots_open: Arc<Gauge>,
    versions_live: Arc<Gauge>,
    versions_reclaimed: Arc<Counter>,
    commit_epoch: Arc<Gauge>,
}

impl MvccState {
    pub(crate) fn register(registry: &Registry, next_txn: Arc<AtomicU64>) -> MvccState {
        MvccState {
            inner: Mutex::new(MvccInner::default()),
            gate: Condvar::new(),
            frozen_floor: AtomicU64::new(next_txn.load(Ordering::Acquire)),
            next_txn,
            live: AtomicU64::new(0),
            snapshots_total: registry.counter(
                "mdm_mvcc_snapshots_total",
                "read snapshots opened (lock-free read-only transactions)",
            ),
            snapshots_open: registry.gauge("mdm_mvcc_snapshots_open", "read snapshots open now"),
            versions_live: registry.gauge(
                "mdm_mvcc_versions_live",
                "superseded tuple versions retained for open snapshots",
            ),
            versions_reclaimed: registry.counter(
                "mdm_mvcc_versions_reclaimed_total",
                "tuple versions reclaimed once no snapshot could see them",
            ),
            commit_epoch: registry.gauge(
                "mdm_mvcc_commit_epoch",
                "commit-ordered epoch of the latest registered commit",
            ),
        }
    }

    /// Allocates a transaction id and registers it in flight — one
    /// critical section, so the frozen floor never advances past an id
    /// that is about to start writing.
    pub(crate) fn begin_txn(&self) -> TxnId {
        let mut g = self.inner.lock().unwrap();
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        g.in_flight.insert(id, Vec::new());
        id
    }

    /// Records the pre-image a writer is about to overwrite or delete.
    /// Must run *before* the page changes, so no reader window exists in
    /// which the old version is gone from both page and chain. The
    /// writer's own intermediate versions are not chained: a snapshot
    /// either sees all of a transaction or none of it.
    pub(crate) fn remember_old(&self, txn: TxnId, table: TableId, rid: u64, stored_old: &[u8]) {
        let (xmin, body) = split(stored_old);
        if xmin == txn {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        g.chains.entry((table, rid)).or_default().push(Version {
            xmin,
            expire: Expire::Pending(txn),
            body: body.to_vec(),
        });
        if let Some(touched) = g.in_flight.get_mut(&txn) {
            touched.push((table, rid));
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        self.versions_live.add(1);
    }

    /// Registers a commit, assigning the next epoch and finalizing the
    /// expiry of every version this writer pushed aside. Runs after the
    /// commit record is durable and before locks release, so the epoch
    /// order is a serialization order.
    pub(crate) fn commit(&self, txn: TxnId) {
        let mut g = self.inner.lock().unwrap();
        g.epoch += 1;
        let epoch = g.epoch;
        self.commit_epoch.set(epoch as i64);
        if let Some(touched) = g.in_flight.remove(&txn) {
            for key in touched {
                if let Some(chain) = g.chains.get_mut(&key) {
                    for v in chain.iter_mut() {
                        if v.expire == Expire::Pending(txn) {
                            v.expire = Expire::Committed(epoch);
                        }
                    }
                }
            }
        }
        g.committed.insert(txn, epoch);
        self.gc_locked(&mut g);
    }

    /// Abandons a transaction whose commit record may or may not have
    /// persisted (a failed commit sync): it stays registered in flight
    /// forever, so its stamps stay invisible — mirroring the recovery
    /// question the next open will settle from the log.
    pub(crate) fn abandon(&self, _txn: TxnId) {
        // Intentionally nothing: the id remains in `in_flight`.
    }

    /// Retracts an aborted writer's chained versions (the heap undo has
    /// restored the pages, so the chained copies are redundant) and
    /// leaves a tombstone while any snapshot is open: a reader may have
    /// captured page bytes stamped with this id before the undo ran.
    pub(crate) fn rollback(&self, txn: TxnId) {
        let mut g = self.inner.lock().unwrap();
        if let Some(touched) = g.in_flight.remove(&txn) {
            for key in touched {
                if let Some(chain) = g.chains.get_mut(&key) {
                    let before = chain.len();
                    chain.retain(|v| v.expire != Expire::Pending(txn));
                    let removed = (before - chain.len()) as u64;
                    if removed > 0 {
                        self.live.fetch_sub(removed, Ordering::Relaxed);
                        self.versions_live.add(-(removed as i64));
                    }
                    if chain.is_empty() {
                        g.chains.remove(&key);
                    }
                }
            }
            g.aborted.insert(txn);
            self.gc_locked(&mut g);
        }
    }

    /// Drops a transaction that provably wrote nothing (no stamp with
    /// its id exists anywhere): read-only 2PL transactions on commit or
    /// abort. No tombstone is needed, so the floor advances freely.
    pub(crate) fn forget(&self, txn: TxnId) {
        let mut g = self.inner.lock().unwrap();
        g.in_flight.remove(&txn);
        self.gc_locked(&mut g);
    }

    /// Opens a snapshot at the current epoch, waiting out any replica
    /// fold in progress.
    pub(crate) fn open_snapshot(&self) -> Epoch {
        let mut g = self.inner.lock().unwrap();
        while g.folding {
            g = self.gate.wait(g).unwrap();
        }
        let epoch = g.epoch;
        *g.snapshots.entry(epoch).or_insert(0) += 1;
        self.snapshots_total.inc();
        self.snapshots_open.add(1);
        epoch
    }

    /// Closes a snapshot, advancing the GC horizon.
    pub(crate) fn close_snapshot(&self, epoch: Epoch) {
        let mut g = self.inner.lock().unwrap();
        if let Some(count) = g.snapshots.get_mut(&epoch) {
            *count -= 1;
            if *count == 0 {
                g.snapshots.remove(&epoch);
            }
        }
        self.snapshots_open.add(-1);
        self.gc_locked(&mut g);
        drop(g);
        self.gate.notify_all();
    }

    /// Blocks until no snapshot is open, then closes the gate so none
    /// can open: a replica fold is about to rewrite pages through the
    /// recovery machinery, whose intermediate states (losers applied,
    /// not yet undone) no snapshot may observe.
    pub(crate) fn enter_fold(&self) {
        let mut g = self.inner.lock().unwrap();
        while g.folding || !g.snapshots.is_empty() {
            g = self.gate.wait(g).unwrap();
        }
        g.folding = true;
    }

    /// Reopens the gate after a fold. The rebuilt pages hold exactly the
    /// stream's committed data, so every stamp on them freezes: the
    /// floor jumps to the allocator and all tracking resets.
    pub(crate) fn exit_fold(&self) {
        let mut g = self.inner.lock().unwrap();
        debug_assert!(g.folding);
        let dropped = self.live.swap(0, Ordering::Relaxed);
        if dropped > 0 {
            self.versions_live.add(-(dropped as i64));
        }
        g.chains.clear();
        g.committed.clear();
        g.aborted.clear();
        g.in_flight.clear();
        g.folding = false;
        self.frozen_floor
            .fetch_max(self.next_txn.load(Ordering::Acquire), Ordering::AcqRel);
        drop(g);
        self.gate.notify_all();
    }

    /// The engine-wide floor: every transaction id strictly below it is
    /// committed and visible to all snapshots.
    pub(crate) fn frozen_floor(&self) -> TxnId {
        self.frozen_floor.load(Ordering::Acquire)
    }

    /// True when a stored tuple needs no latch to resolve: its creator
    /// is frozen and no chain version exists anywhere.
    pub(crate) fn plainly_visible(&self, stored: &[u8]) -> bool {
        self.live.load(Ordering::Acquire) == 0 && split(stored).0 < self.frozen_floor()
    }

    /// Resolves the tuple state of `(table, rid)` at `epoch`:
    /// `stored` is the page's current bytes for the rid (or `None` for
    /// an empty slot), captured at any point after the snapshot opened.
    /// Returns the visible user body, or `None` if the rid holds no
    /// visible row at that epoch.
    pub(crate) fn resolve(
        &self,
        table: TableId,
        rid: u64,
        stored: Option<&[u8]>,
        epoch: Epoch,
    ) -> Option<Vec<u8>> {
        if let Some(bytes) = stored {
            if self.plainly_visible(bytes) {
                return Some(user_body(bytes).to_vec());
            }
        } else if self.live.load(Ordering::Acquire) == 0 {
            return None;
        }
        let frozen = self.frozen_floor();
        let g = self.inner.lock().unwrap();
        // The page's current tuple: any modification committed at or
        // before `epoch` happened before the capture (page latches order
        // it), so a visible xmin means these bytes *are* the version the
        // snapshot should see — no expiry check applies to the head.
        if let Some(bytes) = stored {
            let (xmin, body) = split(bytes);
            if g.xmin_visible(xmin, epoch, frozen) {
                return Some(body.to_vec());
            }
        }
        let chain = g.chains.get(&(table, rid))?;
        for v in chain.iter().rev() {
            if g.xmin_visible(v.xmin, epoch, frozen) {
                return match v.expire {
                    Expire::Committed(e) if e <= epoch => None,
                    _ => Some(v.body.clone()),
                };
            }
        }
        None
    }

    /// The rids of `table` that have chain versions — candidates a page
    /// scan no longer surfaces (deleted or moved rows still visible to
    /// an open snapshot).
    pub(crate) fn chained_rids(&self, table: TableId) -> Vec<u64> {
        if self.live.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let g = self.inner.lock().unwrap();
        g.chains
            .keys()
            .filter(|(t, _)| *t == table)
            .map(|&(_, rid)| rid)
            .collect()
    }

    /// Reclaims everything no present or future snapshot can see, then
    /// advances the frozen floor. Runs under the latch at commit,
    /// rollback, and snapshot close.
    fn gc_locked(&self, g: &mut MvccInner) {
        let horizon = g.horizon();
        let mut reclaimed: u64 = 0;
        g.chains.retain(|_, chain| {
            chain.retain(|v| match v.expire {
                Expire::Committed(e) => {
                    let dead = e <= horizon;
                    if dead {
                        reclaimed += 1;
                    }
                    !dead
                }
                Expire::Pending(_) => true,
            });
            !chain.is_empty()
        });
        if reclaimed > 0 {
            self.live.fetch_sub(reclaimed, Ordering::Relaxed);
            self.versions_live.add(-(reclaimed as i64));
            self.versions_reclaimed.add(reclaimed);
        }
        // Commit registrations at or below the horizon are visible to
        // every snapshot; drop them and let the frozen/unknown rule
        // answer for their stamps.
        g.committed.retain(|_, &mut e| e > horizon);
        // Aborted tombstones can only go once no capture is in flight.
        if g.snapshots.is_empty() {
            g.aborted.clear();
        }
        let floor = g
            .in_flight
            .keys()
            .chain(g.committed.keys())
            .chain(g.aborted.iter())
            .min()
            .copied()
            .unwrap_or_else(|| self.next_txn.load(Ordering::Acquire));
        self.frozen_floor.fetch_max(floor, Ordering::AcqRel);
    }

    /// Point-in-time counters for tests: (open snapshots, live chain
    /// versions, tracked in-flight writers).
    #[cfg(test)]
    fn stats(&self) -> (usize, u64, usize) {
        let g = self.inner.lock().unwrap();
        let open = g.snapshots.values().sum();
        (open, self.live.load(Ordering::Relaxed), g.in_flight.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> MvccState {
        MvccState::register(&Registry::new(), Arc::new(AtomicU64::new(1)))
    }

    #[test]
    fn stamp_roundtrip_and_short_bodies() {
        let stored = stamp(42, b"hello");
        assert_eq!(split(&stored), (42, &b"hello"[..]));
        assert_eq!(user_body(&stored), b"hello");
        // Sub-stamp bodies read as frozen rather than panicking.
        assert_eq!(split(b"abc"), (0, &b"abc"[..]));
    }

    #[test]
    fn uncommitted_writes_invisible_then_visible() {
        let s = state();
        let t = s.begin_txn();
        let stored = stamp(t, b"row");
        let snap = s.open_snapshot();
        assert_eq!(s.resolve(1, 7, Some(&stored), snap), None);
        s.commit(t);
        // The old snapshot still cannot see it; a new one can.
        assert_eq!(s.resolve(1, 7, Some(&stored), snap), None);
        let snap2 = s.open_snapshot();
        assert_eq!(s.resolve(1, 7, Some(&stored), snap2), Some(b"row".to_vec()));
        s.close_snapshot(snap);
        s.close_snapshot(snap2);
    }

    #[test]
    fn update_chains_old_version_for_old_snapshot() {
        let s = state();
        let t1 = s.begin_txn();
        s.commit(t1); // epoch 1: v1 exists
        let snap = s.open_snapshot();
        let t2 = s.begin_txn();
        s.remember_old(t2, 1, 7, &stamp(t1, b"v1"));
        let page = stamp(t2, b"v2"); // page now holds t2's tuple
        assert_eq!(s.resolve(1, 7, Some(&page), snap), Some(b"v1".to_vec()));
        s.commit(t2);
        assert_eq!(s.resolve(1, 7, Some(&page), snap), Some(b"v1".to_vec()));
        let snap2 = s.open_snapshot();
        assert_eq!(s.resolve(1, 7, Some(&page), snap2), Some(b"v2".to_vec()));
        s.close_snapshot(snap2);
        s.close_snapshot(snap);
    }

    #[test]
    fn delete_resolves_to_none_after_commit_epoch() {
        let s = state();
        let t1 = s.begin_txn();
        s.commit(t1);
        let before = s.open_snapshot();
        let t2 = s.begin_txn();
        s.remember_old(t2, 1, 7, &stamp(t1, b"v1"));
        // Page slot now empty (deleted).
        assert_eq!(s.resolve(1, 7, None, before), Some(b"v1".to_vec()));
        s.commit(t2);
        let after = s.open_snapshot();
        assert_eq!(s.resolve(1, 7, None, after), None);
        assert_eq!(s.resolve(1, 7, None, before), Some(b"v1".to_vec()));
        s.close_snapshot(before);
        s.close_snapshot(after);
    }

    #[test]
    fn aborted_stamps_stay_invisible_while_captured() {
        let s = state();
        let snap = s.open_snapshot();
        let t = s.begin_txn();
        let captured = stamp(t, b"ghost");
        s.rollback(t);
        // The reader captured page bytes before the undo restored them;
        // the tombstone keeps them invisible.
        assert_eq!(s.resolve(1, 7, Some(&captured), snap), None);
        s.close_snapshot(snap);
    }

    #[test]
    fn gc_waits_for_oldest_snapshot() {
        let s = state();
        let t1 = s.begin_txn();
        s.commit(t1);
        let old = s.open_snapshot();
        let t2 = s.begin_txn();
        s.remember_old(t2, 1, 7, &stamp(t1, b"v1"));
        s.commit(t2);
        assert_eq!(s.stats().1, 1, "version held for the open snapshot");
        s.close_snapshot(old);
        assert_eq!(s.stats().1, 0, "version reclaimed once unobservable");
    }

    #[test]
    fn frozen_floor_advances_past_settled_txns() {
        let s = state();
        let t1 = s.begin_txn();
        let t2 = s.begin_txn();
        s.commit(t2);
        // t1 still in flight: the floor cannot pass it.
        assert!(s.frozen_floor() <= t1);
        s.commit(t1);
        assert!(s.frozen_floor() > t2, "floor passes settled ids");
        let stored = stamp(t1, b"x");
        assert!(s.plainly_visible(&stored));
    }

    #[test]
    fn abandoned_commit_stays_invisible_forever() {
        let s = state();
        let t = s.begin_txn();
        s.abandon(t);
        let snap = s.open_snapshot();
        assert_eq!(s.resolve(1, 7, Some(&stamp(t, b"x")), snap), None);
        assert!(s.frozen_floor() <= t, "floor pinned by the unknown outcome");
        s.close_snapshot(snap);
    }

    #[test]
    fn fold_gate_excludes_snapshots() {
        let s = Arc::new(state());
        let t = s.begin_txn();
        s.commit(t);
        s.enter_fold();
        let s2 = Arc::clone(&s);
        let reader = std::thread::spawn(move || {
            let snap = s2.open_snapshot();
            s2.close_snapshot(snap);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_finished(), "snapshot open waits out the fold");
        s.exit_fold();
        reader.join().unwrap();
        assert_eq!(s.stats().2, 0, "fold reset in-flight tracking");
    }
}
