//! # mdm-storage
//!
//! The storage substrate of the music data manager: a from-scratch,
//! page-based transactional record store standing in for the INGRES
//! back end the original SIGMOD 1987 design assumed.
//!
//! Components, bottom-up:
//!
//! * [`page`] — 8 KiB slotted pages and record ids.
//! * [`disk`] — page-granular file I/O.
//! * [`buffer`] — a CLOCK-eviction buffer pool.
//! * [`heap`] — heap files (linked chains of slotted pages).
//! * [`btree`] — B+tree secondary indexes with duplicate-key support.
//! * [`wal`] — the write-ahead log with torn-write-tolerant replay.
//! * [`recovery`] — repeat-history redo plus loser undo.
//! * [`backend`] / [`fault`] — pluggable file I/O and deterministic
//!   fault injection (scripted failpoints, simulated crashes).
//! * [`torture`] — the crash-point exploration harness built on them.
//! * [`lock`] — table-level strict 2PL with wait-die deadlock avoidance.
//! * [`mvcc`] — tuple version stamps, version chains, and snapshot
//!   visibility: lock-free read-only transactions via [`ReadSnapshot`].
//! * [`catalog`] — the persistent system catalog.
//! * [`engine`] — [`StorageEngine`], the transactional facade.
//!
//! ```
//! use mdm_storage::{StorageEngine};
//!
//! let dir = std::env::temp_dir().join(format!("mdm-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let engine = StorageEngine::open(&dir).unwrap();
//! let table = engine.create_table("notes").unwrap();
//! let mut txn = engine.begin().unwrap();
//! let rid = engine.insert(&mut txn, table, b"middle C").unwrap();
//! engine.commit(txn).unwrap();
//!
//! let mut txn = engine.begin().unwrap();
//! assert_eq!(engine.get(&mut txn, table, rid).unwrap().unwrap(), b"middle C");
//! engine.commit(txn).unwrap();
//! # drop(engine); std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod backend;
pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod disk;
pub mod engine;
pub mod error;
pub mod fault;
pub mod heap;
pub mod lock;
pub mod mvcc;
pub mod page;
pub mod recovery;
pub mod torture;
pub mod wal;

pub use backend::{FileBackend, FileVfs, StorageBackend, Vfs};
pub use btree::{decode_i64, encode_i64, BTree};
pub use buffer::BufferPool;
pub use engine::{ReadSnapshot, StorageEngine, Txn, WalBatch, DEFAULT_POOL_PAGES};
pub use error::{Result, StorageError};
pub use fault::{At, FaultController, FaultKind, FaultPlan, FaultVfs};
pub use heap::HeapFile;
pub use lock::{LockManager, LockMode};
pub use mvcc::{user_body, STAMP_LEN};
pub use page::{PageId, Rid, PAGE_SIZE};
pub use recovery::RecoveryOutcome;
pub use torture::{
    crash_point_sweep, run_workload_with, verify_reopen, Ledger, TortureConfig, TortureReport,
};
pub use wal::{TableId, TxnId, Wal, WalRangeIter, WalRecord};
