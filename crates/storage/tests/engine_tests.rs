//! Integration tests for the storage engine: transactions, persistence,
//! crash recovery with failure injection, and concurrent clients.

use std::path::PathBuf;

use mdm_storage::{encode_i64, Rid, StorageEngine, StorageError};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mdm-eng-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn basic_crud_within_txn() {
    let dir = tmpdir("crud");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("works").unwrap();
    let mut txn = eng.begin().unwrap();
    let rid = eng.insert(&mut txn, t, b"BWV 578").unwrap();
    assert_eq!(eng.get(&mut txn, t, rid).unwrap().unwrap(), b"BWV 578");
    let rid = eng
        .update(&mut txn, t, rid, b"BWV 578 Fuge g-moll")
        .unwrap();
    assert_eq!(
        eng.get(&mut txn, t, rid).unwrap().unwrap(),
        b"BWV 578 Fuge g-moll"
    );
    let old = eng.delete(&mut txn, t, rid).unwrap();
    assert_eq!(old, b"BWV 578 Fuge g-moll");
    assert_eq!(eng.get(&mut txn, t, rid).unwrap(), None);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn abort_rolls_back_everything() {
    let dir = tmpdir("abort");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    // Committed baseline record.
    let mut txn = eng.begin().unwrap();
    let keep = eng.insert(&mut txn, t, b"keep").unwrap();
    eng.commit(txn).unwrap();

    let mut txn = eng.begin().unwrap();
    let gone = eng.insert(&mut txn, t, b"gone").unwrap();
    eng.update(&mut txn, t, keep, b"mutated").unwrap();
    eng.abort(txn).unwrap();

    let mut txn = eng.begin().unwrap();
    assert_eq!(eng.get(&mut txn, t, keep).unwrap().unwrap(), b"keep");
    assert_eq!(eng.get(&mut txn, t, gone).unwrap(), None);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_shutdown_persists_without_recovery() {
    let dir = tmpdir("clean");
    let t_id;
    let rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t_id = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        rid = eng.insert(&mut txn, t_id, b"durable").unwrap();
        eng.commit(txn).unwrap();
    } // Drop runs the clean-shutdown checkpoint.
    let eng = StorageEngine::open(&dir).unwrap();
    assert_eq!(
        eng.last_recovery().replayed,
        0,
        "no recovery after clean close"
    );
    assert!(!eng.indexes_need_rebuild());
    assert_eq!(eng.table_id("t").unwrap(), t_id);
    let mut txn = eng.begin().unwrap();
    assert_eq!(eng.get(&mut txn, t_id, rid).unwrap().unwrap(), b"durable");
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

/// Simulates a crash by leaking the engine so no Drop checkpoint runs.
fn crash(eng: StorageEngine) {
    std::mem::forget(eng);
}

#[test]
fn crash_recovers_committed_discards_uncommitted() {
    let dir = tmpdir("crash");
    let t;
    let other;
    let committed_rid;
    let uncommitted_rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        other = eng.create_table("other").unwrap();
        let mut txn = eng.begin().unwrap();
        committed_rid = eng.insert(&mut txn, t, b"committed before crash").unwrap();
        eng.commit(txn).unwrap();
        let mut txn = eng.begin().unwrap();
        uncommitted_rid = eng.insert(&mut txn, t, b"in flight at crash").unwrap();
        // A later commit syncs the log, which also makes the in-flight
        // transaction's records durable — recovery must then undo them.
        let mut txn2 = eng.begin().unwrap();
        eng.insert(&mut txn2, other, b"bystander").unwrap();
        eng.commit(txn2).unwrap();
        // Neither commit nor abort for txn: crash with it open.
        std::mem::forget(txn);
        crash(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    let outcome = eng.last_recovery();
    assert!(outcome.replayed > 0, "recovery should replay the log");
    assert_eq!(outcome.committed, 2);
    assert_eq!(outcome.undone, 1);
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.get(&mut txn, t, committed_rid).unwrap().unwrap(),
        b"committed before crash"
    );
    assert_eq!(eng.get(&mut txn, t, uncommitted_rid).unwrap(), None);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_recovers_updates_and_deletes() {
    let dir = tmpdir("crash-ud");
    let t;
    let updated;
    let deleted;
    let reverted;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        updated = eng.insert(&mut txn, t, b"v1").unwrap();
        deleted = eng.insert(&mut txn, t, b"to delete").unwrap();
        reverted = eng.insert(&mut txn, t, b"original").unwrap();
        eng.commit(txn).unwrap();

        let mut txn = eng.begin().unwrap();
        eng.update(&mut txn, t, updated, b"v2").unwrap();
        eng.delete(&mut txn, t, deleted).unwrap();
        eng.commit(txn).unwrap();

        // Uncommitted mutation of `reverted`.
        let mut txn = eng.begin().unwrap();
        eng.update(&mut txn, t, reverted, b"scribbled").unwrap();
        std::mem::forget(txn);
        crash(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    let mut txn = eng.begin().unwrap();
    assert_eq!(eng.get(&mut txn, t, updated).unwrap().unwrap(), b"v2");
    assert_eq!(eng.get(&mut txn, t, deleted).unwrap(), None);
    assert_eq!(
        eng.get(&mut txn, t, reverted).unwrap().unwrap(),
        b"original"
    );
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_recovery_is_idempotent_across_double_crash() {
    let dir = tmpdir("crash2");
    let t;
    let rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        rid = eng.insert(&mut txn, t, b"survivor").unwrap();
        eng.commit(txn).unwrap();
        crash(eng);
    }
    {
        // Recover, write more, crash again before clean close.
        let eng = StorageEngine::open(&dir).unwrap();
        let mut txn = eng.begin().unwrap();
        eng.insert(&mut txn, t, b"second").unwrap();
        eng.commit(txn).unwrap();
        crash(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    let mut txn = eng.begin().unwrap();
    assert_eq!(eng.get(&mut txn, t, rid).unwrap().unwrap(), b"survivor");
    let all = eng.scan(&mut txn, t).unwrap();
    assert_eq!(all.len(), 2);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_prefix() {
    let dir = tmpdir("torn");
    let t;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        eng.insert(&mut txn, t, b"alpha").unwrap();
        eng.commit(txn).unwrap();
        crash(eng);
    }
    // Inject a torn frame at the log tail.
    let wal_path = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0x55, 0x00, 0x00, 0x01]); // truncated frame header
    std::fs::write(&wal_path, &bytes).unwrap();

    let eng = StorageEngine::open(&dir).unwrap();
    let mut txn = eng.begin().unwrap();
    let all = eng.scan(&mut txn, t).unwrap();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].1, b"alpha");
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_created_in_log_replays_exactly_after_crash() {
    let dir = tmpdir("idx-replay");
    let t;
    let rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        eng.create_index(t, "by_key").unwrap();
        let mut txn = eng.begin().unwrap();
        rid = eng.insert(&mut txn, t, b"indexed").unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(42), rid)
            .unwrap();
        let dead = eng.insert(&mut txn, t, b"dead").unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(13), dead)
            .unwrap();
        eng.index_delete(&mut txn, t, "by_key", &encode_i64(13), dead)
            .unwrap();
        eng.delete(&mut txn, t, dead).unwrap();
        eng.commit(txn).unwrap();
        // An aborted transaction's index ops must stay invisible too.
        let mut txn = eng.begin().unwrap();
        let r2 = eng.insert(&mut txn, t, b"rolled back").unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(99), r2)
            .unwrap();
        eng.abort(txn).unwrap();
        crash(eng);
    }
    // The log covers the index's whole lifetime (its create_table
    // snapshot lacks it), so recovery replays it exactly — no rebuild.
    let eng = StorageEngine::open(&dir).unwrap();
    assert!(!eng.indexes_need_rebuild());
    assert_eq!(eng.last_recovery().indexes_replayed, 1);
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.index_lookup(&mut txn, t, "by_key", &encode_i64(42))
            .unwrap(),
        vec![rid]
    );
    assert_eq!(
        eng.index_lookup(&mut txn, t, "by_key", &encode_i64(13))
            .unwrap(),
        vec![]
    );
    assert_eq!(
        eng.index_lookup(&mut txn, t, "by_key", &encode_i64(99))
            .unwrap(),
        vec![]
    );
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_older_than_log_is_flagged_for_rebuild_after_crash() {
    let dir = tmpdir("idx-rebuild");
    let t;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        eng.create_index(t, "by_key").unwrap();
        let mut txn = eng.begin().unwrap();
        let rid = eng.insert(&mut txn, t, b"indexed").unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(42), rid)
            .unwrap();
        eng.commit(txn).unwrap();
        // The checkpoint truncates the log: the index's creation (and
        // its first entry) are no longer in the log's horizon, so a
        // later crash cannot replay it and must flag a rebuild.
        eng.checkpoint().unwrap();
        let mut txn = eng.begin().unwrap();
        let r2 = eng.insert(&mut txn, t, b"post-checkpoint").unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(43), r2)
            .unwrap();
        eng.commit(txn).unwrap();
        crash(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    assert!(eng.indexes_need_rebuild());
    assert_eq!(eng.last_recovery().indexes_replayed, 0);
    // The reset index is empty; the base table still has both records.
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.index_lookup(&mut txn, t, "by_key", &encode_i64(42))
            .unwrap(),
        vec![]
    );
    let all = eng.scan(&mut txn, t).unwrap();
    assert_eq!(all.len(), 2);
    // Rebuild as the owning layer would.
    for (i, (rid, _)) in all.iter().enumerate() {
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(42 + i as i64), *rid)
            .unwrap();
    }
    eng.commit(txn).unwrap();
    eng.mark_indexes_rebuilt();
    assert!(!eng.indexes_need_rebuild());
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_survives_clean_shutdown() {
    let dir = tmpdir("idx-clean");
    let t;
    let rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        t = eng.create_table("t").unwrap();
        eng.create_index(t, "by_key").unwrap();
        let mut txn = eng.begin().unwrap();
        rid = eng.insert(&mut txn, t, b"indexed").unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(7), rid)
            .unwrap();
        eng.commit(txn).unwrap();
    }
    let eng = StorageEngine::open(&dir).unwrap();
    assert!(!eng.indexes_need_rebuild());
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.index_lookup(&mut txn, t, "by_key", &encode_i64(7))
            .unwrap(),
        vec![rid]
    );
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_abort_rolls_back_entries() {
    let dir = tmpdir("idx-abort");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    eng.create_index(t, "i").unwrap();
    let mut txn = eng.begin().unwrap();
    let rid = eng.insert(&mut txn, t, b"r").unwrap();
    eng.index_insert(&mut txn, t, "i", b"key", rid).unwrap();
    eng.commit(txn).unwrap();

    let mut txn = eng.begin().unwrap();
    eng.index_delete(&mut txn, t, "i", b"key", rid).unwrap();
    eng.index_insert(&mut txn, t, "i", b"other", rid).unwrap();
    eng.abort(txn).unwrap();

    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.index_lookup(&mut txn, t, "i", b"key").unwrap(),
        vec![rid]
    );
    assert_eq!(
        eng.index_lookup(&mut txn, t, "i", b"other").unwrap(),
        vec![]
    );
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ddl_survives_crash_via_catalog_snapshot() {
    let dir = tmpdir("ddl-crash");
    {
        let eng = StorageEngine::open(&dir).unwrap();
        eng.create_table("alpha").unwrap();
        eng.create_table("beta").unwrap();
        eng.drop_table("alpha").unwrap();
        crash(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    assert_eq!(eng.table_names(), vec!["beta".to_string()]);
    assert!(matches!(
        eng.table_id("alpha"),
        Err(StorageError::NoSuchTable(_))
    ));
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_returns_everything_in_order() {
    let dir = tmpdir("scan");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    let mut rids = Vec::new();
    for i in 0..200 {
        rids.push(
            eng.insert(&mut txn, t, format!("row {i}").as_bytes())
                .unwrap(),
        );
    }
    let all = eng.scan(&mut txn, t).unwrap();
    assert_eq!(all.len(), 200);
    let scanned: Vec<Rid> = all.iter().map(|(r, _)| *r).collect();
    let mut sorted = rids.clone();
    sorted.sort();
    assert_eq!(scanned, sorted);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncates_log_and_preserves_state() {
    let dir = tmpdir("ckpt");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    let rid = eng.insert(&mut txn, t, b"pre-checkpoint").unwrap();
    eng.commit(txn).unwrap();
    eng.checkpoint().unwrap();
    let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    assert_eq!(wal_len, 0);
    // Crash after checkpoint: state must still be there.
    crash(eng);
    let eng = StorageEngine::open(&dir).unwrap();
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.get(&mut txn, t, rid).unwrap().unwrap(),
        b"pre-checkpoint"
    );
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_refused_with_active_txn() {
    let dir = tmpdir("ckpt-active");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    eng.insert(&mut txn, t, b"x").unwrap();
    assert!(eng.checkpoint().is_err());
    eng.commit(txn).unwrap();
    eng.checkpoint().unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_serialize_on_conflicting_tables() {
    let dir = tmpdir("conc");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("shared").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|tid| {
            let eng = eng.clone();
            std::thread::spawn(move || {
                let mut inserted = 0;
                for i in 0..50 {
                    // Retry on wait-die aborts.
                    loop {
                        let mut txn = eng.begin().unwrap();
                        let body = format!("thread {tid} row {i}");
                        match eng.insert(&mut txn, t, body.as_bytes()) {
                            Ok(_) => {
                                eng.commit(txn).unwrap();
                                inserted += 1;
                                break;
                            }
                            Err(StorageError::Deadlock) => {
                                eng.abort(txn).unwrap();
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
                inserted
            })
        })
        .collect();
    let total: usize = threads.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 200);
    let mut txn = eng.begin().unwrap();
    assert_eq!(eng.scan(&mut txn, t).unwrap().len(), 200);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn large_records_and_oversize_rejection() {
    let dir = tmpdir("large");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    let big = vec![0xAAu8; 8000];
    let rid = eng.insert(&mut txn, t, &big).unwrap();
    assert_eq!(eng.get(&mut txn, t, rid).unwrap().unwrap(), big);
    let too_big = vec![0u8; 9000];
    assert!(matches!(
        eng.insert(&mut txn, t, &too_big),
        Err(StorageError::RecordTooLarge(_))
    ));
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn update_that_moves_record_returns_new_rid() {
    let dir = tmpdir("move");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    // Fill a page almost completely so the update cannot grow in place.
    let mut rids = Vec::new();
    for _ in 0..8 {
        rids.push(eng.insert(&mut txn, t, &vec![1u8; 1000]).unwrap());
    }
    let target = rids[0];
    let grown = vec![2u8; 4000];
    let new_rid = eng.update(&mut txn, t, target, &grown).unwrap();
    assert_ne!(new_rid, target, "record should have moved");
    assert_eq!(eng.get(&mut txn, t, new_rid).unwrap().unwrap(), grown);
    assert_eq!(eng.get(&mut txn, t, target).unwrap(), None);
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn vacuum_reclaims_dropped_space() {
    let dir = tmpdir("vacuum-src");
    let dir2 = tmpdir("vacuum-dst");
    let eng = StorageEngine::open(&dir).unwrap();
    // A big table we will drop, and a keeper with an index.
    let doomed = eng.create_table("doomed").unwrap();
    let keeper = eng.create_table("keeper").unwrap();
    eng.create_index(keeper, "by_key").unwrap();
    let mut txn = eng.begin().unwrap();
    for i in 0..2000 {
        eng.insert(&mut txn, doomed, &vec![0xAB; 500]).unwrap();
        if i % 10 == 0 {
            let rid = eng
                .insert(&mut txn, keeper, format!("keep {i}").as_bytes())
                .unwrap();
            eng.index_insert(&mut txn, keeper, "by_key", &encode_i64(i), rid)
                .unwrap();
        }
    }
    eng.commit(txn).unwrap();
    eng.drop_table("doomed").unwrap();
    let pages_before = eng.num_pages();

    let new = eng.vacuum_into(&dir2).unwrap();
    assert!(
        new.num_pages() * 4 < pages_before,
        "vacuum should shrink: {} -> {}",
        pages_before,
        new.num_pages()
    );
    // Contents and index survive, remapped.
    let kt = new.table_id("keeper").unwrap();
    let mut txn = new.begin().unwrap();
    assert_eq!(new.scan(&mut txn, kt).unwrap().len(), 200);
    let hits = new
        .index_lookup(&mut txn, kt, "by_key", &encode_i64(1990))
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(
        new.get(&mut txn, kt, hits[0]).unwrap().unwrap(),
        b"keep 1990"
    );
    new.commit(txn).unwrap();
    drop(new);
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn vacuum_refused_mid_transaction() {
    let dir = tmpdir("vacuum-act");
    let dir2 = tmpdir("vacuum-act2");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    eng.insert(&mut txn, t, b"x").unwrap();
    assert!(eng.vacuum_into(&dir2).is_err());
    eng.commit(txn).unwrap();
    assert!(eng.vacuum_into(&dir2).is_ok());
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn dropped_txn_aborts_and_its_writes_are_invisible() {
    let dir = tmpdir("drop-abort");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();
    let mut txn = eng.begin().unwrap();
    let keep = eng.insert(&mut txn, t, b"keep").unwrap();
    eng.commit(txn).unwrap();

    let gone;
    {
        let mut txn = eng.begin().unwrap();
        gone = eng.insert(&mut txn, t, b"gone").unwrap();
        eng.update(&mut txn, t, keep, b"mutated").unwrap();
        // Dropped without commit/abort: the handle's Drop must roll the
        // transaction back and release its table lock.
    }

    let mut txn = eng.begin().unwrap();
    assert_eq!(eng.get(&mut txn, t, keep).unwrap().unwrap(), b"keep");
    assert_eq!(eng.get(&mut txn, t, gone).unwrap(), None);
    // The exclusive lock was released, so a writer gets through too.
    eng.insert(&mut txn, t, b"after").unwrap();
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

/// Page-LSN flush discipline regression: eviction pressure *before*
/// commit forces dirty pages out mid-transaction; each eviction must
/// sync the WAL through the page's LSN so recovery can still undo the
/// uncommitted changes after a crash. Before the discipline existed, an
/// evicted page could reach disk ahead of its log record, leaving an
/// un-undoable phantom record.
#[test]
fn eviction_pressure_before_commit_is_undone_after_crash() {
    let dir = tmpdir("lsn-evict");
    {
        // Two frames total: nearly every insert evicts a dirty page.
        let eng = StorageEngine::open_with_capacity(&dir, 2).unwrap();
        let t = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        let body = vec![7u8; 2000];
        for _ in 0..40 {
            eng.insert(&mut txn, t, &body).unwrap();
        }
        let (_, _, evictions) = eng.pool_stats();
        assert!(evictions > 0, "tiny pool must evict under insert pressure");
        let snap = eng.metrics_snapshot();
        assert!(
            snap.counter("mdm_wal_eviction_syncs_total").unwrap() > 0,
            "dirty-page eviction before commit must sync the WAL"
        );
        // Crash with the transaction open: no commit, no Drop checkpoint,
        // no final WAL flush.
        std::mem::forget(txn);
        crash(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.table_id("t").unwrap();
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.scan(&mut txn, t).unwrap(),
        vec![],
        "uncommitted inserts must be rolled back despite eviction traffic"
    );
    eng.commit(txn).unwrap();
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

/// The engine's metrics surface reports live values for the WAL, the
/// transaction lifecycle, the buffer pool, and the lock manager.
#[test]
fn metrics_snapshot_reports_live_engine_values() {
    let dir = tmpdir("metrics");
    let eng = StorageEngine::open(&dir).unwrap();
    let t = eng.create_table("t").unwrap();

    let mut txn = eng.begin().unwrap();
    for i in 0..10u32 {
        eng.insert(&mut txn, t, format!("record {i}").as_bytes())
            .unwrap();
    }
    let mid = eng.metrics_snapshot();
    assert_eq!(mid.gauge("mdm_txn_active"), Some(1));
    eng.commit(txn).unwrap();

    // An aborted transaction.
    let mut txn = eng.begin().unwrap();
    eng.insert(&mut txn, t, b"rolled back").unwrap();
    eng.abort(txn).unwrap();

    // A wait-die abort: the younger of two conflicting writers dies.
    let mut older = eng.begin().unwrap();
    let mut younger = eng.begin().unwrap();
    eng.insert(&mut older, t, b"older holds X").unwrap();
    assert!(matches!(
        eng.insert(&mut younger, t, b"younger dies"),
        Err(StorageError::Deadlock)
    ));
    eng.abort(younger).unwrap();

    // A lock wait: `older` (still open, and older than any new txn)
    // blocks behind a younger holder on a second table.
    let t2 = eng.create_table("t2").unwrap();
    let mut holder = eng.begin().unwrap();
    eng.insert(&mut holder, t2, b"young holder").unwrap();
    std::thread::scope(|s| {
        let eng2 = eng.clone();
        let waiter = s.spawn(move || {
            let mut w = older; // older than `holder`: allowed to wait
            eng2.insert(&mut w, t2, b"older waits").unwrap();
            eng2.commit(w).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        eng.commit(holder).unwrap();
        waiter.join().unwrap();
    });

    let snap = eng.metrics_snapshot();
    assert!(snap.counter("mdm_wal_appends_total").unwrap() >= 15);
    assert!(snap.counter("mdm_wal_fsyncs_total").unwrap() >= 2);
    let fsync = snap.histogram("mdm_wal_fsync_micros").unwrap();
    assert!(fsync.count >= 2, "commits must time their fsyncs");
    assert!(fsync.mean().is_some());
    let batch = snap.histogram("mdm_wal_group_commit_batch").unwrap();
    assert!(batch.count >= 1);
    assert!(batch.sum >= batch.count, "each fsync covers >= 1 record");
    assert_eq!(snap.counter("mdm_txn_begins_total"), Some(5));
    assert_eq!(snap.counter("mdm_txn_commits_total"), Some(3));
    assert_eq!(snap.counter("mdm_txn_aborts_total"), Some(2));
    assert_eq!(snap.gauge("mdm_txn_active"), Some(0));
    assert!(snap.counter("mdm_lock_wait_die_aborts_total").unwrap() >= 1);
    assert!(snap.counter("mdm_lock_waits_total").unwrap() >= 1);
    // Per-shard pool counters sum to the legacy stats() totals.
    let (hits, misses, evictions) = eng.pool_stats();
    assert_eq!(snap.counter("mdm_pool_hits_total"), Some(hits));
    assert_eq!(snap.counter("mdm_pool_misses_total"), Some(misses));
    assert_eq!(snap.counter("mdm_pool_evictions_total"), Some(evictions));
    assert!(hits > 0 && misses > 0);
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}
