//! Crash-point torture: deterministic fault injection against the whole
//! storage stack.
//!
//! The headline test sweeps a simulated crash across every I/O boundary
//! a fixed workload exposes (strided in debug builds, exhaustive in
//! release) and proves recovery holds its invariants at each one. The
//! rest are targeted regressions for specific failure modes: fsyncgate,
//! eviction write errors, and torn WAL tails.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mdm_obs::Registry;
use mdm_storage::wal::{Wal, WalRecord};
use mdm_storage::{
    crash_point_sweep, At, BufferPool, FaultController, FaultKind, FaultPlan, Rid, StorageEngine,
    StorageError, TortureConfig,
};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mdm-torture-{}-{name}", std::process::id()));
    fs::remove_dir_all(&d).ok();
    d
}

// ----------------------------------------------------------------------
// The crash-point exploration sweep (the tentpole)
// ----------------------------------------------------------------------

/// Strided sweep, cheap enough to run in debug builds and CI smoke.
#[test]
fn crash_point_sweep_smoke() {
    let scratch = tmpdir("sweep-smoke");
    let registry = Registry::new();
    let report = crash_point_sweep(&scratch, &TortureConfig::smoke(), &registry);
    fs::remove_dir_all(&scratch).ok();

    assert!(
        report.violations.is_empty(),
        "invariant violations:\n{}",
        report.violations.join("\n")
    );
    assert!(report.boundaries > 0, "workload exposed no I/O boundaries");
    assert!(report.crash_points > 0, "no crash points explored");

    // Failpoint activity must be visible in the shared registry.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("mdm_fault_crash_points_total"),
        Some(report.crash_points)
    );
    assert!(snap.counter("mdm_fault_crashes_total").unwrap_or(0) >= report.crash_points);
    assert_eq!(snap.counter("mdm_fault_violations_total"), Some(0));
}

/// The exhaustive sweep: every boundary, plus the torn-write pass.
/// Release-only — several hundred full workload replays.
#[cfg(not(debug_assertions))]
#[test]
fn crash_point_sweep_full() {
    let scratch = tmpdir("sweep-full");
    let registry = Registry::new();
    let report = crash_point_sweep(&scratch, &TortureConfig::full(), &registry);
    fs::remove_dir_all(&scratch).ok();

    assert!(
        report.violations.is_empty(),
        "invariant violations:\n{}",
        report.violations.join("\n")
    );
    assert!(
        report.crash_points >= 200,
        "expected >= 200 distinct crash points, explored {}",
        report.crash_points
    );
}

/// The boundary count is what lets one counted run stand in for every
/// replay: it must be identical run over run.
#[test]
fn torture_workload_is_deterministic() {
    let cfg = TortureConfig {
        rounds: 12,
        pool_pages: 16,
        stride: 1,
        torn_writes: false,
    };
    let mut counts = Vec::new();
    for i in 0..2 {
        let dir = tmpdir(&format!("determinism-{i}"));
        let ctl = FaultController::new(FaultPlan::none());
        {
            let engine =
                StorageEngine::open_with_vfs(&dir, cfg.pool_pages, &Registry::new(), &ctl.vfs())
                    .unwrap();
            let t = engine.create_table("d").unwrap();
            for r in 0..cfg.rounds {
                let mut txn = engine.begin().unwrap();
                engine
                    .insert(&mut txn, t, format!("row-{r}").as_bytes())
                    .unwrap();
                engine.commit(txn).unwrap();
            }
        }
        counts.push((ctl.ops(), ctl.writes(), ctl.syncs()));
        fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(counts[0], counts[1], "I/O boundary sequence is not stable");
}

// ----------------------------------------------------------------------
// Satellite 1: fsyncgate — a failed WAL fsync must poison the engine
// ----------------------------------------------------------------------

/// After a failed WAL fsync the kernel may have dropped the dirty log
/// bytes and marked them clean, so a *later* successful fsync proves
/// nothing about them (fsyncgate). The engine must: fail the commit
/// whose fsync died, refuse every later commit with a typed error, and
/// come back after reopen with exactly the pre-failure durable state.
///
/// On the pre-poisoning engine this test fails at the `WalPoisoned`
/// assertion: transaction B's commit would run a fresh fsync, observe
/// success, advance the durable horizon over A's dropped bytes, and
/// report a commit that recovery can never honor.
#[test]
fn failed_wal_fsync_poisons_commits_until_reopen() {
    // Probe run: find the global sync index of transaction A's commit
    // fsync. The workload is deterministic, so the index transfers.
    let sync_before_a = {
        let dir = tmpdir("fsyncgate-probe");
        let ctl = FaultController::new(FaultPlan::none());
        let engine = StorageEngine::open_with_vfs(&dir, 64, &Registry::new(), &ctl.vfs()).unwrap();
        let t = engine.create_table("songs").unwrap();
        let mut txn = engine.begin().unwrap();
        engine
            .insert(&mut txn, t, b"durable before the failure")
            .unwrap();
        engine.commit(txn).unwrap();
        let s = ctl.syncs();
        let mut txn = engine.begin().unwrap();
        engine.insert(&mut txn, t, b"txn A: fsync dies").unwrap();
        engine.commit(txn).unwrap();
        assert!(ctl.syncs() > s, "commit did not fsync");
        drop(engine);
        fs::remove_dir_all(&dir).ok();
        s
    };

    // Real run: same workload, A's commit fsync fails fsyncgate-style.
    let dir = tmpdir("fsyncgate");
    let ctl =
        FaultController::new(FaultPlan::none().with(At::Sync(sync_before_a), FaultKind::FailFsync));
    {
        let engine = StorageEngine::open_with_vfs(&dir, 64, &Registry::new(), &ctl.vfs()).unwrap();
        let t = engine.create_table("songs").unwrap();
        let mut txn = engine.begin().unwrap();
        engine
            .insert(&mut txn, t, b"durable before the failure")
            .unwrap();
        engine.commit(txn).unwrap();

        // Transaction A: the commit whose fsync dies must not report Ok.
        let mut txn = engine.begin().unwrap();
        engine.insert(&mut txn, t, b"txn A: fsync dies").unwrap();
        let err = engine.commit(txn).expect_err("commit after failed fsync");
        assert!(
            matches!(err, StorageError::Io(_)),
            "expected the I/O error surfaced, got: {err}"
        );
        assert_eq!(ctl.injected(), 1, "the planned fsync fault did not fire");

        // Transaction B: must be refused outright — retrying the fsync
        // cannot resurrect A's dropped log bytes.
        let mut txn = engine.begin().unwrap();
        engine
            .insert(&mut txn, t, b"txn B: after the failure")
            .unwrap();
        let err = engine.commit(txn).expect_err("commit on poisoned WAL");
        assert!(
            matches!(err, StorageError::WalPoisoned),
            "expected WalPoisoned, got: {err}"
        );

        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("mdm_wal_fsync_failures_total"), Some(1));
        assert_eq!(snap.gauge("mdm_wal_poisoned"), Some(1));
    }

    // Reopen: exactly the pre-failure durable state, and writable again.
    let engine = StorageEngine::open(&dir).unwrap();
    let t = engine.table_id("songs").unwrap();
    let mut txn = engine.begin().unwrap();
    let bodies: Vec<Vec<u8>> = engine
        .scan(&mut txn, t)
        .unwrap()
        .into_iter()
        .map(|(_, b)| b)
        .collect();
    assert_eq!(
        bodies,
        vec![b"durable before the failure".to_vec()],
        "recovery must surface the durable row and nothing else"
    );
    engine.insert(&mut txn, t, b"post-recovery write").unwrap();
    engine.commit(txn).unwrap();
    drop(engine);
    fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------------------------------
// Satellite: eviction must not silently drop a dirty page
// ----------------------------------------------------------------------

/// A dirty eviction whose flush barrier fails must leave the frame in
/// the pool (data intact, still dirty) and surface a typed error — not
/// drop the only copy of the page on the floor.
#[test]
fn failed_flush_barrier_keeps_the_dirty_frame() {
    let dir = tmpdir("barrier");
    // Capacity 2 => one shard with two frames: touching a third page
    // forces an eviction.
    let pool = BufferPool::open(&dir, 2).unwrap();
    let barrier_ok = Arc::new(AtomicBool::new(false));
    let ok = Arc::clone(&barrier_ok);
    pool.set_flush_barrier(Box::new(move |_page, _bytes, _lsn| {
        if ok.load(Ordering::SeqCst) {
            Ok(())
        } else {
            Err(StorageError::Io(std::io::Error::other("wal sync failed")))
        }
    }));

    let p1 = pool.allocate_page().unwrap();
    let p2 = pool.allocate_page().unwrap();
    let p3 = pool.allocate_page().unwrap();

    // Dirty p1 under the WAL protocol so eviction must hit the barrier.
    pool.with_page_mut_logged(p1, |data| {
        data[0] = 0xAB;
        ((), true)
    })
    .unwrap();
    pool.publish_lsn(p1, 7);

    // Fill the pool and force the eviction of p1; the barrier fails.
    pool.with_page(p2, |_| ()).unwrap();
    let err = pool
        .with_page(p3, |_| ())
        .expect_err("eviction must propagate the barrier failure");
    assert!(matches!(err, StorageError::Io(_)), "got: {err}");

    // The dirty byte must still be in the pool, not lost.
    let byte = pool.with_page(p1, |data| data[0]).unwrap();
    assert_eq!(byte, 0xAB, "dirty frame was dropped by the failed eviction");

    // Once the barrier recovers, the eviction goes through and the page
    // reaches disk intact.
    barrier_ok.store(true, Ordering::SeqCst);
    pool.with_page(p2, |_| ()).unwrap();
    pool.with_page(p3, |_| ()).unwrap();
    let byte = pool.with_page(p1, |data| data[0]).unwrap();
    assert_eq!(byte, 0xAB);
    fs::remove_dir_all(&dir).ok();
}

/// Same property one layer down: the eviction's *page write* fails
/// (injected I/O error). The frame must survive in the pool and the
/// next eviction attempt must succeed once the fault clears.
#[test]
fn failed_eviction_write_keeps_the_dirty_frame() {
    // Probe: learn the write index of the eviction's page write.
    let write_idx = {
        let dir = tmpdir("evict-probe");
        let ctl = FaultController::new(FaultPlan::none());
        let pool = BufferPool::open_with(&dir, 2, &ctl.vfs()).unwrap();
        let p1 = pool.allocate_page().unwrap();
        let p2 = pool.allocate_page().unwrap();
        let p3 = pool.allocate_page().unwrap();
        pool.with_page_mut(p1, |data| data[0] = 0xCD).unwrap();
        pool.with_page(p2, |_| ()).unwrap();
        let w = ctl.writes();
        pool.with_page(p3, |_| ()).unwrap(); // evicts dirty p1
        assert!(ctl.writes() > w, "eviction did not write");
        fs::remove_dir_all(&dir).ok();
        w
    };

    let dir = tmpdir("evict");
    let ctl = FaultController::new(FaultPlan::none().with(At::Write(write_idx), FaultKind::FailIo));
    let pool = BufferPool::open_with(&dir, 2, &ctl.vfs()).unwrap();
    let p1 = pool.allocate_page().unwrap();
    let p2 = pool.allocate_page().unwrap();
    let p3 = pool.allocate_page().unwrap();
    pool.with_page_mut(p1, |data| data[0] = 0xCD).unwrap();
    pool.with_page(p2, |_| ()).unwrap();

    let err = pool
        .with_page(p3, |_| ())
        .expect_err("eviction write failure must surface");
    assert!(matches!(err, StorageError::Io(_)), "got: {err}");
    assert_eq!(ctl.injected(), 1);

    // Frame intact; with the one-shot fault consumed, eviction succeeds
    // and the bytes land on disk.
    assert_eq!(pool.with_page(p1, |d| d[0]).unwrap(), 0xCD);
    pool.with_page(p3, |_| ()).unwrap();
    assert_eq!(pool.with_page(p1, |d| d[0]).unwrap(), 0xCD);
    fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------------------------------
// Regression: abort rollback must replay at its place in history
// ----------------------------------------------------------------------

/// Found by the crash-point sweep: recovery used to classify *aborted*
/// transactions as losers and roll them back at the end of the redo
/// pass. But an abort's rollback happened in place, at the point in
/// history where its Abort record sits — and a slot freed by an abort
/// may be reused by a later committed insert. The late undo stomped the
/// reused slot, deleting the committed row.
#[test]
fn aborted_txn_slot_reuse_survives_recovery() {
    let dir = tmpdir("abort-reuse");
    let table;
    let committed_rid;
    let aborted_rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        table = eng.create_table("t").unwrap();
        // Abort an insert, freeing its slot.
        let mut txn = eng.begin().unwrap();
        aborted_rid = eng.insert(&mut txn, table, b"aborted row").unwrap();
        eng.abort(txn).unwrap();
        // A committed insert reuses the freed slot; its commit also
        // makes the aborted transaction's records durable.
        let mut txn = eng.begin().unwrap();
        committed_rid = eng.insert(&mut txn, table, b"committed row").unwrap();
        eng.commit(txn).unwrap();
        assert_eq!(
            aborted_rid, committed_rid,
            "insert did not reuse the freed slot; the test would be vacuous"
        );
        // Crash (no shutdown checkpoint): recovery must replay the log.
        std::mem::forget(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    assert!(eng.last_recovery().replayed > 0);
    let mut txn = eng.begin().unwrap();
    assert_eq!(
        eng.get(&mut txn, table, committed_rid).unwrap().as_deref(),
        Some(&b"committed row"[..]),
        "recovery's late abort-undo stomped the reused slot"
    );
    eng.commit(txn).unwrap();
    drop(eng);
    fs::remove_dir_all(&dir).ok();
}

/// The inverse guard: an aborted insert whose slot was *not* reused
/// must stay invisible after recovery (no resurrection by the redo
/// pass).
#[test]
fn aborted_txn_stays_invisible_after_recovery() {
    let dir = tmpdir("abort-gone");
    let table;
    let aborted_rid;
    {
        let eng = StorageEngine::open(&dir).unwrap();
        table = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        eng.insert(&mut txn, table, b"baseline").unwrap();
        eng.commit(txn).unwrap();
        let mut txn = eng.begin().unwrap();
        aborted_rid = eng
            .insert(&mut txn, table, b"aborted, never reused")
            .unwrap();
        eng.abort(txn).unwrap();
        // Sync the abort records into the durable log via another commit.
        let mut txn = eng.begin().unwrap();
        eng.insert(&mut txn, table, b"syncer").unwrap();
        eng.commit(txn).unwrap();
        std::mem::forget(eng);
    }
    let eng = StorageEngine::open(&dir).unwrap();
    assert!(eng.last_recovery().replayed > 0);
    let mut txn = eng.begin().unwrap();
    let visible = eng.get(&mut txn, table, aborted_rid).unwrap();
    assert_ne!(
        visible.as_deref(),
        Some(&b"aborted, never reused"[..]),
        "recovery resurrected an aborted insert"
    );
    eng.commit(txn).unwrap();
    drop(eng);
    fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------------------------------
// Satellite 2: torn WAL tails at every byte offset
// ----------------------------------------------------------------------

fn torture_wal_records() -> Vec<WalRecord> {
    let mut recs = Vec::new();
    for t in 0..12u64 {
        recs.push(WalRecord::Begin { txn: t });
        recs.push(WalRecord::Insert {
            txn: t,
            table: 1,
            rid: Rid::new(t + 1, (t % 5) as u16),
            body: format!("body-{t}-{}", "z".repeat((t as usize * 13) % 90)).into_bytes(),
        });
        if t % 3 == 0 {
            recs.push(WalRecord::Update {
                txn: t,
                table: 1,
                rid: Rid::new(t + 1, 0),
                old: b"before".to_vec(),
                new: format!("after-{t}").into_bytes(),
            });
        }
        recs.push(if t % 4 == 3 {
            WalRecord::Abort { txn: t }
        } else {
            WalRecord::Commit { txn: t }
        });
    }
    recs
}

/// Frame byte boundaries of `buf` (end offset of each complete frame).
fn frame_ends(buf: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 0;
    while pos + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        assert!(pos <= buf.len(), "generator wrote a torn log");
        ends.push(pos);
    }
    ends
}

/// Truncating the log at *every* byte offset must replay to exactly the
/// records whose frames survived whole: no panic, no error, no lost
/// earlier record, no phantom.
#[test]
fn wal_tail_truncated_at_every_byte_offset_replays_cleanly() {
    let dir = tmpdir("wal-tail");
    let records = torture_wal_records();
    {
        let mut wal = Wal::open(&dir).unwrap();
        for rec in &records {
            wal.append(rec).unwrap();
        }
        wal.sync().unwrap();
    }
    let full = fs::read(dir.join("wal.log")).unwrap();
    let ends = frame_ends(&full);
    assert_eq!(ends.len(), records.len());

    let cut_dir = tmpdir("wal-tail-cut");
    fs::create_dir_all(&cut_dir).unwrap();
    for cut in 0..=full.len() {
        fs::write(cut_dir.join("wal.log"), &full[..cut]).unwrap();
        let (recs, valid) =
            Wal::replay(&cut_dir).unwrap_or_else(|e| panic!("replay errored at cut {cut}: {e}"));
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            recs.len(),
            expect,
            "cut at byte {cut}: expected {expect} surviving records, got {}",
            recs.len()
        );
        assert_eq!(recs.as_slice(), &records[..expect], "cut at byte {cut}");
        assert_eq!(valid as usize, ends[..expect].last().copied().unwrap_or(0));
    }

    // Corruption (not truncation): flipping any byte must still yield a
    // clean prefix — every record before the damaged frame survives.
    for pos in (0..full.len()).step_by(7) {
        let mut bytes = full.clone();
        bytes[pos] ^= 0x40;
        fs::write(cut_dir.join("wal.log"), &bytes).unwrap();
        let (recs, _) = Wal::replay(&cut_dir)
            .unwrap_or_else(|e| panic!("replay errored with flip at {pos}: {e}"));
        let intact = ends.iter().filter(|&&e| e <= pos).count();
        assert!(
            recs.len() >= intact,
            "flip at byte {pos} lost committed records before the damage"
        );
        assert_eq!(
            &recs[..intact],
            &records[..intact],
            "flip at byte {pos} altered records before the damage"
        );
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&cut_dir).ok();
}

// ----------------------------------------------------------------------
// Torn data pages: a half-written page must never brick the open
// ----------------------------------------------------------------------

/// Tear the final page write of a clean shutdown at assorted offsets;
/// the reopened engine must recover every committed row (the WAL covers
/// the torn page) and never panic on the garbage tail.
#[test]
fn torn_page_write_recovers_from_the_log() {
    for keep in [1usize, 100, 4096, 8191] {
        // Probe: count writes so the fault can target the *last* one.
        let writes = {
            let dir = tmpdir(&format!("torn-page-probe-{keep}"));
            let ctl = FaultController::new(FaultPlan::none());
            {
                let engine =
                    StorageEngine::open_with_vfs(&dir, 16, &Registry::new(), &ctl.vfs()).unwrap();
                let t = engine.create_table("songs").unwrap();
                for i in 0..20 {
                    let mut txn = engine.begin().unwrap();
                    engine
                        .insert(&mut txn, t, format!("row-{i}").as_bytes())
                        .unwrap();
                    engine.commit(txn).unwrap();
                }
            }
            fs::remove_dir_all(&dir).ok();
            ctl.writes()
        };

        let dir = tmpdir(&format!("torn-page-{keep}"));
        let ctl = FaultController::new(
            FaultPlan::none().with(At::Write(writes - 1), FaultKind::TornWrite { keep }),
        );
        {
            let engine =
                StorageEngine::open_with_vfs(&dir, 16, &Registry::new(), &ctl.vfs()).unwrap();
            let t = engine.create_table("songs").unwrap();
            for i in 0..20 {
                let mut txn = engine.begin().unwrap();
                if engine
                    .insert(&mut txn, t, format!("row-{i}").as_bytes())
                    .and_then(|_| engine.commit(txn))
                    .is_err()
                {
                    break;
                }
            }
        }
        assert!(ctl.crashed(), "the torn write never fired (keep {keep})");

        let engine = StorageEngine::open(&dir).unwrap();
        let t = engine.table_id("songs").unwrap();
        let mut txn = engine.begin().unwrap();
        let rows = engine.scan(&mut txn, t).unwrap();
        // Every row whose commit reported Ok must be present; the probe
        // run committed all 20, and the torn write hit the *last* write,
        // so at most the final in-flight transaction may be missing.
        assert!(
            rows.len() >= 19,
            "keep {keep}: committed rows lost (found {})",
            rows.len()
        );
        engine.commit(txn).unwrap();
        drop(engine);
        fs::remove_dir_all(&dir).ok();
    }
}
