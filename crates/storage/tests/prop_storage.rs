//! Property tests: B+tree against a BTreeMap reference model, heap files
//! against a HashMap model, and WAL replay stability under arbitrary
//! truncation.

use std::collections::{BTreeSet, HashMap};

use proptest::prelude::*;

use mdm_storage::{BufferPool, HeapFile, Rid, Wal, WalRecord};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "mdm-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u64),
    Delete(u16, u64),
    Lookup(u16),
    Range(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        3 => (any::<u16>(), 0u64..50).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        1 => (any::<u16>(), 0u64..50).prop_map(|(k, v)| TreeOp::Delete(k, v)),
        1 => any::<u16>().prop_map(TreeOp::Lookup),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The B+tree agrees with a BTreeSet of (key, value) pairs under
    /// arbitrary interleavings of inserts, deletes, lookups, and ranges.
    #[test]
    fn btree_matches_reference(ops in proptest::collection::vec(tree_op(), 1..300)) {
        let dir = tmpdir("bt");
        let pool = BufferPool::open(&dir, 64).unwrap();
        let tree = mdm_storage::BTree::create(&pool).unwrap();
        let mut model: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();
        let key_bytes = |k: u16| k.to_be_bytes().to_vec();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    tree.insert(&pool, &key_bytes(k), v).unwrap();
                    model.insert((key_bytes(k), v));
                }
                TreeOp::Delete(k, v) => {
                    let existed = tree.delete(&pool, &key_bytes(k), v).unwrap();
                    prop_assert_eq!(existed, model.remove(&(key_bytes(k), v)));
                }
                TreeOp::Lookup(k) => {
                    let mut got = tree.lookup(&pool, &key_bytes(k)).unwrap();
                    got.sort_unstable();
                    let want: Vec<u64> = model
                        .iter()
                        .filter(|(key, _)| *key == key_bytes(k))
                        .map(|&(_, v)| v)
                        .collect();
                    prop_assert_eq!(got, want);
                }
                TreeOp::Range(a, b) => {
                    let mut got = Vec::new();
                    tree.range(&pool, Some(&key_bytes(a)), Some(&key_bytes(b)), |k, v| {
                        got.push((k.to_vec(), v));
                    })
                    .unwrap();
                    let want: Vec<(Vec<u8>, u64)> = model
                        .iter()
                        .filter(|(k, _)| *k >= key_bytes(a) && *k <= key_bytes(b))
                        .cloned()
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(tree.len(&pool).unwrap(), model.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    let body = proptest::collection::vec(any::<u8>(), 0..300);
    prop_oneof![
        3 => body.clone().prop_map(HeapOp::Insert),
        1 => (any::<usize>(), body).prop_map(|(i, b)| HeapOp::Update(i, b)),
        1 => any::<usize>().prop_map(HeapOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heap files agree with a HashMap<Rid, Vec<u8>> model; scans return
    /// exactly the live records.
    #[test]
    fn heap_matches_reference(ops in proptest::collection::vec(heap_op(), 1..150)) {
        let dir = tmpdir("heap");
        let pool = BufferPool::open(&dir, 16).unwrap();
        let mut heap = HeapFile::create(&pool).unwrap();
        let mut model: HashMap<Rid, Vec<u8>> = HashMap::new();
        let mut live: Vec<Rid> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Insert(body) => {
                    let (rid, _) = heap.insert(&pool, &body).unwrap();
                    prop_assert!(model.insert(rid, body).is_none(), "rid reused while live");
                    live.push(rid);
                }
                HeapOp::Update(i, body) => {
                    if !live.is_empty() {
                        let rid = live[i % live.len()];
                        let in_place = HeapFile::update(&pool, rid, &body).unwrap();
                        if in_place {
                            model.insert(rid, body);
                        } else {
                            // Page-full: engine-level code would relocate;
                            // here the record is unchanged.
                            let current = HeapFile::get(&pool, rid).unwrap();
                            prop_assert_eq!(
                                current.as_deref(),
                                model.get(&rid).map(Vec::as_slice)
                            );
                        }
                    }
                }
                HeapOp::Delete(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let rid = live.swap_remove(idx);
                        let old = HeapFile::delete(&pool, rid).unwrap();
                        prop_assert_eq!(Some(old), model.remove(&rid));
                    }
                }
            }
        }
        for (rid, body) in &model {
            let current = HeapFile::get(&pool, *rid).unwrap();
            prop_assert_eq!(current.as_deref(), Some(body.as_slice()));
        }
        let mut scanned: Vec<(Rid, Vec<u8>)> = heap.scan_all(&pool).unwrap();
        scanned.sort_by_key(|&(r, _)| r);
        let mut expected: Vec<(Rid, Vec<u8>)> = model.into_iter().collect();
        expected.sort_by_key(|&(r, _)| r);
        prop_assert_eq!(scanned, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// WAL replay of any byte-truncated log yields a prefix of the
    /// original records (torn-tail tolerance, never garbage).
    #[test]
    fn wal_truncation_yields_prefix(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 1..30),
        cut_fraction in 0.0f64..1.0
    ) {
        let dir = tmpdir("wal");
        let records: Vec<WalRecord> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| WalRecord::Insert {
                txn: i as u64,
                table: 1,
                rid: Rid::new(1, i as u16),
                body: b.clone(),
            })
            .collect();
        {
            let mut wal = Wal::open(&dir).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let path = dir.join("wal.log");
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (replayed, _) = Wal::replay(&dir).unwrap();
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()], "prefix property");
        std::fs::remove_dir_all(&dir).ok();
    }
}
