//! MVCC snapshot-read oracle suite.
//!
//! Proves the versioned heap gives read-only transactions a stable,
//! lock-free view: a property test replays arbitrary interleavings of
//! committed and aborted writers against a `BTreeMap` oracle and checks
//! a snapshot opened at every settle point, a GC test pins that
//! reclamation never frees a version a live snapshot can still see,
//! and a regression test pins that writers keep wait-die 2PL among
//! themselves while snapshot scans hold zero locks.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use mdm_storage::{StorageEngine, StorageError};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("mdm-mvcc-{}-{}-{}", std::process::id(), name, seq));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn encode_i64(v: i64) -> [u8; 8] {
    // Big-endian keeps byte order == numeric order for non-negatives.
    (v as u64).to_be_bytes()
}

/// One step of the generated two-lane writer program. Each lane owns
/// one table (table-level exclusive locks forbid two concurrently open
/// writers on the same table), so the interleaving exercises epochs and
/// in-flight visibility rather than the lock manager.
#[derive(Debug, Clone)]
enum Action {
    Insert,
    Mutate,
    Remove,
    Commit,
    Abort,
}

fn action_strategy() -> impl Strategy<Value = (usize, Action, u16)> {
    (
        0usize..2,
        prop_oneof![
            3 => Just(Action::Insert),
            2 => Just(Action::Mutate),
            1 => Just(Action::Remove),
            2 => Just(Action::Commit),
            1 => Just(Action::Abort),
        ],
        any::<u16>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleave two writer lanes (each a sequence of begin/write/
    /// commit-or-abort transactions on its own table), open a snapshot
    /// at every commit and abort point, hold every snapshot open until
    /// the end, and then check each against the serial-replay oracle:
    /// a snapshot must show exactly the rows committed before it
    /// opened — never an in-flight write, never an aborted one, and
    /// never a later commit.
    #[test]
    fn snapshots_match_the_serial_replay_oracle(
        program in proptest::collection::vec(action_strategy(), 1..48)
    ) {
        let dir = tmpdir("oracle");
        let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
        let tables = [
            eng.create_table("lane0").unwrap(),
            eng.create_table("lane1").unwrap(),
        ];

        // Oracle: committed rows per lane, keyed by rid. `views` holds
        // each lane's would-be state if its open transaction commits.
        let mut oracle: [BTreeMap<u64, String>; 2] = [BTreeMap::new(), BTreeMap::new()];
        let mut open: [Option<(mdm_storage::Txn, BTreeMap<u64, String>)>; 2] = [None, None];
        let mut snaps: Vec<(mdm_storage::ReadSnapshot, [BTreeMap<u64, String>; 2])> = Vec::new();
        let mut next_val = 0u32;

        for (lane, action, pick) in program {
            let table = tables[lane];
            match action {
                Action::Insert => {
                    let (txn, view) = match open[lane].as_mut() {
                        Some(entry) => entry,
                        None => {
                            open[lane] = Some((eng.begin().unwrap(), oracle[lane].clone()));
                            open[lane].as_mut().unwrap()
                        }
                    };
                    next_val += 1;
                    let body = format!("v{next_val}");
                    let rid = eng.insert(txn, table, body.as_bytes()).unwrap();
                    view.insert(rid.to_u64(), body);
                }
                Action::Mutate | Action::Remove => {
                    let Some((txn, view)) = open[lane].as_mut() else { continue };
                    if view.is_empty() {
                        continue;
                    }
                    let keys: Vec<u64> = view.keys().copied().collect();
                    let rid64 = keys[pick as usize % keys.len()];
                    let rid = mdm_storage::Rid::from_u64(rid64);
                    if matches!(action, Action::Mutate) {
                        next_val += 1;
                        let body = format!("v{next_val}");
                        let new = eng.update(txn, table, rid, body.as_bytes()).unwrap();
                        view.remove(&rid64);
                        view.insert(new.to_u64(), body);
                    } else {
                        eng.delete(txn, table, rid).unwrap();
                        view.remove(&rid64);
                    }
                }
                Action::Commit => {
                    let Some((txn, view)) = open[lane].take() else { continue };
                    eng.commit(txn).unwrap();
                    oracle[lane] = view;
                    snaps.push((eng.snapshot(), oracle.clone()));
                }
                Action::Abort => {
                    let Some((txn, _view)) = open[lane].take() else { continue };
                    eng.abort(txn).unwrap();
                    snaps.push((eng.snapshot(), oracle.clone()));
                }
            }
        }
        // Settle anything still open as an abort; its writes must stay
        // invisible to every snapshot.
        for entry in open.into_iter().flatten() {
            eng.abort(entry.0).unwrap();
        }
        snaps.push((eng.snapshot(), oracle.clone()));

        // Every held snapshot still reproduces its commit-point state,
        // even though later writers have since rewritten the tables.
        for (idx, (snap, expected)) in snaps.iter().enumerate() {
            for lane in 0..2 {
                let got: BTreeMap<u64, String> = snap
                    .scan(tables[lane])
                    .unwrap()
                    .into_iter()
                    .map(|(rid, body)| (rid.to_u64(), String::from_utf8(body).unwrap()))
                    .collect();
                prop_assert_eq!(
                    &got,
                    &expected[lane],
                    "snapshot {} lane {} diverged from oracle",
                    idx,
                    lane
                );
                // Point reads agree with the scan.
                for (rid64, val) in &expected[lane] {
                    let body = snap
                        .get(tables[lane], mdm_storage::Rid::from_u64(*rid64))
                        .unwrap();
                    prop_assert_eq!(body.as_deref(), Some(val.as_bytes()));
                }
            }
        }
        drop(snaps);
        drop(eng);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Version GC must never free a version a live snapshot can still see:
/// a snapshot opened before fifty rewrites still reads the original
/// row afterwards, and only once it closes does the version count drop
/// and the reclaimed counter advance.
#[test]
fn gc_never_frees_versions_a_snapshot_can_see() {
    let dir = tmpdir("gc");
    let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
    let t = eng.create_table("t").unwrap();

    let mut txn = eng.begin().unwrap();
    let rid = eng.insert(&mut txn, t, b"original").unwrap();
    eng.commit(txn).unwrap();

    let pinned = eng.snapshot();
    for i in 0..50 {
        let mut txn = eng.begin().unwrap();
        eng.update(&mut txn, t, rid, format!("rewrite {i}").as_bytes())
            .unwrap();
        eng.commit(txn).unwrap();
    }

    let snap = eng.metrics_snapshot();
    let live = snap.gauge("mdm_mvcc_versions_live").unwrap_or(0);
    assert!(
        live >= 1,
        "pinned snapshot must hold at least one old version live, saw {live}"
    );
    // The pinned snapshot still sees the pre-rewrite world.
    assert_eq!(
        pinned.get(t, rid).unwrap().as_deref(),
        Some(&b"original"[..])
    );
    // A fresh snapshot sees the newest commit.
    assert_eq!(
        eng.snapshot().get(t, rid).unwrap().as_deref(),
        Some(&b"rewrite 49"[..])
    );

    drop(pinned);
    // GC runs at settle points; one more commit sweeps the horizon
    // forward now that no snapshot pins the old versions.
    let mut txn = eng.begin().unwrap();
    eng.update(&mut txn, t, rid, b"final").unwrap();
    eng.commit(txn).unwrap();

    let snap = eng.metrics_snapshot();
    let reclaimed = snap
        .counter("mdm_mvcc_versions_reclaimed_total")
        .unwrap_or(0);
    assert!(
        reclaimed >= 50,
        "expected ≥50 reclaimed versions, saw {reclaimed}"
    );
    assert_eq!(
        eng.snapshot().get(t, rid).unwrap().as_deref(),
        Some(&b"final"[..])
    );
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

/// Writers keep wait-die two-phase locking among themselves, and a
/// concurrent snapshot scan holds zero read locks while they fight:
/// the younger writer dies on the older writer's exclusive lock, the
/// snapshot neither blocks nor aborts, and the shared-lock gauge stays
/// at zero throughout the scan.
#[test]
fn writers_wait_die_while_snapshot_reads_hold_no_locks() {
    let dir = tmpdir("waitdie");
    let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
    let t = eng.create_table("t").unwrap();

    let mut seed = eng.begin().unwrap();
    let rid = eng.insert(&mut seed, t, b"committed").unwrap();
    eng.commit(seed).unwrap();

    // Older writer takes the table's exclusive lock and sits on it.
    let mut older = eng.begin().unwrap();
    eng.update(&mut older, t, rid, b"older in flight").unwrap();

    // Younger writer must die, not wait: wait-die only lets the older
    // transaction block.
    let mut younger = eng.begin().unwrap();
    match eng.update(&mut younger, t, rid, b"younger") {
        Err(StorageError::Deadlock) => {}
        other => panic!("younger writer should die under wait-die, got {other:?}"),
    }
    eng.abort(younger).unwrap();

    // A long snapshot scan runs against the same table while the
    // exclusive lock is held — it cannot block, cannot abort, and
    // takes no shared lock the gauge could count.
    let snap = eng.snapshot();
    let rows = snap.scan(t).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows[0].1, b"committed",
        "snapshot leaked an in-flight write"
    );

    let m = eng.metrics_snapshot();
    assert_eq!(
        m.gauge("mdm_lock_held_shared").unwrap_or(0),
        0,
        "snapshot reads must not hold shared locks"
    );
    assert!(
        m.gauge("mdm_lock_held_exclusive").unwrap_or(0) >= 1,
        "older writer's exclusive lock should still be held"
    );

    eng.commit(older).unwrap();
    // The pre-commit snapshot stays stable; a new one sees the commit.
    assert_eq!(
        snap.get(t, rid).unwrap().as_deref(),
        Some(&b"committed"[..])
    );
    assert_eq!(
        eng.snapshot().get(t, rid).unwrap().as_deref(),
        Some(&b"older in flight"[..])
    );
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

/// The transaction-id floor persists across restarts — including crash
/// restarts — so recycled ids can never make old stamps lie about
/// visibility.
#[test]
fn txn_ids_never_recycle_across_reopen() {
    let dir = tmpdir("floor");
    let mut last_id = 0;

    // Crash reopen: the floor comes from the WAL's highest logged txn.
    {
        let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
        let t = eng.create_table("t").unwrap();
        let mut txn = eng.begin().unwrap();
        last_id = last_id.max(txn.id());
        eng.insert(&mut txn, t, b"before crash").unwrap();
        eng.commit(txn).unwrap();
        std::mem::forget(eng);
    }
    {
        let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
        let txn = eng.begin().unwrap();
        assert!(
            txn.id() > last_id,
            "txn id {} recycled after crash reopen (floor ≤ {last_id})",
            txn.id()
        );
        last_id = txn.id();
        eng.abort(txn).unwrap();
        // Clean shutdown persists the floor in the catalog even though
        // this generation logged no writes.
    }

    // Clean reopen: the floor comes from the catalog, not the WAL.
    let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
    let t = eng.table_id("t").unwrap();
    let mut txn = eng.begin().unwrap();
    assert!(
        txn.id() > last_id,
        "txn id {} recycled after clean reopen (floor ≤ {last_id})",
        txn.id()
    );
    // Old stamps stay visible, new writes resolve normally.
    let rows = eng.scan(&mut txn, t).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1, b"before crash");
    eng.insert(&mut txn, t, b"after reopen").unwrap();
    eng.commit(txn).unwrap();
    let snap = eng.snapshot();
    let mut bodies: Vec<Vec<u8>> = snap
        .scan(t)
        .unwrap()
        .into_iter()
        .map(|(_, body)| body)
        .collect();
    bodies.sort();
    assert_eq!(
        bodies,
        vec![b"after reopen".to_vec(), b"before crash".to_vec()]
    );
    drop(snap);
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}

/// Indexed probes and full scans agree under a snapshot: the index
/// plan's candidates, re-qualified against the key, return exactly the
/// rows the scan plan finds — with an in-flight writer's entries
/// filtered out by the same visibility rule.
#[test]
fn snapshot_index_probe_matches_scan_plan() {
    let dir = tmpdir("idxparity");
    let eng = StorageEngine::open_with_capacity(&dir, 64).unwrap();
    let t = eng.create_table("t").unwrap();
    eng.create_index(t, "by_key").unwrap();

    let mut txn = eng.begin().unwrap();
    for i in 0i64..12 {
        let body = format!("k={}|row{i}", i % 3);
        let rid = eng.insert(&mut txn, t, body.as_bytes()).unwrap();
        eng.index_insert(&mut txn, t, "by_key", &encode_i64(i % 3), rid)
            .unwrap();
    }
    eng.commit(txn).unwrap();

    // An in-flight writer adds more k=1 rows; no snapshot may see them.
    let mut wild = eng.begin().unwrap();
    for i in 12i64..16 {
        let body = format!("k=1|row{i}");
        let rid = eng.insert(&mut wild, t, body.as_bytes()).unwrap();
        eng.index_insert(&mut wild, t, "by_key", &encode_i64(1), rid)
            .unwrap();
    }

    let snap = eng.snapshot();
    for key in 0i64..3 {
        // Index plan: candidate rids, re-qualified against the key the
        // same way the scan plan qualifies rows.
        let mut via_index: Vec<String> = Vec::new();
        for rid in snap.index_lookup(t, "by_key", &encode_i64(key)).unwrap() {
            if let Some(body) = snap.get(t, rid).unwrap() {
                let text = String::from_utf8(body).unwrap();
                if text.starts_with(&format!("k={key}|")) {
                    via_index.push(text);
                }
            }
        }
        via_index.sort();
        // Scan plan: qualify every visible row.
        let mut via_scan: Vec<String> = snap
            .scan(t)
            .unwrap()
            .into_iter()
            .map(|(_, body)| String::from_utf8(body).unwrap())
            .filter(|text| text.starts_with(&format!("k={key}|")))
            .collect();
        via_scan.sort();
        assert_eq!(via_index, via_scan, "plans diverged for key {key}");
        assert_eq!(via_scan.len(), 4, "key {key} should have exactly 4 rows");
        assert!(
            via_scan.iter().all(|r| !r.contains("row12")),
            "in-flight write leaked through the index plan"
        );
    }

    // After the writer commits, the old snapshot is unchanged and a
    // fresh one sees the new entries through both plans.
    eng.commit(wild).unwrap();
    assert_eq!(
        snap.index_lookup(t, "by_key", &encode_i64(1))
            .unwrap()
            .len(),
        4,
        "pre-commit snapshot grew new index entries"
    );
    let fresh = eng.snapshot();
    let hits = fresh.index_lookup(t, "by_key", &encode_i64(1)).unwrap();
    let qualified = hits
        .iter()
        .filter_map(|rid| fresh.get(t, *rid).unwrap())
        .filter(|body| body.starts_with(b"k=1|"))
        .count();
    assert_eq!(qualified, 8);
    drop(snap);
    drop(fresh);
    drop(eng);
    std::fs::remove_dir_all(&dir).ok();
}
