//! Multi-threaded stress: eight clients run mixed insert/update/scan
//! workloads against one engine while lock-free snapshot readers
//! continuously scan a ledger table, the process "crashes" (the engine
//! is leaked so no clean-shutdown checkpoint runs), and recovery must
//! reconstruct exactly the committed state — fifty rounds in a row.
//! Every snapshot scan must see an internally consistent ledger (the
//! balances sum to the opening total; no torn view of a two-row
//! transfer), and the reader path must record zero wait-die aborts.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mdm_storage::{StorageEngine, StorageError};

const THREADS: usize = 8;
const TXNS_PER_THREAD: usize = 6;
const ITERATIONS: usize = 50;
const ACCOUNTS: usize = 8;
const OPENING: i64 = 1000;
const READERS: usize = 4;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mdm-stress-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn balance(body: &[u8]) -> i64 {
    let text = std::str::from_utf8(body).unwrap();
    text.split_once('=').unwrap().1.parse().unwrap()
}

#[test]
fn eight_clients_crash_recover_fifty_rounds() {
    for round in 0..ITERATIONS {
        let dir = tmpdir(&format!("r{round}"));
        {
            let eng = StorageEngine::open_with_capacity(&dir, 128).unwrap();
            let shared = eng.create_table("shared").unwrap();
            // One committed row per thread in the shared table; the
            // threads contend on it under 2PL below.
            let mut seed = eng.begin().unwrap();
            let shared_rids: Vec<_> = (0..THREADS)
                .map(|i| {
                    eng.insert(&mut seed, shared, format!("s{i}=0").as_bytes())
                        .unwrap()
                })
                .collect();
            eng.commit(seed).unwrap();
            let tables: Vec<_> = (0..THREADS)
                .map(|i| eng.create_table(&format!("t{i}")).unwrap())
                .collect();

            // A ledger the snapshot readers watch: transfers move money
            // between accounts two rows at a time, so the total is
            // invariant in every consistent view.
            let ledger = eng.create_table("ledger").unwrap();
            let mut seed = eng.begin().unwrap();
            for k in 0..ACCOUNTS {
                eng.insert(&mut seed, ledger, format!("a{k}={OPENING}").as_bytes())
                    .unwrap();
            }
            eng.commit(seed).unwrap();

            let stop = AtomicBool::new(false);
            let reader_aborts = AtomicU64::new(0);
            let reader_scans = AtomicU64::new(0);

            std::thread::scope(|s| {
                let mut writers = Vec::new();
                for i in 0..THREADS {
                    let eng = eng.clone();
                    let table = tables[i];
                    let srid = shared_rids[i];
                    writers.push(s.spawn(move || {
                        for j in 0..TXNS_PER_THREAD {
                            // Private table: insert, rewrite, read back,
                            // scan-check — one committed txn per loop.
                            let mut txn = eng.begin().unwrap();
                            let rid = eng
                                .insert(&mut txn, table, format!("raw {i}/{j}").as_bytes())
                                .unwrap();
                            let rid = eng
                                .update(&mut txn, table, rid, format!("row {i}/{j}").as_bytes())
                                .unwrap();
                            assert_eq!(
                                eng.get(&mut txn, table, rid).unwrap().unwrap(),
                                format!("row {i}/{j}").as_bytes()
                            );
                            assert_eq!(eng.scan(&mut txn, table).unwrap().len(), j + 1);
                            eng.commit(txn).unwrap();

                            // Shared table: bump this thread's row. Other
                            // threads' S/X locks conflict, so wait-die can
                            // kill us — abort and retry until it commits.
                            loop {
                                let mut txn = eng.begin().unwrap();
                                let body = format!("s{i}={}", j + 1);
                                match eng.update(&mut txn, shared, srid, body.as_bytes()) {
                                    Ok(_) => {
                                        eng.commit(txn).unwrap();
                                        break;
                                    }
                                    Err(StorageError::Deadlock) => {
                                        eng.abort(txn).unwrap();
                                    }
                                    Err(e) => panic!("unexpected error: {e:?}"),
                                }
                            }

                            // Ledger: move money between two accounts in
                            // one transaction — a multi-row write the
                            // snapshot readers must never see half of.
                            let (src, dst) = ((i + j) % ACCOUNTS, (i + j + 1) % ACCOUNTS);
                            let amount = 1 + ((i * 3 + j) % 7) as i64;
                            loop {
                                let mut txn = eng.begin().unwrap();
                                let step = (|| {
                                    let rows = eng.scan(&mut txn, ledger)?;
                                    let mut from = None;
                                    let mut to = None;
                                    for (rid, body) in rows {
                                        let text = String::from_utf8(body).unwrap();
                                        let name = text.split_once('=').unwrap().0.to_string();
                                        let bal = balance(text.as_bytes());
                                        if name == format!("a{src}") {
                                            from = Some((rid, bal));
                                        } else if name == format!("a{dst}") {
                                            to = Some((rid, bal));
                                        }
                                    }
                                    let (frid, fbal) = from.unwrap();
                                    let (trid, tbal) = to.unwrap();
                                    let debit = format!("a{src}={}", fbal - amount);
                                    eng.update(&mut txn, ledger, frid, debit.as_bytes())?;
                                    let credit = format!("a{dst}={}", tbal + amount);
                                    eng.update(&mut txn, ledger, trid, credit.as_bytes())?;
                                    Ok::<(), StorageError>(())
                                })();
                                match step {
                                    Ok(()) => {
                                        eng.commit(txn).unwrap();
                                        break;
                                    }
                                    Err(StorageError::Deadlock) => {
                                        eng.abort(txn).unwrap();
                                        // Let the older holder run before
                                        // retrying with a younger id.
                                        std::thread::yield_now();
                                    }
                                    Err(e) => panic!("unexpected error: {e:?}"),
                                }
                            }
                        }
                        // An aborted transaction whose effects must stay
                        // invisible after recovery.
                        let mut txn = eng.begin().unwrap();
                        eng.insert(&mut txn, table, b"ghost").unwrap();
                        eng.abort(txn).unwrap();
                    }));
                }

                // Lock-free snapshot readers: scan the ledger over and
                // over while the writers transfer. Consistency check:
                // every view sums to the opening total. The snapshot
                // path takes no locks, so it can never lose wait-die.
                for _ in 0..READERS {
                    let eng = eng.clone();
                    let (stop, aborts, scans) = (&stop, &reader_aborts, &reader_scans);
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            // Brief pause so spinning readers don't starve
                            // the writers on small machines.
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            let snap = eng.snapshot();
                            match snap.scan(ledger) {
                                Ok(rows) => {
                                    assert_eq!(
                                        rows.len(),
                                        ACCOUNTS,
                                        "snapshot saw a partial ledger"
                                    );
                                    let sum: i64 = rows.iter().map(|(_, body)| balance(body)).sum();
                                    assert_eq!(
                                        sum,
                                        ACCOUNTS as i64 * OPENING,
                                        "torn view of a multi-row transfer"
                                    );
                                    scans.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }

                for w in writers {
                    w.join().unwrap();
                }
                stop.store(true, Ordering::Relaxed);
            });

            assert_eq!(
                reader_aborts.load(Ordering::Relaxed),
                0,
                "snapshot readers must never abort"
            );
            assert!(
                reader_scans.load(Ordering::Relaxed) > 0,
                "readers never completed a scan"
            );

            // Leave one transaction in flight at the crash; recovery (or
            // the lost unsynced log tail) must erase it either way.
            let mut inflight = eng.begin().unwrap();
            eng.insert(&mut inflight, tables[0], b"inflight").unwrap();
            std::mem::forget(inflight);
            std::mem::forget(eng); // crash: no clean-shutdown checkpoint
        }

        let eng = StorageEngine::open_with_capacity(&dir, 128).unwrap();
        let shared = eng.table_id("shared").unwrap();
        let mut txn = eng.begin().unwrap();
        for i in 0..THREADS {
            let table = eng.table_id(&format!("t{i}")).unwrap();
            let mut rows: Vec<String> = eng
                .scan(&mut txn, table)
                .unwrap()
                .into_iter()
                .map(|(_, body)| String::from_utf8(body).unwrap())
                .collect();
            rows.sort();
            let mut expected: Vec<String> = (0..TXNS_PER_THREAD)
                .map(|j| format!("row {i}/{j}"))
                .collect();
            expected.sort();
            assert_eq!(rows, expected, "round {round}, table t{i}");
        }
        let mut shared_rows: Vec<String> = eng
            .scan(&mut txn, shared)
            .unwrap()
            .into_iter()
            .map(|(_, body)| String::from_utf8(body).unwrap())
            .collect();
        shared_rows.sort();
        let mut expected: Vec<String> = (0..THREADS)
            .map(|i| format!("s{i}={TXNS_PER_THREAD}"))
            .collect();
        expected.sort();
        assert_eq!(shared_rows, expected, "round {round}, shared table");

        // The recovered ledger must still sum to the opening total, and
        // a lock-free snapshot must agree with the locked scan exactly.
        let ledger = eng.table_id("ledger").unwrap();
        let mut locked: Vec<String> = eng
            .scan(&mut txn, ledger)
            .unwrap()
            .into_iter()
            .map(|(_, body)| String::from_utf8(body).unwrap())
            .collect();
        locked.sort();
        let sum: i64 = locked.iter().map(|row| balance(row.as_bytes())).sum();
        assert_eq!(sum, ACCOUNTS as i64 * OPENING, "round {round}, ledger sum");
        let snap = eng.snapshot();
        let mut via_snapshot: Vec<String> = snap
            .scan(ledger)
            .unwrap()
            .into_iter()
            .map(|(_, body)| String::from_utf8(body).unwrap())
            .collect();
        via_snapshot.sort();
        assert_eq!(
            via_snapshot, locked,
            "round {round}, snapshot vs locked scan"
        );
        drop(snap);
        eng.commit(txn).unwrap();
        drop(eng);
        std::fs::remove_dir_all(&dir).ok();
    }
}
