//! Multi-threaded stress: eight clients run mixed insert/update/scan
//! workloads against one engine, the process "crashes" (the engine is
//! leaked so no clean-shutdown checkpoint runs), and recovery must
//! reconstruct exactly the committed state — fifty rounds in a row.

use std::path::PathBuf;

use mdm_storage::{StorageEngine, StorageError};

const THREADS: usize = 8;
const TXNS_PER_THREAD: usize = 6;
const ITERATIONS: usize = 50;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mdm-stress-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn eight_clients_crash_recover_fifty_rounds() {
    for round in 0..ITERATIONS {
        let dir = tmpdir(&format!("r{round}"));
        {
            let eng = StorageEngine::open_with_capacity(&dir, 128).unwrap();
            let shared = eng.create_table("shared").unwrap();
            // One committed row per thread in the shared table; the
            // threads contend on it under 2PL below.
            let mut seed = eng.begin().unwrap();
            let shared_rids: Vec<_> = (0..THREADS)
                .map(|i| {
                    eng.insert(&mut seed, shared, format!("s{i}=0").as_bytes())
                        .unwrap()
                })
                .collect();
            eng.commit(seed).unwrap();
            let tables: Vec<_> = (0..THREADS)
                .map(|i| eng.create_table(&format!("t{i}")).unwrap())
                .collect();

            std::thread::scope(|s| {
                for i in 0..THREADS {
                    let eng = eng.clone();
                    let table = tables[i];
                    let srid = shared_rids[i];
                    s.spawn(move || {
                        for j in 0..TXNS_PER_THREAD {
                            // Private table: insert, rewrite, read back,
                            // scan-check — one committed txn per loop.
                            let mut txn = eng.begin().unwrap();
                            let rid = eng
                                .insert(&mut txn, table, format!("raw {i}/{j}").as_bytes())
                                .unwrap();
                            let rid = eng
                                .update(&mut txn, table, rid, format!("row {i}/{j}").as_bytes())
                                .unwrap();
                            assert_eq!(
                                eng.get(&mut txn, table, rid).unwrap().unwrap(),
                                format!("row {i}/{j}").as_bytes()
                            );
                            assert_eq!(eng.scan(&mut txn, table).unwrap().len(), j + 1);
                            eng.commit(txn).unwrap();

                            // Shared table: bump this thread's row. Other
                            // threads' S/X locks conflict, so wait-die can
                            // kill us — abort and retry until it commits.
                            loop {
                                let mut txn = eng.begin().unwrap();
                                let body = format!("s{i}={}", j + 1);
                                match eng.update(&mut txn, shared, srid, body.as_bytes()) {
                                    Ok(_) => {
                                        eng.commit(txn).unwrap();
                                        break;
                                    }
                                    Err(StorageError::Deadlock) => {
                                        eng.abort(txn).unwrap();
                                    }
                                    Err(e) => panic!("unexpected error: {e:?}"),
                                }
                            }
                        }
                        // An aborted transaction whose effects must stay
                        // invisible after recovery.
                        let mut txn = eng.begin().unwrap();
                        eng.insert(&mut txn, table, b"ghost").unwrap();
                        eng.abort(txn).unwrap();
                    });
                }
            });

            // Leave one transaction in flight at the crash; recovery (or
            // the lost unsynced log tail) must erase it either way.
            let mut inflight = eng.begin().unwrap();
            eng.insert(&mut inflight, tables[0], b"inflight").unwrap();
            std::mem::forget(inflight);
            std::mem::forget(eng); // crash: no clean-shutdown checkpoint
        }

        let eng = StorageEngine::open_with_capacity(&dir, 128).unwrap();
        let shared = eng.table_id("shared").unwrap();
        let mut txn = eng.begin().unwrap();
        for i in 0..THREADS {
            let table = eng.table_id(&format!("t{i}")).unwrap();
            let mut rows: Vec<String> = eng
                .scan(&mut txn, table)
                .unwrap()
                .into_iter()
                .map(|(_, body)| String::from_utf8(body).unwrap())
                .collect();
            rows.sort();
            let mut expected: Vec<String> = (0..TXNS_PER_THREAD)
                .map(|j| format!("row {i}/{j}"))
                .collect();
            expected.sort();
            assert_eq!(rows, expected, "round {round}, table t{i}");
        }
        let mut shared_rows: Vec<String> = eng
            .scan(&mut txn, shared)
            .unwrap()
            .into_iter()
            .map(|(_, body)| String::from_utf8(body).unwrap())
            .collect();
        shared_rows.sort();
        let mut expected: Vec<String> = (0..THREADS)
            .map(|i| format!("s{i}={TXNS_PER_THREAD}"))
            .collect();
        expected.sort();
        assert_eq!(shared_rows, expected, "round {round}, shared table");
        eng.commit(txn).unwrap();
        drop(eng);
        std::fs::remove_dir_all(&dir).ok();
    }
}
