//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot fetch crates.io, so this crate vendors
//! the subset of the criterion API the workspace's benches use:
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `iter` / `iter_batched` / `iter_with_large_drop`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each routine is warmed once and
//! then timed in a wall-clock loop until the group's `measurement_time`
//! budget is used (setup closures in `iter_batched` are excluded from
//! the timed portion). Results are printed as `group/id  mean ± n iters`
//! with an optional throughput line. There is no statistical analysis,
//! HTML report, or regression store — this harness exists to keep the
//! benches compiling, running, and producing comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement = self.default_measurement;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            measurement,
            throughput: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup (advisory only in this harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs; many per batch.
    SmallInput,
    /// Large inputs; few per batch.
    LargeInput,
    /// One fresh input per timed iteration.
    PerIteration,
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Wall-clock budget for each benchmark's timed loop.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            budget: self.measurement,
            result: None,
        };
        f(&mut b);
        self.report(&id, b.result);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            budget: self.measurement,
            result: None,
        };
        f(&mut b, input);
        self.report(&id, b.result);
        self
    }

    /// Ends the group (reports are printed as benches run).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, result: Option<Sample>) {
        let Some(s) = result else {
            eprintln!("{}/{}: no measurement", self.name, id.label);
            return;
        };
        let mean = s.total.as_secs_f64() / s.iters as f64;
        let mut line = format!(
            "{}/{}: {} / iter ({} iters)",
            self.name,
            id.label,
            fmt_time(mean),
            s.iters
        );
        match self.throughput {
            Some(Throughput::Bytes(b)) => {
                line.push_str(&format!(
                    "  {:.1} MiB/s",
                    b as f64 / mean / (1 << 20) as f64
                ));
            }
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  {:.0} elem/s", n as f64 / mean));
            }
            None => {}
        }
        eprintln!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

struct Sample {
    total: Duration,
    iters: u64,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    result: Option<Sample>,
}

impl Bencher {
    /// Times `f` in a loop until the measurement budget is spent.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let mut iters = 0u64;
        let start = Instant::now();
        let mut total;
        loop {
            std::hint::black_box(f());
            iters += 1;
            total = start.elapsed();
            if total >= self.budget {
                break;
            }
        }
        self.result = Some(Sample { total, iters });
    }

    /// Like [`Bencher::iter`], but return values are dropped after the
    /// timed loop so expensive drops don't pollute the measurement.
    pub fn iter_with_large_drop<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut kept = Vec::new();
        let mut iters = 0u64;
        let start = Instant::now();
        let mut total;
        loop {
            kept.push(f());
            iters += 1;
            total = start.elapsed();
            if total >= self.budget {
                break;
            }
        }
        self.result = Some(Sample { total, iters });
        drop(kept);
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement. The wall-clock cap (4× budget)
    /// bounds benches whose setup dwarfs their routine.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            timed += t0.elapsed();
            iters += 1;
            if timed >= self.budget || wall.elapsed() >= self.budget * 4 {
                break;
            }
        }
        self.result = Some(Sample {
            total: timed,
            iters,
        });
    }
}

/// Declares a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(10));
        g.throughput(Throughput::Elements(3));
        let mut ran = 0u64;
        g.bench_function(BenchmarkId::new("count", 3), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 1, "timed loop should iterate");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::new("b", 1), &1, |b, &_| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }
}
