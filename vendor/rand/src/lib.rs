//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `rand` 0.10 API it actually
//! uses: [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] sampling helpers `random_bool` / `random_range`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and of
//! entirely adequate quality for workload generation and tests. It is
//! **not** cryptographically secure, which matches how the workspace
//! uses it (benchmark data synthesis only).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// A deterministic 64-bit PRNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Seeding interface (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Sampling helpers (API-compatible subset of `rand::RngExt`).
pub trait RngExt {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 high-quality bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }
}

impl RngExt for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one sample using `next` as the bit source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Integer types [`random_range`] can produce. The blanket impls below
/// are generic over this trait (rather than one impl per concrete range
/// type) so that a literal range like `55..75` keeps its `{integer}`
/// inference variable and falls back to `i32` exactly as with the real
/// `rand` crate.
///
/// [`random_range`]: RngExt::random_range
pub trait SampleUniform: Copy {
    /// Converts from the i128 arithmetic domain.
    fn from_i128(v: i128) -> Self;
    /// Converts into the i128 arithmetic domain.
    fn to_i128(self) -> i128;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_i128(v: i128) -> Self {
                v as $t
            }
            fn to_i128(self) -> i128 {
                self as i128
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        let offset = (next() as u128) % span;
        T::from_i128(lo + offset as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u128 + 1;
        let offset = (next() as u128) % span;
        T::from_i128(lo + offset as i128)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let w: usize = rng.random_range(1..9);
            assert!((1..9).contains(&w));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 9];
        for _ in 0..500 {
            seen[rng.random_range(1..=9usize) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
