//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the subset of the proptest 1.x API the workspace's tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter`,
//! `Just`, numeric range strategies, tuple composition, a small
//! regex-literal string strategy, [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], the [`prop_oneof!`] union macro, and the
//! [`proptest!`] / `prop_assert*` test macros.
//!
//! Differences from real proptest, on purpose:
//! - **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input.
//! - **Deterministic runs.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly on re-run.
//! - `prop_assert*` panic (like `assert*`) rather than returning
//!   `TestCaseError`; the runner catches the panic to label the case.

pub mod test_runner {
    //! Deterministic case driver: seeds, case loop, failure labeling.

    /// A deterministic 64-bit PRNG (SplitMix64) driving generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform sample from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// A uniform sample from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration (`ProptestConfig` in the real crate).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// FNV-1a over the test name: a stable per-test base seed.
    fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `case` once per configured case with a fresh seeded RNG,
    /// labeling any panic with the case number and seed so the failure
    /// is reproducible (re-running the same test replays it exactly).
    pub fn run<F: FnMut(&mut TestRng)>(config: &Config, name: &str, mut case: F) {
        let base = name_seed(name);
        for i in 0..config.cases {
            let seed = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest `{name}`: failed on case {i}/{} (seed {seed:#x})",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators the workspace uses.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a cloneable generator function.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`; panics (with `reason`)
        /// if 1000 consecutive candidates are rejected.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool + Clone> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// A `&'static str` is a strategy for `String` via a tiny regex
    /// subset: `[class]{lo,hi}` / `[class]{n}` with `a-z` ranges and
    /// literal characters in the class. Any other pattern generates
    /// itself verbatim.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((alphabet, lo, hi)) => {
                    let len = lo + (rng.below((hi - lo + 1) as u64) as usize);
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[chars]{lo,hi}` → (alphabet, lo, hi); `None` if the
    /// pattern isn't in that shape.
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let braces = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match braces.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = braces.trim().parse().ok()?;
                (n, n)
            }
        };
        if alphabet.is_empty() || lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// A type-erased `prop_oneof!` arm: draws one `T` from the rng.
    pub type ArmFn<T> = Arc<dyn Fn(&mut TestRng) -> T>;

    /// Weighted union of same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, ArmFn<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a nonzero total.
        pub fn new(arms: Vec<(u32, ArmFn<T>)>) -> Union<T> {
            let total = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, gen) in &self.arms {
                if pick < *w as u64 {
                    return gen(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Erases a strategy into a `prop_oneof!` arm.
    pub fn arm<S>(s: S) -> ArmFn<S::Value>
    where
        S: Strategy + 'static,
    {
        Arc::new(move |rng| s.generate(rng))
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace generates.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Raw-bits floats: finite values dominate but infinities and NaN
    /// do occur, as with real proptest's `any::<f64>()`.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over all of `T`'s values.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `of(strategy)`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 1 in 4 None, matching real proptest's Some-biased default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// A strategy for `Option<T>`, biased toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! Everything a test needs via `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a zero-argument function (attributes, including `#[test]`,
/// pass through verbatim) that runs `body` over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies that
/// generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::arm($strat))),+
        ])
    };
}

/// Property assertion; panics on failure (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(usize),
        B(i64, i64),
        S(String),
        Maybe(Option<String>),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0usize..10).prop_map(Op::A),
            2 => ((0i64..5), (-4i64..=4)).prop_map(|(a, b)| Op::B(a, b)),
            1 => "[a-z]{1,6}".prop_map(Op::S),
            1 => crate::option::of("[a-zA-Z0-9 ]{0,20}").prop_map(Op::Maybe),
        ]
    }

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            match op().generate(&mut rng) {
                Op::A(n) => assert!(n < 10),
                Op::B(a, b) => {
                    assert!((0..5).contains(&a));
                    assert!((-4..=4).contains(&b));
                }
                Op::S(s) => {
                    assert!((1..=6).contains(&s.len()));
                    assert!(s.chars().all(|c| c.is_ascii_lowercase()));
                }
                Op::Maybe(m) => {
                    if let Some(s) = m {
                        assert!(s.len() <= 20);
                        assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
                    }
                }
            }
        }
    }

    #[test]
    fn vec_and_filter_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat =
            crate::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 1..20);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_asserts(xs in crate::collection::vec(0u16..100, 0..8), flag in any::<bool>()) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(flag, flag, "reflexive {}", flag);
            for x in xs {
                prop_assert_ne!(x, 100);
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let strat = op();
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
