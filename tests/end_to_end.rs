//! End-to-end integration tests spanning the whole stack: storage →
//! model → language → notation → DARMS → sound → bibliography → MDM.

use musicdb::biblio::{Incipit, MatchKind};
use musicdb::mdm::{Analyst, Composer, Library, MusicDataManager, ScoreEditor};
use musicdb::model::Value;
use musicdb::notation::fixtures::bwv578_subject;
use musicdb::notation::{perform, TimeSignature};
use musicdb::sound::{codec, render_performance, MidiEventList, PianoRoll, Timbre};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("musicdb-e2e-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn darms_to_audio_pipeline() {
    // DARMS text → MDM entities → QUEL → notation → MIDI → PCM → codec.
    let dir = tmpdir("pipeline");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    let id = mdm
        .import_darms(
            "fragment",
            mdm_darms::fixtures::FIG4_USER_SHORT,
            TimeSignature::common(),
        )
        .unwrap();

    // QUEL sees the imported notes (two sharps: the C is performed C#).
    let t = mdm
        .query("range of n is NOTE retrieve (n.midi_key) where n.step = \"C\" and n.alter = 1")
        .unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows[0][0], Value::Integer(73), "C#5");

    // Back out to notation and down to sound.
    let score = mdm.load_score(id).unwrap();
    let notes = perform(&score.movements[0]);
    assert!(!notes.is_empty());
    let midi = MidiEventList::from_performance(&notes);
    assert_eq!(midi.events.len(), notes.len() * 2);
    let pcm = render_performance(&notes, &Timbre::organ(), 8_000);
    assert!(pcm.rms() > 10.0, "audible audio");
    let enc = codec::redundancy::encode(&pcm);
    assert_eq!(codec::redundancy::decode(&enc).unwrap(), pcm, "lossless");
    let roll = PianoRoll::render(&notes, 0.25, &|_, _| false);
    assert!(roll.to_text().contains('█'));
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn library_survives_crash() {
    // Build a library, save, crash (no clean close), reopen: recovery
    // must restore every score exactly.
    let dir = tmpdir("crash");
    let fugue = bwv578_subject();
    let walk = Composer::random_walk(99, 80, musicdb::notation::KeySignature::new(3), 132.0);
    let (fugue_id, walk_id);
    {
        let mut mdm = MusicDataManager::open(&dir).unwrap();
        fugue_id = mdm.store_score(&fugue).unwrap();
        walk_id = mdm.store_score(&walk).unwrap();
        mdm.save().unwrap();
        // Make one more unsaved change, then crash: it must vanish.
        mdm.store_score(&Composer::random_walk(
            1,
            10,
            musicdb::notation::KeySignature::natural(),
            100.0,
        ))
        .unwrap();
        std::mem::forget(mdm);
    }
    let mdm = MusicDataManager::open(&dir).unwrap();
    assert_eq!(mdm.load_score(fugue_id).unwrap(), fugue);
    assert_eq!(mdm.load_score(walk_id).unwrap(), walk);
    assert_eq!(
        mdm.list_scores().unwrap().len(),
        2,
        "unsaved third score gone"
    );
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn four_clients_share_one_database() {
    // The fig. 1 scenario: composition → analysis → editing → cataloging
    // over the same entities.
    let dir = tmpdir("clients");
    let mut mdm = MusicDataManager::open(&dir).unwrap();

    // Composition.
    let subject = bwv578_subject().movements[0].voices[0].clone();
    let canon = Composer::canon(&subject, 2, 4, 12, TimeSignature::common(), 84.0);
    let id = mdm.store_score(&canon).unwrap();

    // Analysis (reads what composition wrote).
    let loaded = mdm.load_score(id).unwrap();
    let hist = Analyst::interval_histogram(&loaded);
    assert!(
        hist.contains_key(&7),
        "the subject's opening fifth is there"
    );

    // Editing (rewrites the shared entities).
    let mut editor = ScoreEditor::checkout(&mut mdm, id).unwrap();
    editor.transpose_voice(0, 1, -12).unwrap();
    let id2 = editor.commit().unwrap();

    // Library (catalogs the edited result).
    let mut lib = Library::new("GEN");
    lib.catalog(&mdm, id2, 1).unwrap();
    let frag = Incipit::from_keys(vec![67, 74, 70, 69]);
    assert_eq!(
        lib.search(&frag, MatchKind::Exact),
        vec!["GEN 1".to_string()]
    );

    // Analysis again, post-edit: voice 2 now starts an octave lower.
    let edited = mdm.load_score(id2).unwrap();
    let v2 = &edited.movements[0].voices[1];
    let first = v2
        .elements
        .iter()
        .find_map(musicdb::notation::VoiceElement::as_chord)
        .unwrap();
    assert_eq!(first.notes[0].pitch.midi(), 67, "was 79, transposed down");
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metaschema_describes_the_cmn_schema() {
    // §6: store the live CMN schema as data, read it back, and compare.
    let dir = tmpdir("meta");
    let mdm = MusicDataManager::open(&dir).unwrap();
    let schema = mdm.database().schema().clone();
    let mut meta_db = musicdb::model::Database::new();
    musicdb::model::meta::store_schema(&mut meta_db, &schema).unwrap();
    let back = musicdb::model::meta::read_schema(&meta_db).unwrap();
    assert_eq!(back, schema, "the CMN schema survives the meta round trip");
    // The meta-database is itself queryable with QUEL: count ATTRIBUTE
    // rows for the NOTE entity.
    let mut session = mdm_lang::Session::new();
    let out = session
        .execute(
            &mut meta_db,
            "range of e is ENTITY\n\
             range of a is ATTRIBUTE\n\
             retrieve (a.attribute_name) where a under e in entity_attributes and e.entity_name = \"NOTE\"",
        )
        .unwrap();
    let mdm_lang::StmtResult::Rows(t) = &out[2] else {
        panic!()
    };
    assert_eq!(t.len(), 7, "NOTE has seven attributes in the CMN schema");
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quel_ordering_operators_over_stored_music() {
    // The §5.6 operators running over a real stored score.
    let dir = tmpdir("quel-music");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    mdm.store_score(&bwv578_subject()).unwrap();

    // Measures are ordered under the movement: measure 2 is before 3.
    let t = mdm
        .query(
            "range of m1, m2 is MEASURE\n\
             retrieve (m1.number) where m1 before m2 in measure_in_movement and m2.number = 3",
        )
        .unwrap();
    let mut nums: Vec<i64> = t.rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    nums.sort_unstable();
    assert_eq!(nums, vec![1, 2]);

    // Syncs under measure 1 are ordered by time.
    let t = mdm
        .query(
            "range of s is SYNC\n\
             range of m is MEASURE\n\
             retrieve (s.time_num, s.time_den) where s under m in sync_in_measure and m.number = 1",
        )
        .unwrap();
    assert_eq!(t.len(), 4, "m.1 of the subject has four onsets");
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn darms_export_reimports_identically() {
    let dir = tmpdir("darms-rt");
    let mut mdm = MusicDataManager::open(&dir).unwrap();
    let id = mdm.store_score(&bwv578_subject()).unwrap();
    let text = mdm.export_darms(id, 0, 0).unwrap();
    let id2 = mdm
        .import_darms("reimported", &text, TimeSignature::common())
        .unwrap();
    let a = mdm.load_score(id).unwrap();
    let b = mdm.load_score(id2).unwrap();
    let pitches = |s: &musicdb::notation::Score| -> Vec<i32> {
        s.movements[0].voices[0]
            .elements
            .iter()
            .filter_map(musicdb::notation::VoiceElement::as_chord)
            .map(|c| c.notes[0].pitch.midi())
            .collect()
    };
    assert_eq!(pitches(&a), pitches(&b));
    drop(mdm);
    std::fs::remove_dir_all(&dir).ok();
}
